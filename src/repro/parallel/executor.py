"""Multiprocessing fan-out of simulation campaigns.

One SimMR replay is sub-second, but a campaign — a what-if sweep, a
scheduler-zoo comparison, a deadline-factor grid — is hundreds of
independent replays, and the engine is pure CPU-bound Python.  This
module fans a batch of :class:`SimTask` descriptions out across a
``multiprocessing`` worker pool, with three properties the serial loop
already had and must keep:

* **Determinism** — every task derives a seed from its content key
  (trace digest + scheduler identity + engine config), so a run's RNG
  material is a pure function of *what* is simulated, never of which
  worker ran it or in what order.  Results are returned in submission
  order regardless of completion order.
* **Verifiability** — each run streams its popped events into a BLAKE2b
  :class:`~repro.sanitize.digest.EventDigest` (via the zero-check
  :class:`~repro.sanitize.digest.DigestRecorder`), so serial, parallel
  and cache-restored executions of the same task can be asserted
  event-identical in one comparison.
* **Reuse** — completed runs are stored in a content-addressed
  :class:`~repro.parallel.cache.ResultCache` as they finish; re-running
  a campaign only executes tasks whose inputs changed, and an
  interrupted campaign resumes from the completed cells for free.

Tasks cross the process boundary as plain picklable data: traces are
shipped once per worker (pool initializer), schedulers as symbolic
:class:`SchedulerSpec` names resolved inside the worker.  In-process
factories (``SchedulerSpec.inline``) are supported for ad-hoc policies
but always execute in the parent and bypass the cache — a closure has
no content address.
"""

from __future__ import annotations

import json
import multiprocessing
from dataclasses import dataclass, field
from hashlib import blake2b
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, Sequence

from ..core.cluster import ClusterConfig
from ..core.engine import SimulatorEngine
from ..core.job import TraceJob
from ..core.results import SimulationResult
from ..core.results_io import result_from_dict, result_to_dict
from ..sanitize.digest import DigestRecorder, trace_digest
from ..schedulers import Scheduler, make_scheduler
from .cache import ResultCache, cache_key, default_cache_path

__all__ = [
    "SchedulerSpec",
    "SimTask",
    "SimOutcome",
    "simulate_many",
    "register_spec_kind",
    "spec_kinds",
]

ProgressFn = Callable[[int, int, "SimOutcome"], None]


# --------------------------------------------------------------------------- #
# scheduler specs
# --------------------------------------------------------------------------- #

def _resolve_registry(name: str, kwargs: dict[str, Any]) -> Scheduler:
    return make_scheduler(name, **kwargs)


def _resolve_zoo(name: str, kwargs: dict[str, Any]) -> Scheduler:
    from ..experiments.scheduler_zoo import ZOO_POLICIES

    try:
        factory = ZOO_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown zoo policy {name!r}; known: {sorted(ZOO_POLICIES)}"
        ) from None
    return factory(**kwargs)


#: Spec kind -> resolver(name, kwargs) -> fresh Scheduler.  Extend with
#: :func:`register_spec_kind` to make custom policy families
#: addressable (and therefore cacheable and pool-dispatchable) by name.
_SPEC_KINDS: dict[str, Callable[[str, dict[str, Any]], Scheduler]] = {
    "registry": _resolve_registry,
    "zoo": _resolve_zoo,
}


def register_spec_kind(
    kind: str, resolver: Callable[[str, dict[str, Any]], Scheduler]
) -> None:
    """Register a named scheduler family for symbolic dispatch.

    ``resolver(name, kwargs)`` must build a *fresh* scheduler per call
    (schedulers are stateful per run) and be importable in a worker
    process — i.e. defined at module level, not a closure.
    """
    _SPEC_KINDS[kind] = resolver


def spec_kinds() -> tuple[str, ...]:
    """The registered symbolic scheduler families, sorted.

    ``"inline"`` is not listed: inline specs wrap a factory object and
    cannot be named from data (a request document, a config file).
    """
    return tuple(sorted(_SPEC_KINDS))


@dataclass(frozen=True)
class SchedulerSpec:
    """Symbolic, picklable description of how to build a scheduler.

    ``kind``/``name``/``kwargs`` address a resolver in the spec-kind
    table ("registry" = :func:`repro.schedulers.make_scheduler`,
    "zoo" = :data:`repro.experiments.scheduler_zoo.ZOO_POLICIES`).
    ``seeded=True`` passes the task's derived deterministic seed to the
    resolver as a ``seed`` kwarg (for stochastic policies).

    :meth:`inline` wraps an arbitrary zero-argument factory instead;
    inline specs have no content identity, so they run in the parent
    process and are never cached.
    """

    kind: str = "registry"
    name: str = "fifo"
    kwargs: tuple[tuple[str, Any], ...] = ()
    seeded: bool = False
    factory: Optional[Callable[[], Scheduler]] = field(
        default=None, compare=False, repr=False
    )

    @classmethod
    def inline(cls, name: str, factory: Callable[[], Scheduler]) -> "SchedulerSpec":
        return cls(kind="inline", name=name, factory=factory)

    @property
    def cacheable(self) -> bool:
        return self.factory is None

    def identity(self) -> str:
        """Stable content identity (part of the cache key)."""
        if not self.cacheable:
            raise ValueError(f"inline scheduler spec {self.name!r} has no identity")
        kwargs_json = json.dumps(dict(self.kwargs), sort_keys=True, separators=(",", ":"))
        return f"{self.kind}:{self.name}:{kwargs_json}"

    def build(self, seed: int) -> Scheduler:
        """A fresh scheduler instance for one run."""
        if self.factory is not None:
            return self.factory()
        try:
            resolver = _SPEC_KINDS[self.kind]
        except KeyError:
            raise ValueError(
                f"unknown scheduler spec kind {self.kind!r}; known: "
                f"{sorted(_SPEC_KINDS)}"
            ) from None
        kwargs = dict(self.kwargs)
        if self.seeded:
            kwargs["seed"] = seed
        return resolver(self.name, kwargs)


# --------------------------------------------------------------------------- #
# tasks and outcomes
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class SimTask:
    """One independent simulation: (trace, scheduler, engine config).

    ``trace_id`` references the trace table passed to
    :func:`simulate_many` — traces are shipped to workers once, not per
    task.  ``tag`` is an arbitrary picklable correlation handle returned
    untouched on the outcome (e.g. the sweep-grid point).
    """

    trace_id: str
    scheduler: SchedulerSpec
    cluster: ClusterConfig = ClusterConfig(64, 64)
    slowstart: float = 0.05
    record_tasks: bool = False
    preemption: bool = False
    tag: Any = None

    def engine_config(self) -> dict[str, Any]:
        """Every engine knob that can change this task's result."""
        return {
            "map_slots": self.cluster.map_slots,
            "reduce_slots": self.cluster.reduce_slots,
            "slowstart": self.slowstart,
            "record_tasks": self.record_tasks,
            "preemption": self.preemption,
        }


@dataclass
class SimOutcome:
    """One task's result, with its provenance."""

    task: SimTask
    result: SimulationResult
    #: True when the result was restored from the cache, not executed.
    cached: bool
    #: Content address of the run; None for uncacheable (inline) tasks.
    key: Optional[str]
    #: The deterministic per-run seed derived from the task's content.
    seed: int


def _derive_seed(trace_dig: str, scheduler_id: str, config_json: str) -> int:
    """Deterministic 63-bit seed from the task's content material."""
    h = blake2b(digest_size=8)
    for part in (trace_dig, scheduler_id, config_json):
        h.update(part.encode())
        h.update(b"\x00")
    return int.from_bytes(h.digest(), "little") >> 1


def _execute(
    trace: Sequence[TraceJob], task: SimTask, seed: int, digest: bool
) -> SimulationResult:
    """Run one task in the current process."""
    recorder = DigestRecorder() if digest else None
    engine = SimulatorEngine(
        task.cluster,
        task.scheduler.build(seed),
        min_map_percent_completed=task.slowstart,
        record_tasks=task.record_tasks,
        preemption=task.preemption,
        sanitizer=recorder,
    )
    result = engine.run(trace)
    if recorder is not None:
        result.event_digest = recorder.hexdigest()
    return result


# --------------------------------------------------------------------------- #
# worker-process plumbing
# --------------------------------------------------------------------------- #

#: Per-worker trace table, installed by the pool initializer so each
#: trace crosses the process boundary once instead of once per task.
_WORKER_TRACES: dict[str, Sequence[TraceJob]] = {}


def _init_worker(traces: dict[str, Sequence[TraceJob]]) -> None:
    _WORKER_TRACES.clear()
    _WORKER_TRACES.update(traces)


def _run_in_worker(item: tuple[int, SimTask, int, bool]) -> tuple[int, dict[str, Any]]:
    index, task, seed, digest = item
    result = _execute(_WORKER_TRACES[task.trace_id], task, seed, digest)
    # Results travel back as their canonical serialization document —
    # the exact bytes the cache would store — so a parallel result is
    # structurally identical to a cache restore of itself.
    return index, result_to_dict(result)


# --------------------------------------------------------------------------- #
# the executor
# --------------------------------------------------------------------------- #

def simulate_many(
    traces: Mapping[str, Sequence[TraceJob]],
    tasks: Sequence[SimTask],
    *,
    workers: int = 0,
    cache: "ResultCache | str | Path | bool | None" = None,
    fresh: bool = False,
    digest: bool = True,
    progress: Optional[ProgressFn] = None,
) -> list[SimOutcome]:
    """Execute a batch of simulation tasks, reusing cached results.

    Parameters
    ----------
    traces:
        ``trace_id -> trace`` table; every task references one entry.
    workers:
        ``<= 1`` runs in-process (no pool); ``N > 1`` fans uncached
        tasks out over ``N`` worker processes.  Both paths produce
        event-digest-identical results.
    cache:
        ``None``/``False`` disables caching; ``True`` opens the default
        cache file (:func:`~repro.parallel.cache.default_cache_path`);
        a path opens that file; an open :class:`ResultCache` is used
        as-is (and not closed).  Completed runs are committed one by
        one, so interruption never loses finished work.
    fresh:
        Ignore existing cache entries (every task re-executes) but still
        store the new results — a forced re-population.
    digest:
        Stream each run's events into a BLAKE2b fingerprint
        (``result.event_digest``); costs a few percent of throughput.
    progress:
        ``progress(done, total, outcome)`` called once per task as it
        completes (cache hits first, then executions in completion
        order).

    Returns outcomes in task order.
    """
    for task in tasks:
        if task.trace_id not in traces:
            raise ValueError(f"task references unknown trace_id {task.trace_id!r}")

    own_cache: Optional[ResultCache] = None
    if cache is True:
        cache = own_cache = ResultCache(default_cache_path())
    elif isinstance(cache, (str, Path)):
        cache = own_cache = ResultCache(cache)
    elif cache is False:
        cache = None

    try:
        return _simulate_many(
            traces, tasks, workers=workers, cache=cache, fresh=fresh,
            digest=digest, progress=progress,
        )
    finally:
        if own_cache is not None:
            own_cache.close()


def _simulate_many(
    traces: Mapping[str, Sequence[TraceJob]],
    tasks: Sequence[SimTask],
    *,
    workers: int,
    cache: Optional[ResultCache],
    fresh: bool,
    digest: bool,
    progress: Optional[ProgressFn],
) -> list[SimOutcome]:
    digests = {tid: trace_digest(trace) for tid, trace in traces.items()}

    total = len(tasks)
    done = 0
    outcomes: list[Optional[SimOutcome]] = [None] * total
    pending: list[tuple[int, SimTask, int]] = []  # (index, task, seed)

    def finish(index: int, outcome: SimOutcome) -> None:
        nonlocal done
        outcomes[index] = outcome
        done += 1
        if progress is not None:
            progress(done, total, outcome)

    # Phase 1: content keys, deterministic seeds, cache lookups.
    for index, task in enumerate(tasks):
        trace_dig = digests[task.trace_id]
        config_json = json.dumps(
            task.engine_config(), sort_keys=True, separators=(",", ":")
        )
        if task.scheduler.cacheable:
            scheduler_id = task.scheduler.identity()
            key = cache_key(trace_dig, scheduler_id, task.engine_config())
        else:
            scheduler_id = f"inline:{task.scheduler.name}"
            key = None
        seed = _derive_seed(trace_dig, scheduler_id, config_json)
        if cache is not None and key is not None and not fresh:
            hit = cache.get(key)
            if hit is not None:
                finish(index, SimOutcome(task, hit, cached=True, key=key, seed=seed))
                continue
        pending.append((index, task, seed))

    def store(index: int, task: SimTask, seed: int, result: SimulationResult) -> SimOutcome:
        key = None
        if task.scheduler.cacheable:
            key = cache_key(
                digests[task.trace_id], task.scheduler.identity(), task.engine_config()
            )
            if cache is not None:
                cache.put(
                    key,
                    result,
                    trace_digest=digests[task.trace_id],
                    scheduler_id=task.scheduler.identity(),
                )
        return SimOutcome(task, result, cached=False, key=key, seed=seed)

    # Phase 2: execute the misses.
    parallel = [p for p in pending if p[1].scheduler.cacheable]
    inline = [p for p in pending if not p[1].scheduler.cacheable]
    if workers > 1 and len(parallel) > 1:
        used_traces = {
            task.trace_id: traces[task.trace_id] for _, task, _ in parallel
        }
        ctx = multiprocessing.get_context()
        nproc = min(workers, len(parallel))
        with ctx.Pool(nproc, initializer=_init_worker, initargs=(used_traces,)) as pool:
            items = [(i, task, seed, digest) for i, task, seed in parallel]
            by_index = {i: (task, seed) for i, task, seed in parallel}
            for index, payload in pool.imap_unordered(_run_in_worker, items):
                task, seed = by_index[index]
                finish(index, store(index, task, seed, result_from_dict(payload)))
    else:
        inline = pending  # run everything in-process, in submission order
    for index, task, seed in inline:
        result = _execute(traces[task.trace_id], task, seed, digest)
        finish(index, store(index, task, seed, result))

    assert all(o is not None for o in outcomes)
    return outcomes  # type: ignore[return-value]
