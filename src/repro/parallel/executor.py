"""Multiprocessing fan-out of simulation campaigns.

One SimMR replay is sub-second, but a campaign — a what-if sweep, a
scheduler-zoo comparison, a deadline-factor grid — is hundreds of
independent replays, and the engine is pure CPU-bound Python.  This
module fans a batch of :class:`SimTask` descriptions out across a
``multiprocessing`` worker pool, with three properties the serial loop
already had and must keep:

* **Determinism** — every task derives a seed from its content key
  (trace digest + scheduler identity + engine config), so a run's RNG
  material is a pure function of *what* is simulated, never of which
  worker ran it or in what order.  Results are returned in submission
  order regardless of completion order.
* **Verifiability** — each run streams its popped events into a BLAKE2b
  :class:`~repro.sanitize.digest.EventDigest` (via the zero-check
  :class:`~repro.sanitize.digest.DigestRecorder`), so serial, parallel
  and cache-restored executions of the same task can be asserted
  event-identical in one comparison.
* **Reuse** — completed runs are stored in a content-addressed
  :class:`~repro.parallel.cache.ResultCache` as they finish; re-running
  a campaign only executes tasks whose inputs changed, and an
  interrupted campaign resumes from the completed cells for free.

Tasks cross the process boundary as plain picklable data: schedulers
as symbolic :class:`SchedulerSpec` names resolved inside the worker,
traces as *references into shared storage*.  Each distinct trace is
packed once into the compact binary format
(:mod:`repro.trace.binfmt`) and published under its content digest in a
``multiprocessing.shared_memory`` segment (fallback: a temporary file,
``mmap``-ed read-only by each worker); workers attach lazily and
rebuild zero-copy :class:`~repro.core.columns.TraceColumns` views, so
the bytes shipped per worker are O(1) in the trace size and all workers
share one physical copy of the durations.  The legacy pickle transport
is kept selectable for measurement (``transport="pickle"``).

In-process factories (``SchedulerSpec.inline``) are supported for
ad-hoc policies but always execute in the parent and bypass the cache —
a closure has no content address.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from hashlib import blake2b
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, Sequence

from ..core.cluster import ClusterConfig
from ..core.engine import SimulatorEngine
from ..core.kernel import ColumnarEngine
from ..core.job import TraceJob
from ..core.results import SimulationResult
from ..core.results_io import result_from_dict, result_to_dict
from ..sanitize.digest import DigestRecorder, trace_digest
from ..schedulers import Scheduler, make_scheduler
from .cache import ResultCache, cache_key, default_cache_path

__all__ = [
    "FanoutStats",
    "SchedulerSpec",
    "SimTask",
    "SimOutcome",
    "last_fanout_stats",
    "simulate_many",
    "register_spec_kind",
    "spec_kinds",
]

#: Trace-shipping transports ``simulate_many`` accepts.  ``"auto"``
#: prefers shared memory and degrades to a tempfile; the explicit names
#: force one mechanism (benchmarks, tests); ``"pickle"`` is the legacy
#: ship-the-job-objects path.
TRANSPORTS = ("auto", "shared_memory", "tempfile", "pickle")

ProgressFn = Callable[[int, int, "SimOutcome"], None]


# --------------------------------------------------------------------------- #
# scheduler specs
# --------------------------------------------------------------------------- #

def _resolve_registry(name: str, kwargs: dict[str, Any]) -> Scheduler:
    return make_scheduler(name, **kwargs)


def _resolve_zoo(name: str, kwargs: dict[str, Any]) -> Scheduler:
    from ..experiments.scheduler_zoo import ZOO_POLICIES

    try:
        factory = ZOO_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown zoo policy {name!r}; known: {sorted(ZOO_POLICIES)}"
        ) from None
    return factory(**kwargs)


def _resolve_inline_certified(name: str, kwargs: dict[str, Any]) -> Scheduler:
    """Resolver for ``inline-certified``: scheduler source shipped as data.

    ``kwargs["source"]`` is a self-contained scheduler module as text and
    ``name`` the class to instantiate; the remaining kwargs become
    constructor arguments.  The source is only executed after the effect
    analyzer (:mod:`repro.analysis.certify`) proves the class
    service-safe — an unsafe or unparsable submission raises
    :class:`~repro.analysis.certify.CertificationError` (a ``ValueError``)
    carrying the witness chain.  Verdicts are memoized by content digest,
    so repeat builds of the same source skip re-analysis.
    """
    from ..analysis.certify import certified_inline_class

    kwargs = dict(kwargs)
    source = kwargs.pop("source", None)
    if not isinstance(source, str) or not source.strip():
        raise ValueError(
            "inline-certified scheduler spec requires kwargs['source'] "
            "(the scheduler module source text)"
        )
    cls = certified_inline_class(source, name)
    return cls(**kwargs)


def _resolve_policy(name: str, kwargs: dict[str, Any]) -> Scheduler:
    """Resolver for ``policy``: a decision-tree document shipped as data.

    ``kwargs["tree"]`` is the policy's *canonical* JSON text
    (:func:`repro.policy.canonical_policy_json`) — a plain string, so
    the spec stays picklable and its :meth:`SchedulerSpec.identity` is
    content-stable for the result cache.  The tree is re-validated here
    (POL00x rules) before compiling, so a worker process never executes
    an uncertified policy even if the parent was bypassed.
    """
    from ..policy import compile_policy

    kwargs = dict(kwargs)
    tree = kwargs.pop("tree", None)
    if not isinstance(tree, str) or not tree.strip():
        raise ValueError(
            "policy scheduler spec requires kwargs['tree'] "
            "(the canonical policy JSON text)"
        )
    if kwargs:
        raise ValueError(
            f"policy scheduler spec got unexpected kwargs: {sorted(kwargs)}"
        )
    return compile_policy(tree, label=f"policy:{name}")


#: Spec kind -> resolver(name, kwargs) -> fresh Scheduler.  Extend with
#: :func:`register_spec_kind` to make custom policy families
#: addressable (and therefore cacheable and pool-dispatchable) by name.
_SPEC_KINDS: dict[str, Callable[[str, dict[str, Any]], Scheduler]] = {
    "registry": _resolve_registry,
    "zoo": _resolve_zoo,
    "inline-certified": _resolve_inline_certified,
    "policy": _resolve_policy,
}


def register_spec_kind(
    kind: str, resolver: Callable[[str, dict[str, Any]], Scheduler]
) -> None:
    """Register a named scheduler family for symbolic dispatch.

    ``resolver(name, kwargs)`` must build a *fresh* scheduler per call
    (schedulers are stateful per run) and be importable in a worker
    process — i.e. defined at module level, not a closure.
    """
    _SPEC_KINDS[kind] = resolver


def spec_kinds() -> tuple[str, ...]:
    """The registered symbolic scheduler families, sorted.

    ``"inline"`` is not listed: inline specs wrap a factory object and
    cannot be named from data (a request document, a config file).
    """
    return tuple(sorted(_SPEC_KINDS))


@dataclass(frozen=True)
class SchedulerSpec:
    """Symbolic, picklable description of how to build a scheduler.

    ``kind``/``name``/``kwargs`` address a resolver in the spec-kind
    table ("registry" = :func:`repro.schedulers.make_scheduler`,
    "zoo" = :data:`repro.experiments.scheduler_zoo.ZOO_POLICIES`).
    ``seeded=True`` passes the task's derived deterministic seed to the
    resolver as a ``seed`` kwarg (for stochastic policies).

    :meth:`inline` wraps an arbitrary zero-argument factory instead;
    inline specs have no content identity, so they run in the parent
    process and are never cached.
    """

    kind: str = "registry"
    name: str = "fifo"
    kwargs: tuple[tuple[str, Any], ...] = ()
    seeded: bool = False
    factory: Optional[Callable[[], Scheduler]] = field(
        default=None, compare=False, repr=False
    )

    @classmethod
    def inline(cls, name: str, factory: Callable[[], Scheduler]) -> "SchedulerSpec":
        return cls(kind="inline", name=name, factory=factory)

    @property
    def cacheable(self) -> bool:
        return self.factory is None

    def identity(self) -> str:
        """Stable content identity (part of the cache key)."""
        if not self.cacheable:
            raise ValueError(f"inline scheduler spec {self.name!r} has no identity")
        kwargs_json = json.dumps(dict(self.kwargs), sort_keys=True, separators=(",", ":"))
        return f"{self.kind}:{self.name}:{kwargs_json}"

    def build(self, seed: int) -> Scheduler:
        """A fresh scheduler instance for one run."""
        if self.factory is not None:
            return self.factory()
        try:
            resolver = _SPEC_KINDS[self.kind]
        except KeyError:
            raise ValueError(
                f"unknown scheduler spec kind {self.kind!r}; known: "
                f"{sorted(_SPEC_KINDS)}"
            ) from None
        kwargs = dict(self.kwargs)
        if self.seeded:
            kwargs["seed"] = seed
        return resolver(self.name, kwargs)


# --------------------------------------------------------------------------- #
# tasks and outcomes
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class SimTask:
    """One independent simulation: (trace, scheduler, engine config).

    ``trace_id`` references the trace table passed to
    :func:`simulate_many` — traces are shipped to workers once, not per
    task.  ``tag`` is an arbitrary picklable correlation handle returned
    untouched on the outcome (e.g. the sweep-grid point).
    """

    trace_id: str
    scheduler: SchedulerSpec
    cluster: ClusterConfig = ClusterConfig(64, 64)
    slowstart: float = 0.05
    record_tasks: bool = False
    preemption: bool = False
    #: Execution path: ``"columnar"`` (vectorized kernel with automatic
    #: object-engine fallback) or ``"object"``.  Part of the cache key —
    #: the paths are digest-identical, but keeping them separately
    #: addressed means a cache entry always names the code path that
    #: produced it.
    engine: str = "columnar"
    tag: Any = None

    def engine_config(self) -> dict[str, Any]:
        """Every engine knob that can change this task's result."""
        return {
            "map_slots": self.cluster.map_slots,
            "reduce_slots": self.cluster.reduce_slots,
            "slowstart": self.slowstart,
            "record_tasks": self.record_tasks,
            "preemption": self.preemption,
            "engine": self.engine,
        }


@dataclass
class SimOutcome:
    """One task's result, with its provenance."""

    task: SimTask
    result: SimulationResult
    #: True when the result was restored from the cache, not executed.
    cached: bool
    #: Content address of the run; None for uncacheable (inline) tasks.
    key: Optional[str]
    #: The deterministic per-run seed derived from the task's content.
    seed: int


def _derive_seed(trace_dig: str, scheduler_id: str, config_json: str) -> int:
    """Deterministic 63-bit seed from the task's content material."""
    h = blake2b(digest_size=8)
    for part in (trace_dig, scheduler_id, config_json):
        h.update(part.encode())
        h.update(b"\x00")
    return int.from_bytes(h.digest(), "little") >> 1


def _execute(
    trace: Sequence[TraceJob], task: SimTask, seed: int, digest: bool
) -> SimulationResult:
    """Run one task in the current process."""
    recorder = DigestRecorder() if digest else None
    engine_cls = ColumnarEngine if task.engine == "columnar" else SimulatorEngine
    engine = engine_cls(
        task.cluster,
        task.scheduler.build(seed),
        min_map_percent_completed=task.slowstart,
        record_tasks=task.record_tasks,
        preemption=task.preemption,
        sanitizer=recorder,
    )
    result = engine.run(trace)
    if recorder is not None:
        result.event_digest = recorder.hexdigest()
    return result


# --------------------------------------------------------------------------- #
# worker-process plumbing
# --------------------------------------------------------------------------- #

#: One published trace: how a worker can reach its bytes.
#: ``("shm", segment_name, nbytes)`` / ``("file", path, nbytes)`` /
#: ``("pickle", [TraceJob, ...])``.
_TraceSource = tuple

#: Per-worker source table (installed by the pool initializer) and the
#: traces already attached and decoded in this worker.  Shared-memory
#: segments and mmaps are pinned in ``_WORKER_OWNERS`` for the worker's
#: lifetime — the decoded jobs are views into them.
_WORKER_SOURCES: dict[str, _TraceSource] = {}
_WORKER_TRACES: dict[str, Sequence[TraceJob]] = {}
_WORKER_OWNERS: list[object] = []


def _init_worker(sources: dict[str, _TraceSource]) -> None:
    _WORKER_SOURCES.clear()
    _WORKER_SOURCES.update(sources)
    _WORKER_TRACES.clear()
    _WORKER_OWNERS.clear()


def _attach_shared_memory(name: str, nbytes: int) -> Sequence[TraceJob]:
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=name)
    # Pin the segment for the worker's lifetime *before* anything below
    # can raise: once in _WORKER_OWNERS the handle has an owner, so an
    # exception past this point cannot strand an unreferenced mapping.
    _WORKER_OWNERS.append(segment)
    # CPython registers the segment with the resource tracker on attach
    # as well as on create (bpo-39959).  fork/forkserver children share
    # the parent's tracker, so their registration is an idempotent no-op
    # and must stay; a spawn child runs its *own* tracker, which would
    # unlink the parent's segment when the child exits — take that
    # registration back out.  The parent owns the lifetime either way.
    if multiprocessing.get_start_method(allow_none=True) == "spawn":
        try:  # pragma: no cover - depends on stdlib internals
            from multiprocessing import resource_tracker

            resource_tracker.unregister(segment._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:
            pass
    from ..trace.binfmt import unpack_columns

    columns, _digest = unpack_columns(
        memoryview(segment.buf)[:nbytes], owner=segment
    )
    return columns.jobs()


def _attach_file(path: str) -> Sequence[TraceJob]:
    from ..trace.binfmt import load_columns

    columns, _digest = load_columns(path)
    _WORKER_OWNERS.append(columns.owner)
    return columns.jobs()


def _worker_trace(trace_id: str) -> Sequence[TraceJob]:
    """The worker-local trace for ``trace_id``, attached and decoded once."""
    trace = _WORKER_TRACES.get(trace_id)
    if trace is None:
        source = _WORKER_SOURCES[trace_id]
        if source[0] == "shm":
            trace = _attach_shared_memory(source[1], source[2])
        elif source[0] == "file":
            trace = _attach_file(source[1])
        else:  # "pickle": the job objects crossed with the initializer
            trace = source[1]
        _WORKER_TRACES[trace_id] = trace
    return trace


def _run_in_worker(item: tuple[int, SimTask, int, bool]) -> tuple[int, dict[str, Any]]:
    index, task, seed, digest = item
    result = _execute(_worker_trace(task.trace_id), task, seed, digest)
    # Results travel back as their canonical serialization document —
    # the exact bytes the cache would store — so a parallel result is
    # structurally identical to a cache restore of itself.
    return index, result_to_dict(result)


# --------------------------------------------------------------------------- #
# parent-side trace publication
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class FanoutStats:
    """How the last pool fan-out shipped its traces (perf accounting).

    ``payload_bytes`` counts the trace bytes that exist *once* in
    shared storage (binary-packed traces in shared memory or tempfiles;
    0 for the pickle transport, whose payload is per-worker instead).
    ``bytes_per_worker`` is what actually crosses each worker's process
    boundary via the pool initializer — segment names and sizes for the
    shared transports, the full pickled job lists for ``"pickle"``.
    """

    transport: str
    traces: int
    workers: int
    payload_bytes: int
    bytes_per_worker: int

    @property
    def total_shipped_bytes(self) -> int:
        """Bytes moved in total: shared payload + per-worker copies."""
        return self.payload_bytes + self.bytes_per_worker * self.workers

    def to_dict(self) -> dict[str, Any]:
        return {
            "transport": self.transport,
            "traces": self.traces,
            "workers": self.workers,
            "payload_bytes": self.payload_bytes,
            "bytes_per_worker": self.bytes_per_worker,
            "total_shipped_bytes": self.total_shipped_bytes,
        }


#: Stats of the most recent pooled ``simulate_many`` fan-out in this
#: process (None when everything ran in-process).  Read via
#: :func:`last_fanout_stats`; benchmarks use this to pin the O(1)
#: shipping claim.
_LAST_FANOUT: Optional[FanoutStats] = None


def last_fanout_stats() -> Optional[FanoutStats]:
    """Shipping stats of this process's most recent pooled fan-out."""
    return _LAST_FANOUT


class _PublishedTraces:
    """Parent-side shared storage for one pool's traces.

    Packs each trace once (binary format), publishes it under the
    requested transport, and tears the storage down in :meth:`close`
    after the pool has exited.  Fallback order for ``"auto"``: shared
    memory, then a temporary file (``mmap``-ed by workers).
    """

    def __init__(
        self,
        traces: Mapping[str, Sequence[TraceJob]],
        transport: str,
        workers: int,
    ) -> None:
        from ..trace.binfmt import pack_trace

        self.sources: dict[str, _TraceSource] = {}
        self._segments: list[Any] = []
        self._files: list[str] = []
        payload_bytes = 0
        used: set[str] = set()
        try:
            for trace_id, trace in traces.items():
                if transport == "pickle":
                    jobs = list(trace)
                    self.sources[trace_id] = ("pickle", jobs)
                    used.add("pickle")
                    continue
                payload = pack_trace(trace)
                payload_bytes += len(payload)
                if transport in ("auto", "shared_memory"):
                    try:
                        self.sources[trace_id] = self._publish_shm(payload)
                        used.add("shared_memory")
                        continue
                    except (ImportError, OSError):
                        if transport == "shared_memory":
                            raise
                self.sources[trace_id] = self._publish_file(payload)
                used.add("tempfile")
        except BaseException:
            # A failure publishing trace N must not strand segments and
            # spill files already published for traces 1..N-1: the
            # context manager is never entered, so clean up here.
            self.close()
            raise
        self.stats = FanoutStats(
            transport="+".join(sorted(used)) if used else "none",
            traces=len(self.sources),
            workers=workers,
            payload_bytes=payload_bytes,
            bytes_per_worker=len(pickle.dumps(self.sources)),
        )

    def _publish_shm(self, payload: bytes) -> _TraceSource:
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(create=True, size=len(payload))
        # Register with the cleanup list before the (fallible) copy into
        # the mapping, so close() releases the segment even when the
        # write below raises.
        self._segments.append(segment)
        segment.buf[:len(payload)] = payload
        return ("shm", segment.name, len(payload))

    def _publish_file(self, payload: bytes) -> _TraceSource:
        fd, path = tempfile.mkstemp(prefix="simmr-trace-", suffix=".simmr")
        # Same ordering as _publish_shm: the path joins its cleanup
        # owner before the write that could fail part-way.
        self._files.append(path)
        with os.fdopen(fd, "wb") as fh:
            fh.write(payload)
        return ("file", path, len(payload))

    def close(self) -> None:
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except OSError:  # pragma: no cover - already gone
                pass
        self._segments.clear()
        for path in self._files:
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - already gone
                pass
        self._files.clear()

    def __enter__(self) -> "_PublishedTraces":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# --------------------------------------------------------------------------- #
# the executor
# --------------------------------------------------------------------------- #

def simulate_many(
    traces: Mapping[str, Sequence[TraceJob]],
    tasks: Sequence[SimTask],
    *,
    workers: int = 0,
    cache: "ResultCache | str | Path | bool | None" = None,
    fresh: bool = False,
    digest: bool = True,
    progress: Optional[ProgressFn] = None,
    transport: str = "auto",
) -> list[SimOutcome]:
    """Execute a batch of simulation tasks, reusing cached results.

    Parameters
    ----------
    traces:
        ``trace_id -> trace`` table; every task references one entry.
    workers:
        ``<= 1`` runs in-process (no pool); ``N > 1`` fans uncached
        tasks out over ``N`` worker processes.  Both paths produce
        event-digest-identical results.
    transport:
        How traces reach the workers — one of :data:`TRANSPORTS`.
        ``"auto"`` (default) publishes each trace once in shared memory
        and falls back to a tempfile; ``"pickle"`` ships job objects
        with the pool initializer (legacy behaviour, kept for
        measurement).  All transports are event-digest-identical.
    cache:
        ``None``/``False`` disables caching; ``True`` opens the default
        cache file (:func:`~repro.parallel.cache.default_cache_path`);
        a path opens that file; an open :class:`ResultCache` is used
        as-is (and not closed).  Completed runs are committed one by
        one, so interruption never loses finished work.
    fresh:
        Ignore existing cache entries (every task re-executes) but still
        store the new results — a forced re-population.
    digest:
        Stream each run's events into a BLAKE2b fingerprint
        (``result.event_digest``); costs a few percent of throughput.
    progress:
        ``progress(done, total, outcome)`` called once per task as it
        completes (cache hits first, then executions in completion
        order).

    Returns outcomes in task order.
    """
    if transport not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
        )
    for task in tasks:
        if task.trace_id not in traces:
            raise ValueError(f"task references unknown trace_id {task.trace_id!r}")

    own_cache: Optional[ResultCache] = None
    if cache is True:
        cache = own_cache = ResultCache(default_cache_path())
    elif isinstance(cache, (str, Path)):
        cache = own_cache = ResultCache(cache)
    elif cache is False:
        cache = None

    try:
        return _simulate_many(
            traces, tasks, workers=workers, cache=cache, fresh=fresh,
            digest=digest, progress=progress, transport=transport,
        )
    finally:
        if own_cache is not None:
            own_cache.close()


def _simulate_many(
    traces: Mapping[str, Sequence[TraceJob]],
    tasks: Sequence[SimTask],
    *,
    workers: int,
    cache: Optional[ResultCache],
    fresh: bool,
    digest: bool,
    progress: Optional[ProgressFn],
    transport: str = "auto",
) -> list[SimOutcome]:
    global _LAST_FANOUT
    digests = {tid: trace_digest(trace) for tid, trace in traces.items()}

    total = len(tasks)
    done = 0
    outcomes: list[Optional[SimOutcome]] = [None] * total
    pending: list[tuple[int, SimTask, int]] = []  # (index, task, seed)

    def finish(index: int, outcome: SimOutcome) -> None:
        nonlocal done
        outcomes[index] = outcome
        done += 1
        if progress is not None:
            progress(done, total, outcome)

    # Phase 1: content keys, deterministic seeds, cache lookups.
    for index, task in enumerate(tasks):
        trace_dig = digests[task.trace_id]
        config_json = json.dumps(
            task.engine_config(), sort_keys=True, separators=(",", ":")
        )
        if task.scheduler.cacheable:
            scheduler_id = task.scheduler.identity()
            key = cache_key(trace_dig, scheduler_id, task.engine_config())
        else:
            scheduler_id = f"inline:{task.scheduler.name}"
            key = None
        seed = _derive_seed(trace_dig, scheduler_id, config_json)
        if cache is not None and key is not None and not fresh:
            hit = cache.get(key)
            if hit is not None:
                finish(index, SimOutcome(task, hit, cached=True, key=key, seed=seed))
                continue
        pending.append((index, task, seed))

    def store(index: int, task: SimTask, seed: int, result: SimulationResult) -> SimOutcome:
        key = None
        if task.scheduler.cacheable:
            key = cache_key(
                digests[task.trace_id], task.scheduler.identity(), task.engine_config()
            )
            if cache is not None:
                cache.put(
                    key,
                    result,
                    trace_digest=digests[task.trace_id],
                    scheduler_id=task.scheduler.identity(),
                )
        return SimOutcome(task, result, cached=False, key=key, seed=seed)

    # Phase 2: execute the misses.
    parallel = [p for p in pending if p[1].scheduler.cacheable]
    inline = [p for p in pending if not p[1].scheduler.cacheable]
    if workers > 1 and len(parallel) > 1:
        used_traces = {
            task.trace_id: traces[task.trace_id] for _, task, _ in parallel
        }
        ctx = multiprocessing.get_context()
        nproc = min(workers, len(parallel))
        with _PublishedTraces(used_traces, transport, nproc) as published:
            _LAST_FANOUT = published.stats
            with ctx.Pool(
                nproc, initializer=_init_worker, initargs=(published.sources,)
            ) as pool:
                items = [(i, task, seed, digest) for i, task, seed in parallel]
                by_index = {i: (task, seed) for i, task, seed in parallel}
                for index, payload in pool.imap_unordered(_run_in_worker, items):
                    task, seed = by_index[index]
                    finish(index, store(index, task, seed, result_from_dict(payload)))
    else:
        inline = pending  # run everything in-process, in submission order
    for index, task, seed in inline:
        result = _execute(traces[task.trace_id], task, seed, digest)
        finish(index, store(index, task, seed, result))

    assert all(o is not None for o in outcomes)
    return outcomes  # type: ignore[return-value]
