"""Content-addressed result cache for simulation campaigns.

A sweep replays one trace under many configurations; re-running the
sweep after editing *one* axis recomputes every cell.  This cache makes
re-runs incremental: each completed simulation is stored under a
BLAKE2b key derived from everything that determines its outcome —

* the **trace digest** (:func:`repro.sanitize.digest.trace_digest` —
  canonical-JSON content hash of the replayed trace),
* the **scheduler identity** (registry kind, name, constructor kwargs),
* the **engine configuration** (slot counts, slow-start, task
  recording, preemption) plus a cache schema / package version salt.

Replays are deterministic (the repo's determinism contract, enforced by
simlint and simsan), so equal keys imply equal results — a lookup *is*
a re-execution.  Storage is a single sqlite3 file (same idiom as
:class:`repro.trace.database.TraceDatabase`): rows are committed one by
one as runs finish, which is what makes an interrupted sweep resumable
for free — the completed cells are already on disk, and the re-run only
executes the rest.

The stored payload is the :func:`repro.core.results_io.result_to_dict`
document, including the run's event-stream digest, so a restored
:class:`~repro.core.results.SimulationResult` is verifiably identical
to a fresh execution (compare ``event_digest``).
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from hashlib import blake2b
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional

from ..core.results import SimulationResult
from ..core.results_io import result_from_dict, result_to_dict

__all__ = ["ResultCache", "CacheStats", "cache_key", "default_cache_path"]

#: Bump to invalidate every stored entry (schema or semantic change in
#: what a cached simulation means).
CACHE_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    key          TEXT PRIMARY KEY,
    trace_digest TEXT NOT NULL,
    scheduler    TEXT NOT NULL,
    config       TEXT NOT NULL,
    payload      TEXT NOT NULL,
    created_at   INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_results_trace ON results (trace_digest);
"""

#: SQL expression for "now" (unix seconds).  Timestamps are assigned by
#: sqlite, not Python — store-maintenance bookkeeping, never simulation
#: input, so the determinism contract (no wall-clock in sim code) holds.
_SQL_NOW = "CAST(strftime('%s','now') AS INTEGER)"


def default_cache_path() -> Path:
    """Default on-disk location of the sweep result cache.

    ``$SIMMR_CACHE_DIR/results.sqlite`` when the environment variable is
    set, else ``~/.cache/simmr/results.sqlite``.
    """
    root = os.environ.get("SIMMR_CACHE_DIR")
    base = Path(root) if root else Path.home() / ".cache" / "simmr"
    return base / "results.sqlite"


def cache_key(
    trace_digest: str,
    scheduler_id: str,
    engine_config: Mapping[str, Any],
) -> str:
    """The content address of one simulation run.

    ``engine_config`` must contain every engine knob that can change the
    result; it is canonicalized (sorted keys, compact JSON) before
    hashing, and salted with the cache schema and package versions so an
    engine behaviour change cannot resurrect stale entries.
    """
    # Deferred import: repro/__init__ imports the sweep layers, so the
    # package version is not yet bound while this module first loads.
    from .. import __version__

    config_json = json.dumps(dict(engine_config), sort_keys=True, separators=(",", ":"))
    h = blake2b(digest_size=16)
    for part in (
        f"simmr-cache-v{CACHE_SCHEMA_VERSION}",
        __version__,
        trace_digest,
        scheduler_id,
        config_json,
    ):
        h.update(part.encode())
        h.update(b"\x00")
    return h.hexdigest()


class CacheStats:
    """Hit/miss/store counters for one cache session."""

    __slots__ = ("hits", "misses", "stores")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stores = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 with no lookups)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CacheStats(hits={self.hits}, misses={self.misses}, stores={self.stores})"


class ResultCache:
    """sqlite3-backed content-addressed store of simulation results.

    Usable as a context manager::

        with ResultCache(path) as cache:
            result = cache.get(key)
            if result is None:
                result = engine.run(trace)
                cache.put(key, result, trace_digest=td, scheduler_id=sid)

    Every ``put`` commits immediately, so partial sweeps survive
    interruption.  ``":memory:"`` gives a process-local cache (tests).

    One instance may be shared across threads (the simulation service
    fronts its job queue with a cache that every HTTP handler thread
    and worker consults): all statement execution is serialized behind
    an internal lock, which is cheap next to the simulations it saves.
    """

    def __init__(self, path: str | Path = ":memory:") -> None:
        self.path = str(path)
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        with self._lock:
            self._conn.executescript(_SCHEMA)
            self._migrate()
            self._conn.commit()
        #: Counters for this session (not persisted).
        self.stats = CacheStats()

    def _migrate(self) -> None:
        """Bring a pre-``created_at`` cache file up to the current table.

        ``CREATE TABLE IF NOT EXISTS`` leaves an existing table alone,
        so files written before the timestamp column exist without it;
        add it in place (existing rows read as 0 = "age unknown", which
        every prune treats as prunable).  Takes the (reentrant) instance
        lock itself rather than relying on the caller already holding it.
        """
        with self._lock:
            columns = {
                row[1]
                for row in self._conn.execute("PRAGMA table_info(results)").fetchall()
            }
            if "created_at" not in columns:
                self._conn.execute(
                    "ALTER TABLE results ADD COLUMN created_at INTEGER NOT NULL DEFAULT 0"
                )

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "ResultCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- lookups -----------------------------------------------------------

    def get(self, key: str) -> Optional[SimulationResult]:
        """The stored result under ``key``, or None (counted as a miss).

        A row whose payload no longer parses (truncated write, format
        change) is treated as absent and deleted, so a corrupt entry
        costs one re-execution instead of a crash.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM results WHERE key = ?", (key,)
            ).fetchone()
            if row is None:
                self.stats.misses += 1
                return None
            try:
                result = result_from_dict(json.loads(row[0]))
            except (ValueError, KeyError, TypeError):
                self.delete(key)
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            return result

    def contains(self, key: str) -> bool:
        """Whether ``key`` is stored (does not touch the stats)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM results WHERE key = ?", (key,)
            ).fetchone()
        return row is not None

    # -- mutation ----------------------------------------------------------

    def put(
        self,
        key: str,
        result: SimulationResult,
        *,
        trace_digest: str = "",
        scheduler_id: str = "",
    ) -> None:
        """Store (or overwrite) a result; committed immediately."""
        payload = json.dumps(result_to_dict(result))
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO results"
                " (key, trace_digest, scheduler, config, payload, created_at)"
                f" VALUES (?, ?, ?, ?, ?, {_SQL_NOW})",
                (key, trace_digest, scheduler_id, "", payload),
            )
            self._conn.commit()
            self.stats.stores += 1

    def delete(self, key: str) -> None:
        with self._lock:
            self._conn.execute("DELETE FROM results WHERE key = ?", (key,))
            self._conn.commit()

    def clear(self) -> int:
        """Drop every stored result; returns the number removed."""
        with self._lock:
            cur = self._conn.execute("DELETE FROM results")
            self._conn.commit()
            removed = cur.rowcount
            cur.close()
            return removed

    def prune_older_than(self, seconds: float) -> int:
        """Delete entries stored more than ``seconds`` ago; returns the count.

        The age comparison happens entirely in SQL against sqlite's
        clock (the same clock that stamped the rows), so there is no
        cross-clock skew.  Rows from pre-timestamp cache files carry
        ``created_at = 0`` and are always pruned — their age is unknown,
        and a deleted entry only costs one deterministic re-execution.
        """
        if seconds < 0:
            raise ValueError("prune age must be >= 0 seconds")
        with self._lock:
            # Inclusive comparison: an entry exactly at the threshold is
            # pruned, so ``prune_older_than(0)`` empties the store even
            # for rows written this same second.
            cur = self._conn.execute(
                f"DELETE FROM results WHERE created_at <= {_SQL_NOW} - ?",
                (int(seconds),),
            )
            self._conn.commit()
            removed = cur.rowcount
            cur.close()
            return removed

    # -- introspection -----------------------------------------------------

    def info(self) -> dict[str, Any]:
        """One-shot summary of the store (the ``simmr cache stats`` view)."""
        with self._lock:
            entries, traces, schedulers, payload_bytes = self._conn.execute(
                "SELECT COUNT(*), COUNT(DISTINCT trace_digest),"
                " COUNT(DISTINCT scheduler),"
                " COALESCE(SUM(LENGTH(CAST(payload AS BLOB))), 0) FROM results"
            ).fetchone()
            oldest_age, newest_age = self._conn.execute(
                f"SELECT {_SQL_NOW} - MIN(created_at), {_SQL_NOW} - MAX(created_at)"
                " FROM results WHERE created_at > 0"
            ).fetchone()
        file_bytes = 0
        if self.path != ":memory:":
            try:
                file_bytes = os.stat(self.path).st_size
            except OSError:
                pass
        return {
            "path": self.path,
            "entries": entries,
            "distinct_traces": traces,
            "distinct_schedulers": schedulers,
            "payload_bytes": payload_bytes,
            "file_bytes": file_bytes,
            "oldest_age_seconds": oldest_age,
            "newest_age_seconds": newest_age,
            "session": self.stats.to_dict(),
        }

    def __len__(self) -> int:
        with self._lock:
            return self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]

    def keys(self) -> Iterator[str]:
        with self._lock:
            rows = self._conn.execute("SELECT key FROM results ORDER BY key").fetchall()
        for (key,) in rows:
            yield key
