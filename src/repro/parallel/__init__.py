"""repro.parallel — parallel simulation campaigns with result reuse.

The simulator engine replays one trace in well under a second; the
expensive artifacts are *campaigns* — the what-if sweep
(:mod:`repro.sweep`), the scheduler zoo, the deadline-factor grids —
which are hundreds of mutually independent replays.  This package makes
campaigns scale with the hardware and with history:

* :mod:`repro.parallel.executor` — :func:`simulate_many` fans a batch
  of :class:`SimTask` descriptions out over a ``multiprocessing`` pool,
  with deterministic per-run seeding derived from each task's content
  and a BLAKE2b event-stream digest per run, so serial, parallel and
  cached executions are provably identical.
* :mod:`repro.parallel.cache` — :class:`ResultCache`, a sqlite-backed
  content-addressed store keyed on (trace digest, scheduler identity,
  engine config).  Deterministic replay means equal keys imply equal
  results: a warm cache turns a repeated sweep into pure lookups, and
  an interrupted sweep resumes from its completed cells.

``simmr sweep --workers N`` is the CLI face; ``docs/performance.md``
documents the knobs and the benchmark (``bench_parallel_sweep.py``).
"""

from .cache import CacheStats, ResultCache, cache_key, default_cache_path
from .executor import (
    FanoutStats,
    SchedulerSpec,
    SimOutcome,
    SimTask,
    last_fanout_stats,
    register_spec_kind,
    simulate_many,
)

__all__ = [
    "CacheStats",
    "FanoutStats",
    "ResultCache",
    "cache_key",
    "default_cache_path",
    "SchedulerSpec",
    "SimOutcome",
    "SimTask",
    "last_fanout_stats",
    "register_spec_kind",
    "simulate_many",
]
