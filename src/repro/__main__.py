"""``python -m repro`` dispatches to the simmr CLI."""

import sys

from .cli import main

sys.exit(main())
