"""A GridMix-style synthetic cluster workload.

GridMix is Hadoop's own synthetic load generator (the paper uses its
random text writer to produce the Sort datasets, Section IV-C).  The
classic GridMix2 mix stresses a cluster with a fixed blend of job
classes at three size tiers — many small "web query"-like jobs, some
medium aggregations, a few monster sorts.

This module models that blend as SimMR job specs so a GridMix-shaped
what-if load is one call away.  Class proportions follow GridMix2's
defaults (percentages of submitted jobs): webdataScan-heavy small tier,
thinner medium tier, rare large jobs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..trace.arrivals import ArrivalProcess
from ..trace.deadlines import DeadlineFactorPolicy
from ..trace.distributions import Exponential, Gamma, Uniform
from ..trace.synthetic import SyntheticJobSpec, SyntheticTraceGen, TaskCount

__all__ = ["GRIDMIX_MIX", "gridmix_specs", "gridmix_trace_generator"]


def gridmix_specs() -> dict[str, SyntheticJobSpec]:
    """The GridMix2-style job classes, keyed by class name."""
    return {
        # Small I/O-light jobs: the dominant class by count.
        "webdataScan.small": SyntheticJobSpec(
            name="webdataScan.small",
            num_maps=TaskCount([2, 3, 5], [0.4, 0.4, 0.2]),
            num_reduces=0,
            map_durations=Exponential(12.0),
            typical_shuffle=Uniform(1.0, 2.0),
            reduce_durations=Uniform(1.0, 2.0),
        ),
        "webdataScan.medium": SyntheticJobSpec(
            name="webdataScan.medium",
            num_maps=TaskCount([40, 60, 80], [0.3, 0.4, 0.3]),
            num_reduces=0,
            map_durations=Exponential(18.0),
            typical_shuffle=Uniform(1.0, 2.0),
            reduce_durations=Uniform(1.0, 2.0),
        ),
        # Sorts: shuffle-bound, with reduces.
        "streamSort.medium": SyntheticJobSpec(
            name="streamSort.medium",
            num_maps=TaskCount([60, 90], [0.5, 0.5]),
            num_reduces=TaskCount([15, 25], [0.5, 0.5]),
            map_durations=Gamma(shape=4.0, scale=3.0),
            typical_shuffle=Uniform(20.0, 35.0),
            first_shuffle=Uniform(24.0, 40.0),
            reduce_durations=Gamma(shape=5.0, scale=3.0),
        ),
        "streamSort.large": SyntheticJobSpec(
            name="streamSort.large",
            num_maps=TaskCount([300, 500], [0.6, 0.4]),
            num_reduces=TaskCount([60, 90], [0.6, 0.4]),
            map_durations=Gamma(shape=4.0, scale=4.0),
            typical_shuffle=Uniform(40.0, 70.0),
            first_shuffle=Uniform(48.0, 80.0),
            reduce_durations=Gamma(shape=6.0, scale=4.0),
        ),
        # Combiner-style aggregation: CPU-bound maps, tiny reduces.
        "combiner.medium": SyntheticJobSpec(
            name="combiner.medium",
            num_maps=TaskCount([50, 100], [0.5, 0.5]),
            num_reduces=TaskCount([5, 10], [0.5, 0.5]),
            map_durations=Gamma(shape=9.0, scale=4.0),
            typical_shuffle=Uniform(3.0, 8.0),
            reduce_durations=Uniform(2.0, 6.0),
        ),
        # The rare "monster query": a three-stage pipeline's heavy stage.
        "monsterQuery.large": SyntheticJobSpec(
            name="monsterQuery.large",
            num_maps=TaskCount([400, 800], [0.7, 0.3]),
            num_reduces=TaskCount([100, 150], [0.7, 0.3]),
            map_durations=Gamma(shape=6.0, scale=8.0),
            typical_shuffle=Uniform(30.0, 60.0),
            first_shuffle=Uniform(36.0, 70.0),
            reduce_durations=Gamma(shape=8.0, scale=5.0),
        ),
    }


#: Class name -> fraction of submitted jobs (GridMix2-style proportions:
#: small scans dominate, monster queries are rare).
GRIDMIX_MIX: dict[str, float] = {
    "webdataScan.small": 0.40,
    "webdataScan.medium": 0.20,
    "streamSort.medium": 0.15,
    "combiner.medium": 0.12,
    "streamSort.large": 0.08,
    "monsterQuery.large": 0.05,
}


def gridmix_trace_generator(
    arrivals: ArrivalProcess,
    *,
    deadline_policy: Optional[DeadlineFactorPolicy] = None,
    seed: int | np.random.Generator = 0,
) -> SyntheticTraceGen:
    """A :class:`SyntheticTraceGen` over the GridMix class mix."""
    specs = gridmix_specs()
    names = list(GRIDMIX_MIX)
    return SyntheticTraceGen(
        [specs[name] for name in names],
        arrivals,
        mix=[GRIDMIX_MIX[name] for name in names],
        deadline_policy=deadline_policy,
        seed=seed,
    )
