"""Statistical models of the paper's six benchmark applications.

Paper Section IV-C runs WordCount, Sort, Bayes, TF-IDF, WikiTrends and
Twitter on real datasets (Wikipedia article history, GridMix random data,
Wikipedia traffic logs, the Kwak et al. Twitter graph) in a 66-node
cluster with 64 worker nodes of 1 map + 1 reduce slot each.

We have neither the datasets nor the cluster, so each application is a
*calibrated statistical model* (a :class:`~repro.trace.synthetic.SyntheticJobSpec`):

* task counts match plausible Hadoop splits for the reported dataset
  sizes (64 MB blocks);
* per-phase duration distributions use a *different family per
  application* — this reproduces the Section II property that duration
  distributions are stable across executions of one application (small
  symmetric KL divergence, Table I) yet very different across
  applications (large KL);
* duration scales are calibrated so each application's solo FIFO
  completion time on the default 64x64 cluster lands near the actual
  times reported above the Figure 5(a) bars (WC 251 s, WikiTrends 1271 s,
  Twitter 276 s, Sort 88 s, TF-IDF 66 s, Bayes 476 s).

Because every generated profile resamples durations from the model, two
profiles from the same app are two *executions* of it — exactly what the
validation and Table I experiments need.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.job import JobProfile
from ..trace.distributions import Gamma, LogNormal, TruncatedNormal, Uniform, Weibull
from ..trace.synthetic import SyntheticJobSpec

__all__ = [
    "APP_NAMES",
    "PAPER_FIFO_ACTUALS",
    "make_app_specs",
    "app_spec",
    "sample_executions",
]

#: Application names in the paper's Figure 5(a) order.
APP_NAMES: tuple[str, ...] = (
    "WordCount",
    "WikiTrends",
    "Twitter",
    "Sort",
    "TFIDF",
    "Bayes",
)

#: Actual job completion times (seconds) reported above the Figure 5(a)
#: bars — the calibration targets for the solo FIFO run on 64x64 slots.
PAPER_FIFO_ACTUALS: dict[str, float] = {
    "WordCount": 251.0,
    "WikiTrends": 1271.0,
    "Twitter": 276.0,
    "Sort": 88.0,
    "TFIDF": 66.0,
    "Bayes": 476.0,
}


def make_app_specs() -> dict[str, SyntheticJobSpec]:
    """The six calibrated application models, keyed by name.

    Duration families per application (distinct on purpose):

    ========== =================== ================= ===================
    app        map durations       shuffle           reduce
    ========== =================== ================= ===================
    WordCount  Uniform             Uniform           Uniform
    WikiTrends LogNormal           Uniform (long)    TruncatedNormal
    Twitter    Gamma               Uniform           Weibull
    Sort       Gamma (small)       Uniform           Gamma
    TFIDF      Weibull             Uniform           Gamma
    Bayes      TruncatedNormal     Uniform           TruncatedNormal
    ========== =================== ================= ===================
    """
    return {
        # ~40 GB Wikipedia article history -> several map waves; the
        # Section II example uses 200 maps / 256 reduces at 128 slots; the
        # full dataset at 64 slots is modelled with 400 maps.
        "WordCount": SyntheticJobSpec(
            name="WordCount",
            num_maps=400,
            num_reduces=256,
            map_durations=Uniform(6.0, 50.0),
            typical_shuffle=Uniform(4.0, 9.0),
            first_shuffle=Uniform(6.0, 12.0),
            reduce_durations=Uniform(0.5, 4.0),
        ),
        # Three months of hourly Wikipedia traffic logs: many compressed
        # hourly files -> many long maps, one reduce wave.
        "WikiTrends": SyntheticJobSpec(
            name="WikiTrends",
            num_maps=716,
            num_reduces=64,
            map_durations=LogNormal(mu=np.log(48.0), sigma=0.35),
            typical_shuffle=Uniform(330.0, 430.0),
            first_shuffle=Uniform(350.0, 450.0),
            reduce_durations=TruncatedNormal(150.0, 25.0),
        ),
        # 25 GB Twitter edge list; asymmetric-link counting.
        "Twitter": SyntheticJobSpec(
            name="Twitter",
            num_maps=256,
            num_reduces=64,
            map_durations=Gamma(shape=16.0, scale=1.75),
            typical_shuffle=Uniform(48.0, 82.0),
            first_shuffle=Uniform(56.0, 90.0),
            reduce_durations=Weibull(shape=3.0, scale=38.0),
        ),
        # GridMix random data sort: short uniform maps, shuffle-heavy.
        "Sort": SyntheticJobSpec(
            name="Sort",
            num_maps=128,
            num_reduces=64,
            map_durations=Gamma(shape=8.0, scale=1.0),
            typical_shuffle=Uniform(36.0, 48.0),
            first_shuffle=Uniform(38.0, 50.0),
            reduce_durations=Gamma(shape=10.0, scale=1.0),
        ),
        # Mahout TF-IDF step on the Wikipedia dataset: single map wave.
        "TFIDF": SyntheticJobSpec(
            name="TFIDF",
            num_maps=64,
            num_reduces=64,
            map_durations=Weibull(shape=3.0, scale=16.0),
            typical_shuffle=Uniform(7.0, 12.0),
            first_shuffle=Uniform(8.0, 13.0),
            reduce_durations=TruncatedNormal(25.0, 2.5),
        ),
        # Mahout Bayes trainer step: long CPU-bound maps.
        "Bayes": SyntheticJobSpec(
            name="Bayes",
            num_maps=256,
            num_reduces=128,
            map_durations=TruncatedNormal(80.0, 13.0),
            typical_shuffle=Uniform(14.0, 30.0),
            first_shuffle=Uniform(18.0, 36.0),
            reduce_durations=TruncatedNormal(18.0, 3.0),
        ),
    }


def app_spec(name: str) -> SyntheticJobSpec:
    """The model of one application by (case-sensitive) paper name."""
    specs = make_app_specs()
    try:
        return specs[name]
    except KeyError:
        raise ValueError(f"unknown application {name!r}; known: {sorted(specs)}") from None


def sample_executions(
    name: str,
    executions: int,
    seed: int | np.random.Generator = 0,
    dataset_scales: Optional[tuple[float, ...]] = None,
) -> list[JobProfile]:
    """Sample several executions (job templates) of one application.

    ``dataset_scales`` optionally varies the dataset size per execution —
    the paper runs each application on three different input datasets.
    Scaling multiplies the task counts, keeping per-task durations
    distributed identically (fixed block size).
    """
    if executions < 1:
        raise ValueError(f"executions must be >= 1, got {executions}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    spec = app_spec(name)
    base_maps = spec.num_maps.max
    base_reduces = spec.num_reduces.max
    out: list[JobProfile] = []
    for i in range(executions):
        if dataset_scales:
            scale = dataset_scales[i % len(dataset_scales)]
            scaled = SyntheticJobSpec(
                name=spec.name,
                num_maps=max(1, round(base_maps * scale)),
                num_reduces=max(1, round(base_reduces * scale)),
                map_durations=spec.map_durations,
                typical_shuffle=spec.typical_shuffle,
                first_shuffle=spec.first_shuffle,
                reduce_durations=spec.reduce_durations,
            )
            out.append(scaled.make_profile(rng))
        else:
            out.append(spec.make_profile(rng))
    return out
