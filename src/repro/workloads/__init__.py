"""Workload models: the six benchmark applications and the Facebook mix."""

from .apps import (
    APP_NAMES,
    PAPER_FIFO_ACTUALS,
    app_spec,
    make_app_specs,
    sample_executions,
)
from .facebook import (
    FACEBOOK_JOB_BINS,
    FACEBOOK_MAP_LOGNORMAL,
    FACEBOOK_REDUCE_LOGNORMAL,
    FacebookJobSpec,
    facebook_trace_generator,
)
from .gridmix import GRIDMIX_MIX, gridmix_specs, gridmix_trace_generator
from .mixes import permuted_deadline_trace, testbed_mix_profiles

__all__ = [
    "APP_NAMES",
    "PAPER_FIFO_ACTUALS",
    "app_spec",
    "make_app_specs",
    "sample_executions",
    "FACEBOOK_JOB_BINS",
    "FACEBOOK_MAP_LOGNORMAL",
    "FACEBOOK_REDUCE_LOGNORMAL",
    "FacebookJobSpec",
    "facebook_trace_generator",
    "GRIDMIX_MIX",
    "gridmix_specs",
    "gridmix_trace_generator",
    "permuted_deadline_trace",
    "testbed_mix_profiles",
]
