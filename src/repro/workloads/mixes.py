"""Workload mixes for the scheduler case study (paper Section V-B).

"For the real workload trace, we use a mix of the six realistic
applications with different input dataset sizes ... We generate an
equally probable random permutation of arrival of these jobs and assume
that the inter-arrival time of the jobs is exponential."  Deadlines are
uniform in ``[T_J, df * T_J]``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.cluster import ClusterConfig
from ..core.job import JobProfile, TraceJob
from ..trace.arrivals import ExponentialArrivals
from ..trace.deadlines import DeadlineFactorPolicy
from .apps import APP_NAMES, sample_executions

__all__ = ["testbed_mix_profiles", "permuted_deadline_trace"]

#: Dataset-size multipliers standing in for the paper's three input
#: datasets per application (e.g. 32/40/43 GB for WordCount).
DEFAULT_DATASET_SCALES: tuple[float, ...] = (0.8, 1.0, 1.2)


def testbed_mix_profiles(
    executions_per_app: int = 3,
    *,
    dataset_scales: Optional[Sequence[float]] = DEFAULT_DATASET_SCALES,
    seed: int | np.random.Generator = 0,
    apps: Sequence[str] = APP_NAMES,
) -> list[JobProfile]:
    """Job templates of the testbed mix: each app on several datasets."""
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    profiles: list[JobProfile] = []
    for name in apps:
        profiles.extend(
            sample_executions(
                name,
                executions_per_app,
                seed=rng,
                dataset_scales=tuple(dataset_scales) if dataset_scales else None,
            )
        )
    return profiles


def permuted_deadline_trace(
    profiles: Sequence[JobProfile],
    mean_interarrival: float,
    deadline_factor: float,
    cluster: ClusterConfig,
    *,
    seed: int | np.random.Generator = 0,
    min_map_percent_completed: float = 0.05,
) -> list[TraceJob]:
    """One randomized case-study trace.

    The given job templates are permuted uniformly at random, submitted
    with exponential inter-arrival times (first job at time 0), and each
    job gets a deadline uniform in ``[T_J, df * T_J]`` relative to its
    submission.
    """
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    order = rng.permutation(len(profiles))
    arrivals = ExponentialArrivals(mean_interarrival).sample(len(profiles), rng)
    policy = DeadlineFactorPolicy(
        deadline_factor, cluster, min_map_percent_completed=min_map_percent_completed
    )
    trace: list[TraceJob] = []
    for pos, idx in enumerate(order):
        profile = profiles[int(idx)]
        submit = float(arrivals[pos])
        deadline = policy.deadline_for(profile, submit, rng)
        trace.append(TraceJob(profile, submit, deadline))
    return trace
