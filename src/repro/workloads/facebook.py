"""Synthetic Facebook workload (paper Section V-C).

The paper extracts the CDFs of map and reduce task durations from
Figure 1 of Zaharia et al.'s delay-scheduling study (Facebook production,
October 2009), fits ~60 candidate distributions, and finds LogNormal fits
best: ``LN(9.9511, 1.6764)`` for map durations (Kolmogorov-Smirnov
0.1056) and ``LN(12.375, 1.6262)`` for reduce durations (KS 0.0451).
Those fits are on *milliseconds*; profiles here are generated in seconds
(``scale=1e-3``).

Job sizes come from the same study's Table 3 (jobs binned by number of
map tasks, with the matching reduce counts).  The published bins are
approximated below — the workload's defining features are preserved: a
large majority of tiny (1-2 map, map-only) jobs, a long tail of
thousand-map jobs, and reduce stages appearing only in the larger bins.

:class:`FacebookJobSpec` samples map and reduce counts *jointly* from the
bins (big jobs get reduces, small ones don't), which the independent
count models of :class:`~repro.trace.synthetic.SyntheticJobSpec` cannot
express.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.job import JobProfile
from ..trace.arrivals import ArrivalProcess
from ..trace.deadlines import DeadlineFactorPolicy
from ..trace.distributions import DurationDistribution, LogNormal
from ..trace.synthetic import SyntheticJobSpec, SyntheticTraceGen, TaskCount

__all__ = [
    "FACEBOOK_MAP_LOGNORMAL",
    "FACEBOOK_REDUCE_LOGNORMAL",
    "FACEBOOK_JOB_BINS",
    "FacebookJobSpec",
    "facebook_trace_generator",
]

#: The paper's LogNormal fit to Facebook map-task durations (ms).
FACEBOOK_MAP_LOGNORMAL: tuple[float, float] = (9.9511, 1.6764)
#: The paper's LogNormal fit to Facebook reduce-task durations (ms).
FACEBOOK_REDUCE_LOGNORMAL: tuple[float, float] = (12.375, 1.6262)

#: ``(num_maps, num_reduces, fraction_of_jobs)`` bins approximating
#: Table 3 of Zaharia et al. (EuroSys 2010).
FACEBOOK_JOB_BINS: tuple[tuple[int, int, float], ...] = (
    (1, 0, 0.39),
    (2, 0, 0.16),
    (10, 3, 0.14),
    (50, 0, 0.09),
    (100, 10, 0.06),
    (200, 50, 0.06),
    (400, 100, 0.04),
    (800, 180, 0.04),
    (2400, 360, 0.02),
)


class FacebookJobSpec(SyntheticJobSpec):
    """Facebook-like jobs with *correlated* map/reduce counts.

    A job-size bin is drawn first; its map and reduce counts come as a
    pair, so the big-jobs-have-reduces structure of the production
    workload survives.  Durations follow the paper's LogNormal fits; the
    fitted reduce-task duration covers the whole reduce task
    (shuffle + sort + reduce), split here by ``shuffle_fraction``.
    """

    def __init__(
        self,
        bins: Sequence[tuple[int, int, float]] = FACEBOOK_JOB_BINS,
        *,
        shuffle_fraction: float = 1.0 / 3.0,
        duration_scale: float = 1e-3,
    ) -> None:
        if not bins:
            raise ValueError("at least one job-size bin is required")
        if not 0.0 < shuffle_fraction < 1.0:
            raise ValueError(f"shuffle_fraction must be in (0, 1), got {shuffle_fraction}")
        self._bins = [(int(m), int(r), float(w)) for m, r, w in bins]
        weights = np.array([w for _, _, w in self._bins])
        if np.any(weights <= 0):
            raise ValueError("bin fractions must be positive")
        self._bin_weights = weights / weights.sum()
        self.shuffle_fraction = shuffle_fraction

        map_mu, map_sigma = FACEBOOK_MAP_LOGNORMAL
        red_mu, red_sigma = FACEBOOK_REDUCE_LOGNORMAL
        map_dist = LogNormal(map_mu, map_sigma, scale=duration_scale)
        # Splitting a LogNormal total by a constant fraction shifts only mu.
        shuffle_dist = LogNormal(
            red_mu + float(np.log(shuffle_fraction)), red_sigma, scale=duration_scale
        )
        reduce_dist = LogNormal(
            red_mu + float(np.log(1.0 - shuffle_fraction)), red_sigma, scale=duration_scale
        )
        super().__init__(
            name="Facebook",
            num_maps=TaskCount([m for m, _, _ in self._bins], self._bin_weights),
            num_reduces=TaskCount([max(r, 0) for _, r, _ in self._bins], self._bin_weights),
            map_durations=map_dist,
            typical_shuffle=shuffle_dist,
            first_shuffle=shuffle_dist,
            reduce_durations=reduce_dist,
        )

    def make_profile(self, rng: np.random.Generator, name: Optional[str] = None) -> JobProfile:
        bin_idx = int(rng.choice(len(self._bins), p=self._bin_weights))
        n_m, n_r, _ = self._bins[bin_idx]
        empty = np.empty(0)
        return JobProfile(
            name=name or self.name,
            num_maps=n_m,
            num_reduces=n_r,
            map_durations=self.map_durations.sample(rng, n_m) if n_m else empty,
            first_shuffle_durations=(
                self.first_shuffle.sample(rng, n_r) if n_r else empty
            ),
            typical_shuffle_durations=(
                self.typical_shuffle.sample(rng, n_r) if n_r else empty
            ),
            reduce_durations=self.reduce_durations.sample(rng, n_r) if n_r else empty,
        )


def facebook_trace_generator(
    arrivals: ArrivalProcess,
    *,
    deadline_policy: Optional[DeadlineFactorPolicy] = None,
    seed: int | np.random.Generator = 0,
    shuffle_fraction: float = 1.0 / 3.0,
) -> SyntheticTraceGen:
    """A :class:`SyntheticTraceGen` producing the Facebook-like workload."""
    return SyntheticTraceGen(
        [FacebookJobSpec(shuffle_fraction=shuffle_fraction)],
        arrivals,
        deadline_policy=deadline_policy,
        seed=seed,
    )
