"""The ARIA completion-time model and its inversion to minimal slot demands.

Paper Section V-A: the MinEDF scheduler needs, for every arriving job, the
*minimal* number of map and reduce slots that still meets the job's
deadline.  The model (from Verma et al., "ARIA", ICAC 2011) expresses
lower/upper bounds on job completion time as

    ``T(S_M, S_R) = a / S_M + b / S_R + c``

where ``S_M`` / ``S_R`` are the allocated map/reduce slots and ``a, b, c``
derive from the profile's per-phase average/maximum task durations via the
makespan bounds in :mod:`repro.models.bounds`:

* map stage — ``n_M`` tasks on ``S_M`` slots;
* first-wave shuffle — its *non-overlapping* part is a latency term
  (one wave, independent of ``S_R``);
* typical shuffle — the remaining ``(n_R / S_R - 1)`` waves;
* reduce phase — ``n_R`` tasks on ``S_R`` slots.

"Typically, the average of lower and upper bounds is a good approximation
of the job completion time", so ``bound="average"`` is the default
everywhere.

For a deadline ``D``, all integer points on the hyperbola ``T(S_M, S_R) =
D`` are feasible allocations; Lagrange multipliers give the point
minimizing ``S_M + S_R`` in closed form:

    ``S_M = (a + sqrt(a*b)) / (D - c)``,  ``S_R = (b + sqrt(a*b)) / (D - c)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal, Optional

from ..core.cluster import ClusterConfig
from ..core.job import JobProfile

__all__ = [
    "Bound",
    "ModelCoefficients",
    "model_coefficients",
    "estimate_completion_time",
    "min_slots_for_deadline",
]

Bound = Literal["lower", "upper", "average"]


@dataclass(frozen=True, slots=True)
class ModelCoefficients:
    """Coefficients of ``T(S_M, S_R) = a/S_M + b/S_R + c`` for one job."""

    a: float
    b: float
    c: float

    def completion_time(self, map_slots: int, reduce_slots: int) -> float:
        """Estimated completion time under the given slot allocation."""
        if map_slots < 1 and self.a > 0:
            raise ValueError("a job with map work needs at least one map slot")
        if reduce_slots < 1 and self.b > 0:
            raise ValueError("a job with reduce work needs at least one reduce slot")
        t = self.c
        if self.a > 0:
            t += self.a / map_slots
        if self.b > 0:
            t += self.b / reduce_slots
        return t


def _coeffs_lower(profile: JobProfile) -> ModelCoefficients:
    m, r = profile.num_maps, profile.num_reduces
    ms = profile.map_stats
    sh1 = profile.first_shuffle_stats
    sht = profile.typical_shuffle_stats
    rs = profile.reduce_stats
    a = ms.avg * m
    b = (sht.avg + rs.avg) * r
    # First-wave shuffle latency enters once; one typical-shuffle wave is
    # already counted inside ``b`` (the N_R/S_R waves), so subtract it.
    c = (sh1.avg - sht.avg) if r > 0 else 0.0
    return ModelCoefficients(a=a, b=b, c=c)


def _coeffs_upper(profile: JobProfile) -> ModelCoefficients:
    m, r = profile.num_maps, profile.num_reduces
    ms = profile.map_stats
    sh1 = profile.first_shuffle_stats
    sht = profile.typical_shuffle_stats
    rs = profile.reduce_stats
    a = ms.avg * max(m - 1, 0)
    b = (sht.avg + rs.avg) * max(r - 1, 0)
    c = ms.max if m > 0 else 0.0
    if r > 0:
        c += sh1.max + sht.max + rs.max - sht.avg
    return ModelCoefficients(a=a, b=b, c=c)


def model_coefficients(profile: JobProfile, bound: Bound = "average") -> ModelCoefficients:
    """The ``(a, b, c)`` coefficients of the chosen bound for ``profile``."""
    if bound == "lower":
        return _coeffs_lower(profile)
    if bound == "upper":
        return _coeffs_upper(profile)
    if bound == "average":
        lo, up = _coeffs_lower(profile), _coeffs_upper(profile)
        return ModelCoefficients(
            a=(lo.a + up.a) / 2, b=(lo.b + up.b) / 2, c=(lo.c + up.c) / 2
        )
    raise ValueError(f"unknown bound {bound!r}; expected lower/upper/average")


def estimate_completion_time(
    profile: JobProfile,
    map_slots: int,
    reduce_slots: int,
    bound: Bound = "average",
) -> float:
    """Model estimate of the job's completion time on the given slots."""
    return model_coefficients(profile, bound).completion_time(map_slots, reduce_slots)


def min_slots_for_deadline(
    profile: JobProfile,
    deadline: float,
    cluster: Optional[ClusterConfig] = None,
    bound: Bound = "average",
) -> tuple[int, int]:
    """Minimal ``(S_M, S_R)`` meeting ``deadline`` (relative to job start).

    Applies the Lagrange closed form, rounds up to integers, clamps each
    dimension to ``[1, num_tasks]`` (extra slots beyond one per task are
    useless) and, when a ``cluster`` is given, to its capacity.  If the
    deadline is infeasible even with every useful slot, the maximal useful
    allocation is returned — the scheduler can do no better than give the
    job everything.
    """
    if deadline <= 0 or not math.isfinite(deadline):
        raise ValueError(f"deadline must be a positive finite duration, got {deadline}")
    coeffs = model_coefficients(profile, bound)

    max_m = profile.num_maps
    max_r = profile.num_reduces
    if cluster is not None:
        max_m = min(max_m, cluster.map_slots)
        max_r = min(max_r, cluster.reduce_slots)
    max_m = max(max_m, 1 if profile.num_maps > 0 else 0)
    max_r = max(max_r, 1 if profile.num_reduces > 0 else 0)

    budget = deadline - coeffs.c
    if budget <= 0:
        return (max_m, max_r)

    cross = math.sqrt(coeffs.a * coeffs.b)
    s_m = (coeffs.a + cross) / budget if coeffs.a > 0 else 0.0
    s_r = (coeffs.b + cross) / budget if coeffs.b > 0 else 0.0

    m = min(max(math.ceil(s_m), 1), max_m) if profile.num_maps > 0 else 0
    r = min(max(math.ceil(s_r), 1), max_r) if profile.num_reduces > 0 else 0

    # Integer rounding can leave slack in one dimension; greedily shrink
    # while the deadline still holds so the demand is truly minimal.
    def feasible(mm: int, rr: int) -> bool:
        if profile.num_maps > 0 and mm < 1:
            return False
        if profile.num_reduces > 0 and rr < 1:
            return False
        return coeffs.completion_time(max(mm, 1), max(rr, 1)) <= deadline

    # Integer rounding (or cluster clamping) can leave the Lagrange point
    # just infeasible; grow the allocation minimally — always along the
    # dimension with the larger marginal completion-time benefit — rather
    # than jumping to the maximal allocation.
    while not feasible(m, r):
        gain_m = coeffs.a / m - coeffs.a / (m + 1) if 0 < m < max_m else -1.0
        gain_r = coeffs.b / r - coeffs.b / (r + 1) if 0 < r < max_r else -1.0
        if gain_m <= 0 and gain_r <= 0:
            return (max_m, max_r)
        if gain_m >= gain_r:
            m += 1
        else:
            r += 1
    improved = True
    while improved:
        improved = False
        if m > 1 and feasible(m - 1, r):
            m -= 1
            improved = True
        if r > 1 and feasible(m, r - 1):
            r -= 1
            improved = True
    return (m, r)
