"""Makespan bounds for greedy task assignment.

The ARIA performance model (paper Section V-A) rests on a classical
result: given ``n`` tasks with durations ``T_1..T_n`` processed by ``k``
slots under the online greedy policy "assign each task to the slot with
the earliest finishing time",

* the makespan is at least ``n * avg / k`` (perfect load balance), and
* at most ``(n - 1) * avg / k + max`` (the last, longest task lands on the
  most loaded slot).

Both bounds need only the average and maximum task duration — the
"performance invariants" stored in job profiles.  :func:`greedy_makespan`
implements the greedy assignment itself, used by tests to verify that the
bounds actually bracket it and by the engine-free analyses.
"""

from __future__ import annotations

import heapq
from typing import Sequence

__all__ = [
    "makespan_lower_bound",
    "makespan_upper_bound",
    "greedy_makespan",
]


def _validate(n: int, k: int) -> None:
    if n < 0:
        raise ValueError(f"task count must be >= 0, got {n}")
    if k < 1:
        raise ValueError(f"slot count must be >= 1, got {k}")


def makespan_lower_bound(n: int, avg: float, k: int) -> float:
    """Lower bound ``n * avg / k`` on the greedy makespan."""
    _validate(n, k)
    return n * avg / k


def makespan_upper_bound(n: int, avg: float, max_: float, k: int) -> float:
    """Upper bound ``(n - 1) * avg / k + max`` on the greedy makespan."""
    _validate(n, k)
    if n == 0:
        return 0.0
    return (n - 1) * avg / k + max_


def greedy_makespan(durations: Sequence[float], k: int) -> float:
    """Makespan of the online greedy assignment of ``durations`` to ``k`` slots.

    Tasks are assigned in the given order, each to the slot that becomes
    free earliest — exactly the slot-allocation behaviour of the Hadoop
    job master within a single job's stage.
    """
    _validate(len(durations), k)
    if not len(durations):
        return 0.0
    finish_times = [0.0] * min(k, len(durations))
    heapq.heapify(finish_times)
    for d in durations:
        if d < 0:
            raise ValueError(f"durations must be non-negative, got {d}")
        earliest = heapq.heappop(finish_times)
        heapq.heappush(finish_times, earliest + float(d))
    return max(finish_times)
