"""Analytic performance models (ARIA bounds) used by deadline scheduling."""

from .aria import (
    Bound,
    ModelCoefficients,
    estimate_completion_time,
    min_slots_for_deadline,
    model_coefficients,
)
from .bounds import greedy_makespan, makespan_lower_bound, makespan_upper_bound

__all__ = [
    "Bound",
    "ModelCoefficients",
    "estimate_completion_time",
    "min_slots_for_deadline",
    "model_coefficients",
    "greedy_makespan",
    "makespan_lower_bound",
    "makespan_upper_bound",
]
