"""Terminal rendering of experiment results (pure-text plots).

The paper's figures are line plots (deadline sweeps, simulation-time
curves) and grouped bars (accuracy panels).  This module renders both as
plain text so ``simmr experiment --plot`` can show a figure's *shape*
directly in the terminal, with no plotting dependency.

Public API (all return strings, never print):

* :func:`line_plot` — multi-series scatter/line canvas with axis labels,
  optional log-x, and per-series markers (``ox+*`` ...);
* :func:`bar_chart` — horizontal labelled bars with an optional
  reference line (e.g. "100% of actual" in the accuracy panels);
* :func:`sparkline` — a one-line block-character series for tables.

Used by :mod:`repro.cli` (``--plot``) and the experiment modules'
``__str__`` helpers; nothing here touches simulation state.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional, Sequence

__all__ = ["line_plot", "bar_chart", "sparkline"]

_MARKERS = "ox+*#@%&"
_BLOCKS = " ▁▂▃▄▅▆▇█"


def _nice_number(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.1e}"
    if abs(value) >= 10:
        return f"{value:.0f}"
    return f"{value:.2f}"


def _transform(value: float, log: bool) -> float:
    if log:
        if value <= 0:
            raise ValueError(f"log-scale axis cannot show non-positive value {value}")
        return math.log10(value)
    return value


def line_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 60,
    height: int = 16,
    logx: bool = False,
    logy: bool = False,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render named (x, y) series on one character grid.

    Each series gets a marker from ``o x + * ...``; the legend maps them
    back.  Use ``logx=True`` for the paper's inter-arrival sweeps.
    """
    if not series or all(not pts for pts in series.values()):
        raise ValueError("line_plot needs at least one non-empty series")
    if width < 10 or height < 4:
        raise ValueError("plot must be at least 10x4 characters")

    points = [
        (_transform(x, logx), _transform(y, logy))
        for pts in series.values()
        for x, y in pts
    ]
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for (label, pts), marker in zip(series.items(), _MARKERS):
        for x, y in pts:
            tx = (_transform(x, logx) - x_lo) / (x_hi - x_lo)
            ty = (_transform(y, logy) - y_lo) / (y_hi - y_lo)
            col = min(int(tx * (width - 1)), width - 1)
            row = height - 1 - min(int(ty * (height - 1)), height - 1)
            grid[row][col] = marker

    def y_label(row: int) -> float:
        frac = (height - 1 - row) / (height - 1)
        raw = y_lo + frac * (y_hi - y_lo)
        return 10**raw if logy else raw

    lines = []
    if title:
        lines.append(title)
    label_width = max(len(_nice_number(y_label(r))) for r in (0, height - 1)) + 1
    for row in range(height):
        tag = ""
        if row == 0 or row == height - 1 or row == height // 2:
            tag = _nice_number(y_label(row))
        lines.append(f"{tag:>{label_width}} |" + "".join(grid[row]))
    x_left = _nice_number(10**x_lo if logx else x_lo)
    x_right = _nice_number(10**x_hi if logx else x_hi)
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    footer = " " * (label_width + 2) + x_left
    footer += " " * max(1, width - len(x_left) - len(x_right)) + x_right
    lines.append(footer)
    if xlabel or logx:
        scale = " (log scale)" if logx else ""
        lines.append(" " * (label_width + 2) + f"{xlabel}{scale}")
    legend = "   ".join(
        f"{marker}={label}" for (label, _), marker in zip(series.items(), _MARKERS)
    )
    lines.append((ylabel + "   " if ylabel else "") + legend)
    return "\n".join(lines)


def bar_chart(
    rows: Sequence[tuple[str, float]],
    *,
    width: int = 50,
    title: str = "",
    reference: Optional[float] = None,
) -> str:
    """Horizontal bars for labelled values (the Figure 5 panel shape).

    ``reference`` draws a marker column at that value (e.g. 100% =
    "actual" in the accuracy panels).
    """
    if not rows:
        raise ValueError("bar_chart needs at least one row")
    if any(v < 0 for _, v in rows):
        raise ValueError("bar values must be non-negative")
    peak = max(max(v for _, v in rows), reference or 0.0)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(label) for label, _ in rows)
    lines = [title] if title else []
    ref_col = None
    if reference is not None:
        ref_col = min(int(reference / peak * width), width)
    for label, value in rows:
        filled = min(int(value / peak * width), width)
        bar = list("#" * filled + " " * (width - filled))
        if ref_col is not None and ref_col < width:
            bar[ref_col] = "|" if bar[ref_col] == " " else bar[ref_col]
        lines.append(f"{label:>{label_width}} [{''.join(bar)}] {_nice_number(value)}")
    if reference is not None:
        lines.append(f"{'':>{label_width}}  '|' marks {_nice_number(reference)}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A one-line block-character trend of ``values``."""
    if not values:
        raise ValueError("sparkline needs at least one value")
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[idx])
    return "".join(out)
