"""Parameter sweeps: the "what-if questions" harness.

The paper's closing pitch: "SimMR can quickly replay production cluster
workloads with different scenarios of interest, assess various what-if
questions, and help avoiding error-prone decisions."  This module runs
the cartesian product of (scheduler, cluster shape, slow-start) over one
trace and tabulates the decision metrics, each cell being a sub-second
replay.

Two layers:

* :func:`expand_grid` — the sweep grid: validated, deduplicated,
  deterministic-order cartesian expansion of the three axes into
  :class:`GridPoint` cells.
* :func:`run_sweep` — replay every cell, optionally fanned out over a
  worker pool and backed by the content-addressed result cache
  (:mod:`repro.parallel`): ``workers=N`` parallelizes, ``cache=`` makes
  re-runs incremental (only cells whose trace/scheduler/config changed
  re-execute), and every cell carries a BLAKE2b event digest so the
  serial, parallel and cached paths can be asserted identical.

Use :class:`ClusterPlanner` when the question is "how big a cluster";
use a sweep when it is "which configuration of this cluster".
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping, Optional, Sequence, Union

import numpy as np

from .core.cluster import ClusterConfig
from .core.job import TraceJob
from .experiments.common import format_table
from .parallel.cache import ResultCache
from .parallel.executor import ProgressFn, SchedulerSpec, SimTask, simulate_many
from .schedulers import Scheduler

__all__ = [
    "GridPoint",
    "SweepCell",
    "SweepResult",
    "expand_grid",
    "run_sweep",
]

SchedulerFactory = Callable[[], Scheduler]
SchedulerAxis = Union[
    Mapping[str, SchedulerFactory], Sequence[Union[str, SchedulerSpec]]
]


@dataclass(frozen=True)
class GridPoint:
    """One cell of the sweep grid, before execution."""

    scheduler: SchedulerSpec
    cluster: ClusterConfig
    slowstart: float


def _scheduler_axis(schedulers: SchedulerAxis) -> list[SchedulerSpec]:
    """Normalize the scheduler axis to :class:`SchedulerSpec` entries.

    Accepts registry names (``"fifo"``), prebuilt specs (e.g.
    ``SchedulerSpec(kind="zoo", name="Fair")``), or a mapping of display
    name to zero-argument factory (wrapped as inline specs, which run
    in-process and bypass the cache — a closure has no content address).
    """
    if isinstance(schedulers, Mapping):
        return [
            SchedulerSpec.inline(name, factory)
            for name, factory in schedulers.items()
        ]
    specs: list[SchedulerSpec] = []
    for entry in schedulers:
        if isinstance(entry, SchedulerSpec):
            specs.append(entry)
        else:
            specs.append(SchedulerSpec(kind="registry", name=entry))
    return specs


def expand_grid(
    schedulers: SchedulerAxis,
    clusters: Sequence[ClusterConfig],
    slowstarts: Sequence[float],
) -> list[GridPoint]:
    """Expand the three sweep axes into an ordered list of grid points.

    * An **empty axis** is rejected with a :class:`ValueError` naming
      the axis — an empty cartesian product would silently sweep
      nothing.
    * **Duplicate configurations** (e.g. the same cluster shape listed
      twice, or two names resolving to equal specs) are dropped,
      keeping the first occurrence, so a duplicated axis entry cannot
      double-count a cell or double its cost.
    * Order is deterministic: schedulers outermost, then clusters, then
      slow-starts, each in the order given.
    """
    specs = _scheduler_axis(schedulers)
    if not specs:
        raise ValueError("at least one scheduler is required (empty schedulers axis)")
    if not clusters:
        raise ValueError("at least one cluster is required (empty clusters axis)")
    if not slowstarts:
        raise ValueError("at least one slow-start is required (empty slowstarts axis)")
    points: list[GridPoint] = []
    seen: set[tuple] = set()
    for spec in specs:
        for cluster in clusters:
            for slowstart in slowstarts:
                point = GridPoint(spec, cluster, float(slowstart))
                dedup_key = (spec.kind, spec.name, spec.kwargs, cluster, point.slowstart)
                if dedup_key in seen:
                    continue
                seen.add(dedup_key)
                points.append(point)
    return points


@dataclass(frozen=True, slots=True)
class SweepCell:
    """Metrics of one configuration's replay."""

    scheduler: str
    map_slots: int
    reduce_slots: int
    slowstart: float
    makespan: float
    mean_duration: float
    p95_duration: float
    deadline_utility: float
    #: True when this cell was restored from the result cache.
    cached: bool = False
    #: BLAKE2b fingerprint of the replay's event stream (None when the
    #: sweep ran with ``digest=False``).
    event_digest: Optional[str] = None
    #: Which execution path produced this cell: ``"kernel"`` or
    #: ``"object"`` (None on results predating the accounting).
    engine_path: Optional[str] = None
    #: Why the columnar engine fell back to the object loop, if it did.
    fallback_reason: Optional[str] = None

    def row(self) -> dict:
        return {
            "scheduler": self.scheduler,
            "map_slots": self.map_slots,
            "reduce_slots": self.reduce_slots,
            "slowstart": self.slowstart,
            "makespan_s": self.makespan,
            "mean_T_J_s": self.mean_duration,
            "p95_T_J_s": self.p95_duration,
            "deadline_utility": self.deadline_utility,
            "engine_path": self.engine_path or "",
        }


@dataclass
class SweepResult:
    """All swept cells, with ranking helpers and cache accounting."""

    cells: list[SweepCell]
    #: Number of cells served from the result cache (0 without a cache).
    cache_hits: int = 0

    @property
    def executed(self) -> int:
        """Cells that actually ran a simulation this time."""
        return len(self.cells) - self.cache_hits

    def rows(self) -> list[dict]:
        return [c.row() for c in self.cells]

    def best_by(self, metric: str) -> SweepCell:
        """The cell minimizing ``makespan`` / ``mean_duration`` /
        ``p95_duration`` / ``deadline_utility``."""
        if not self.cells:
            raise ValueError("empty sweep")
        try:
            return min(self.cells, key=lambda c: getattr(c, metric))
        except AttributeError:
            raise ValueError(
                f"unknown metric {metric!r}; one of makespan, mean_duration, "
                "p95_duration, deadline_utility"
            ) from None

    def __str__(self) -> str:
        return format_table(self.rows(), title=f"What-if sweep ({len(self.cells)} cells)")


def run_sweep(
    trace: Sequence[TraceJob],
    *,
    schedulers: SchedulerAxis = ("fifo",),
    clusters: Sequence[ClusterConfig] = (ClusterConfig(64, 64),),
    slowstarts: Sequence[float] = (0.05,),
    workers: int = 0,
    cache: "ResultCache | str | Path | bool | None" = None,
    fresh: bool = False,
    digest: bool = True,
    progress: Optional[ProgressFn] = None,
) -> SweepResult:
    """Replay ``trace`` under every configuration combination.

    ``schedulers`` is either registry names (see
    :func:`repro.schedulers.make_scheduler`), prebuilt
    :class:`~repro.parallel.executor.SchedulerSpec` entries, or a
    mapping of display name to zero-argument factory (in-process only).

    ``workers``, ``cache``, ``fresh``, ``digest`` and ``progress`` are
    forwarded to :func:`repro.parallel.executor.simulate_many`:
    ``workers=N`` fans the grid out over ``N`` processes, ``cache=``
    enables the content-addressed result cache (``True`` = the default
    cache file, or a path / open :class:`ResultCache`), ``fresh=True``
    forces re-execution while still repopulating the cache.  Results
    are identical on every path — each cell's ``event_digest``
    fingerprints the replay, and the cache key covers everything that
    determines the outcome.
    """
    if not trace:
        raise ValueError("cannot sweep an empty trace")
    points = expand_grid(schedulers, clusters, slowstarts)

    tasks = [
        SimTask(
            trace_id="trace",
            scheduler=p.scheduler,
            cluster=p.cluster,
            slowstart=p.slowstart,
            record_tasks=False,
            tag=p,
        )
        for p in points
    ]
    outcomes = simulate_many(
        {"trace": trace},
        tasks,
        workers=workers,
        cache=cache,
        fresh=fresh,
        digest=digest,
        progress=progress,
    )

    cells: list[SweepCell] = []
    hits = 0
    for point, outcome in zip(points, outcomes):
        result = outcome.result
        durations = np.array(list(result.durations().values()))
        hits += outcome.cached
        cells.append(
            SweepCell(
                scheduler=result.scheduler_name,
                map_slots=point.cluster.map_slots,
                reduce_slots=point.cluster.reduce_slots,
                slowstart=point.slowstart,
                makespan=result.makespan,
                mean_duration=float(durations.mean()),
                p95_duration=float(np.percentile(durations, 95)),
                deadline_utility=result.relative_deadline_exceeded(),
                cached=outcome.cached,
                event_digest=result.event_digest,
                engine_path=result.engine_path,
                fallback_reason=result.fallback_reason,
            )
        )
    return SweepResult(cells=cells, cache_hits=hits)
