"""Parameter sweeps: the "what-if questions" harness.

The paper's closing pitch: "SimMR can quickly replay production cluster
workloads with different scenarios of interest, assess various what-if
questions, and help avoiding error-prone decisions."  This module runs
the cartesian product of (scheduler, cluster shape, slow-start) over one
trace and tabulates the decision metrics, each cell being a sub-second
replay.

Use :class:`ClusterPlanner` when the question is "how big a cluster";
use a sweep when it is "which configuration of this cluster".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from .core.cluster import ClusterConfig
from .core.engine import SimulatorEngine
from .core.job import TraceJob
from .schedulers import Scheduler, make_scheduler
from .experiments.common import format_table

__all__ = ["SweepCell", "SweepResult", "run_sweep"]

SchedulerFactory = Callable[[], Scheduler]


@dataclass(frozen=True, slots=True)
class SweepCell:
    """Metrics of one configuration's replay."""

    scheduler: str
    map_slots: int
    reduce_slots: int
    slowstart: float
    makespan: float
    mean_duration: float
    p95_duration: float
    deadline_utility: float

    def row(self) -> dict:
        return {
            "scheduler": self.scheduler,
            "map_slots": self.map_slots,
            "reduce_slots": self.reduce_slots,
            "slowstart": self.slowstart,
            "makespan_s": self.makespan,
            "mean_T_J_s": self.mean_duration,
            "p95_T_J_s": self.p95_duration,
            "deadline_utility": self.deadline_utility,
        }


@dataclass
class SweepResult:
    """All swept cells, with ranking helpers."""

    cells: list[SweepCell]

    def rows(self) -> list[dict]:
        return [c.row() for c in self.cells]

    def best_by(self, metric: str) -> SweepCell:
        """The cell minimizing ``makespan`` / ``mean_duration`` /
        ``p95_duration`` / ``deadline_utility``."""
        if not self.cells:
            raise ValueError("empty sweep")
        try:
            return min(self.cells, key=lambda c: getattr(c, metric))
        except AttributeError:
            raise ValueError(
                f"unknown metric {metric!r}; one of makespan, mean_duration, "
                "p95_duration, deadline_utility"
            ) from None

    def __str__(self) -> str:
        return format_table(self.rows(), title=f"What-if sweep ({len(self.cells)} cells)")


def run_sweep(
    trace: Sequence[TraceJob],
    *,
    schedulers: Mapping[str, SchedulerFactory] | Sequence[str] = ("fifo",),
    clusters: Sequence[ClusterConfig] = (ClusterConfig(64, 64),),
    slowstarts: Sequence[float] = (0.05,),
) -> SweepResult:
    """Replay ``trace`` under every configuration combination.

    ``schedulers`` is either registry names (see
    :func:`repro.schedulers.make_scheduler`) or a mapping of display name
    to zero-argument factory.
    """
    if not trace:
        raise ValueError("cannot sweep an empty trace")
    if isinstance(schedulers, Mapping):
        factories = dict(schedulers)
    else:
        factories = {name: (lambda n=name: make_scheduler(n)) for name in schedulers}
    if not factories:
        raise ValueError("at least one scheduler is required")

    cells: list[SweepCell] = []
    for sched_name, factory in factories.items():
        for cluster in clusters:
            for slowstart in slowstarts:
                engine = SimulatorEngine(
                    cluster,
                    factory(),
                    min_map_percent_completed=slowstart,
                    record_tasks=False,
                )
                result = engine.run(trace)
                durations = np.array(list(result.durations().values()))
                cells.append(
                    SweepCell(
                        scheduler=result.scheduler_name,
                        map_slots=cluster.map_slots,
                        reduce_slots=cluster.reduce_slots,
                        slowstart=float(slowstart),
                        makespan=result.makespan,
                        mean_duration=float(durations.mean()),
                        p95_duration=float(np.percentile(durations, 95)),
                        deadline_utility=result.relative_deadline_exceeded(),
                    )
                )
    return SweepResult(cells=cells)
