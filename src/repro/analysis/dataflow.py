"""Forward dataflow over :mod:`repro.analysis.cfg` graphs.

Two consumers sit on top of this module:

* :mod:`repro.analysis.resources` (RES001–003) asks *resource-path*
  questions: after a resource is acquired at some CFG node, can control
  reach the function's normal or exceptional exit while the resource is
  still held (not released, not handed to an owner)?
* :mod:`repro.analysis.concurrency` (CONC004) asks the same question
  about manually ``acquire()``-d locks.

The core primitive is :func:`track_acquisition` — a worklist walk from
the acquisition node that propagates a single "held" bit along normal
*and* exceptional edges, killed at release / escape / rebinding nodes.
The walk is deliberately optimistic at kill nodes (a ``close()`` that
itself raises still counts as released) so cleanup code never flags
itself, and pessimistic everywhere else (any call/attribute access can
raise), matching the rest of simlint's "never guess, over-approximate
toward *a path exists*" stance.

This module also defines :class:`RawFinding`, the location-addressed
record the whole-program analyses emit; the thin rule classes in
:mod:`repro.analysis.rules` replay them through the normal
:meth:`~repro.analysis.visitor.FileContext.report` machinery so config
selection and inline ``# simlint: disable=`` suppression apply
unchanged.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from .cfg import CFG

__all__ = ["RawFinding", "Anchor", "PathReport", "track_acquisition"]


@dataclass(frozen=True)
class Anchor:
    """A minimal AST-node stand-in carrying just a source location."""

    lineno: int
    col_offset: int


@dataclass(frozen=True)
class RawFinding:
    """One whole-program finding, before suppression/config filtering."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    @property
    def anchor(self) -> Anchor:
        return Anchor(lineno=self.line, col_offset=max(0, self.col - 1))

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)


@dataclass(frozen=True)
class PathReport:
    """Where a tracked acquisition can still be held at function exit."""

    #: A path reaches the normal exit with the resource held.
    held_at_exit: bool
    #: A path reaches the exceptional exit with the resource held.
    held_at_raise: bool
    #: Line of the statement whose exception escapes with the resource
    #: held (the witness for the exceptional-path message); 0 if none.
    raise_line: int


def track_acquisition(
    cfg: CFG,
    acquire: int,
    is_kill: Callable[[int], bool],
    is_escape: Optional[Callable[[int], bool]] = None,
) -> PathReport:
    """Propagate "held" from ``acquire`` and report leaky exits.

    ``is_kill(index)`` marks nodes that release the resource (or rebind
    its name — tracking stops either way); ``is_escape(index)`` marks
    nodes that transfer ownership (stored on ``self``, appended to a
    container, returned, ...).  Both stop propagation *before* the
    node's own exceptional edge is considered, so registering a segment
    with its cleanup list is an escape even if the registering call
    could itself raise.
    """
    if is_escape is None:
        is_escape = lambda _i: False  # noqa: E731 - tiny default predicate

    held_at_exit = False
    held_at_raise = False
    raise_line = 0

    #: (node, via_exception_from_line) — the line rides along so the
    #: first statement whose exception escapes can be named.  Each node
    #: is visited once per propagation mode (normal / exceptional): the
    #: shared-``finally`` lowering merges exception continuations into
    #: the normal successor fan-out, so reaching EXIT *on an exception
    #: path* must still count as an exceptional leak, not a normal one.
    queue: deque[tuple[int, int]] = deque()
    seen: set[tuple[int, bool]] = set()
    start = cfg.nodes[acquire]
    for succ in start.succs:
        queue.append((succ, 0))
    # The acquisition's own exceptional edge carries nothing: if the
    # acquiring call raises, the name was never bound.
    while queue:
        index, via_line = queue.popleft()
        key = (index, bool(via_line))
        if key in seen:
            continue
        seen.add(key)
        if index == CFG.EXIT:
            if via_line:
                held_at_raise = True
                if raise_line == 0:
                    raise_line = via_line
            else:
                held_at_exit = True
            continue
        if index == CFG.RAISE_EXIT:
            held_at_raise = True
            if raise_line == 0:
                raise_line = via_line
            continue
        if index == acquire or is_kill(index) or is_escape(index):
            continue
        node = cfg.nodes[index]
        for succ in node.succs:
            queue.append((succ, via_line))
        for succ in node.exc_succs:
            queue.append((succ, node.lineno or via_line))
    return PathReport(
        held_at_exit=held_at_exit,
        held_at_raise=held_at_raise,
        raise_line=raise_line,
    )


def bare_names(expr: ast.AST, name: str) -> list[ast.Name]:
    """Occurrences of ``name`` in *value* position inside ``expr``.

    ``seg`` in ``f(seg)`` or ``return seg`` is bare; ``seg`` in
    ``seg.buf`` or ``seg.close()`` is a dereference, not a value use —
    the object is being *used*, not handed anywhere.
    """
    out: list[ast.Name] = []

    def walk(node: ast.AST) -> None:
        if isinstance(node, ast.Attribute):
            # ``v.attr``: the root Name is a dereference, not bare.
            if isinstance(node.value, ast.Name):
                return
            walk(node.value)
            return
        if isinstance(node, ast.Name):
            if node.id == name:
                out.append(node)
            return
        for child in ast.iter_child_nodes(node):
            walk(child)

    walk(expr)
    return out


__all__ += ["bare_names"]
