"""The :class:`Finding` record produced by simlint rules."""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass


class Severity(str, enum.Enum):
    """How bad a violation is.

    ``ERROR`` findings break a simulation invariant outright (wall-clock
    reads, unseeded randomness, contract violations); ``WARNING``
    findings are strong smells that occasionally have legitimate,
    suppressible exceptions.  Both fail ``simmr lint`` — the distinction
    exists for reporting and for future ``--severity`` filtering.
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    message: str
    hint: str = ""

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def to_dict(self) -> dict:
        d = asdict(self)
        d["severity"] = self.severity.value
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "Finding":
        return cls(
            path=d["path"],
            line=int(d["line"]),
            col=int(d["col"]),
            rule_id=d["rule_id"],
            severity=Severity(d["severity"]),
            message=d["message"],
            hint=d.get("hint", ""),
        )

    def format(self) -> str:
        """``file:line:col: RULE severity: message  [hint]`` text form."""
        text = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} {self.severity.value}: {self.message}"
        )
        if self.hint:
            text += f"  (hint: {self.hint})"
        return text
