"""Whole-program call graph for cross-module simlint rules.

PR 1's rules are strictly per-file: a scheduler that reaches wall-clock
or the global RNG *through a helper module* passes clean, and nothing
can see that ``choose_next_*`` calls a helper that mutates engine-owned
job state three frames down.  This module closes that gap with a cheap,
deliberately over-approximate call graph:

* every linted module is indexed once (functions, classes and their
  bases, import aliases);
* calls are resolved where the resolution is unambiguous — ``self.m()``
  against the enclosing class and its project-local bases, bare names
  against module-level functions and ``from X import f`` aliases, and
  ``mod.func()`` through ``import`` aliases (absolute *and* relative);
* function *references* passed as call arguments (``min(q, key=
  self._priority)``) count as call edges, since the consumer will
  invoke them;
* unresolvable calls (builtins, third-party code, dynamic dispatch)
  contribute no edges — the analysis never guesses.

On top of the graph, four **taint closures** propagate "this function
transitively reaches a sink" facts caller-ward:

``wallclock``   host-clock reads (:data:`~repro.analysis.visitor.WALLCLOCK_CALLS`)
``rng``         global/unseeded RNG draws (the DET002 sink set)
``mutation``    writes to engine-owned ``Job`` attributes on non-self objects
``raise``       ``raise`` statements of non-exempt exception classes

Sinks on lines carrying an audited ``# simlint: disable=...`` directive,
and sinks in timing-whitelisted modules (``repro.core.walltime``,
``benchmarks/``), are *sanctioned* and seed no taint — the audit at the
sink covers every caller.  Each tainted function remembers one forward
step toward its sink, so rules can print the full witness chain
(``helpers.jitter -> random.random()``) at the offending call site.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

from .config import LintConfig
from .visitor import WALLCLOCK_CALLS, parse_suppressions

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .effects import EffectSummary

__all__ = [
    "CallGraph",
    "FuncNode",
    "Sink",
    "TaintKind",
    "ENGINE_OWNED_JOB_ATTRS",
    "RAISE_EXEMPT",
    "build_callgraph",
    "module_name_for_path",
    "rng_sink_name",
]

#: ``Job`` attributes owned by the engine's bookkeeping.  A helper that
#: writes one of these on a non-``self`` object is a mutation sink for
#: SIM004 (``wanted_*_slots`` excepted: the sanctioned per-job knobs a
#: policy sets from ``on_job_arrival``; SIM002 covers direct writes from
#: ``choose_next_*`` itself).
ENGINE_OWNED_JOB_ATTRS = frozenset({
    "state", "start_time", "completion_time",
    "maps_dispatched", "maps_completed",
    "reduces_dispatched", "reduces_completed",
    "map_stage_end", "map_records", "reduce_records",
    "sched_key", "in_map_heap", "in_reduce_heap",
    "next_map_index", "next_reduce_index",
    "requeued_maps", "requeued_reduces", "reduce_gate",
})

#: Exception classes whose ``raise`` does not make an entry point
#: "can raise on valid traces": NotImplementedError marks abstract
#: members, AssertionError marks internal invariants.
RAISE_EXEMPT = frozenset({"NotImplementedError", "AssertionError"})

#: The taint kinds the graph propagates.
TaintKind = str
_KINDS: tuple[TaintKind, ...] = ("wallclock", "rng", "mutation", "raise")

#: Rule ids whose line-suppression sanctions a sink of the given kind.
_SANCTIONING_IDS: dict[TaintKind, frozenset[str]] = {
    "wallclock": frozenset({"DET001", "DET004", "all"}),
    "rng": frozenset({"DET002", "DET004", "all"}),
    "mutation": frozenset({"SIM002", "SIM004", "all"}),
    "raise": frozenset({"API002", "all"}),
}

_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "pop", "remove", "clear", "add",
    "discard", "update", "setdefault", "popitem", "sort", "reverse",
})


def module_name_for_path(path: str) -> str:
    """Dotted module name for a display path (``src/`` prefix stripped)."""
    posix = path.replace("\\", "/")
    if posix.endswith(".py"):
        posix = posix[:-3]
    if posix.endswith("/__init__"):
        posix = posix[: -len("/__init__")]
    parts = [p for p in posix.split("/") if p not in ("", ".", "..")]
    if parts and parts[0] == "src":
        parts = parts[1:]
    return ".".join(parts) or posix or "<module>"


def rng_sink_name(dotted: str, node: ast.Call) -> Optional[str]:
    """Describe ``node`` as a global/unseeded RNG draw, or None.

    The sink set mirrors DET002 exactly so the per-file and transitive
    rules agree on what nondeterminism *is*.
    """
    if dotted in ("random.Random", "numpy.random.Generator"):
        if node.args or node.keywords:
            return None
        return f"{dotted}() without a seed"
    if dotted.startswith("random."):
        return f"{dotted}() (stdlib global RNG)"
    if dotted.startswith("numpy.random."):
        member = dotted[len("numpy.random."):]
        if member == "default_rng":
            seeded = bool(node.keywords) or (
                bool(node.args)
                and not (
                    isinstance(node.args[0], ast.Constant)
                    and node.args[0].value is None
                )
            )
            return None if seeded else "np.random.default_rng() without a seed"
        if member[:1].islower():
            return f"np.random.{member}() (legacy global state)"
    return None


@dataclass
class Sink:
    """One direct sink inside a function body."""

    kind: TaintKind
    lineno: int
    detail: str  # e.g. "time.monotonic()" / "job.maps_dispatched" / "ValueError"


@dataclass
class FuncNode:
    """One function (or method) in the indexed project."""

    module: str
    path: str
    qname: str  # "func" or "Class.method"
    lineno: int
    #: The function's AST — kept so the CFG/dataflow layer can analyze
    #: bodies without re-parsing (one parse feeds every pass).
    node: "Optional[ast.FunctionDef | ast.AsyncFunctionDef]" = None
    #: Enclosing class name for methods, None for module-level functions.
    cls_name: Optional[str] = None
    sinks: list[Sink] = field(default_factory=list)
    #: Unresolved call references: (descriptor, call-site node).
    #: Descriptors: ("self", cls, attr) | ("name", name) | ("dotted", dotted)
    refs: list[tuple[tuple, ast.AST]] = field(default_factory=list)
    callees: list["FuncNode"] = field(default_factory=list)
    #: Per-kind forward step toward the sink: either ("sink", Sink) or
    #: ("call", FuncNode).  Absent key = not tainted.  Populated by the
    #: effect engine (:mod:`repro.analysis.effects`) during finalize().
    taint: dict[TaintKind, tuple] = field(default_factory=dict)
    #: Full effect-lattice summary, also filled in by the effect engine.
    effects: "Optional[EffectSummary]" = None

    @property
    def display(self) -> str:
        """Short human name: last module component + qualified name."""
        mod = self.module.rsplit(".", 1)[-1]
        return f"{mod}.{self.qname}"


@dataclass
class _ClassIdx:
    methods: dict[str, FuncNode] = field(default_factory=dict)
    #: Base-class references as (descriptor) resolvable against the index.
    base_refs: list[str] = field(default_factory=list)


@dataclass
class _ModuleIdx:
    name: str
    path: str
    aliases: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FuncNode] = field(default_factory=dict)
    classes: dict[str, _ClassIdx] = field(default_factory=dict)
    #: Module-level mutable bindings (name -> lineno of first assignment).
    #: The effect engine treats consuming/mutating one of these from a
    #: function body as a ``mutates-global`` (and, for iterators, a
    #: nondeterminism) source.
    state: dict[str, int] = field(default_factory=dict)


def _relative_target(module: str, is_package: bool, level: int, name: Optional[str]) -> Optional[str]:
    """Resolve a ``from ..x import y`` module target to a dotted name."""
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    drop = level - 1
    if drop > len(parts):
        return None
    if drop:
        parts = parts[:-drop]
    if name:
        parts = parts + name.split(".")
    return ".".join(parts) if parts else None


class _FunctionScanner(ast.NodeVisitor):
    """Collect sinks and call references from one function body.

    Nested functions and lambdas are merged into the enclosing function:
    their sinks and calls are attributed to the parent, a conservative
    closure-semantics approximation.
    """

    def __init__(self, graph: "CallGraph", mod: _ModuleIdx, fn: FuncNode,
                 cls_name: Optional[str]) -> None:
        self.graph = graph
        self.mod = mod
        self.fn = fn
        self.cls_name = cls_name

    # -- helpers ------------------------------------------------------- #

    def _dotted(self, node: ast.AST) -> Optional[str]:
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.mod.aliases.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))

    def _sanctioned(self, kind: TaintKind, lineno: int) -> bool:
        disabled = self.graph._suppressions.get(self.mod.path, {}).get(lineno, ())
        return bool(_SANCTIONING_IDS[kind] & set(disabled))

    def _add_sink(self, kind: TaintKind, lineno: int, detail: str) -> None:
        if self._sanctioned(kind, lineno):
            return
        if kind == "wallclock" and self.graph._whitelisted.get(self.mod.path, False):
            return
        if kind == "rng" and self.graph._testpath.get(self.mod.path, False):
            return
        self.fn.sinks.append(Sink(kind, lineno, detail))

    def _add_ref(self, node: ast.AST, ref_site: ast.AST) -> None:
        """Record ``node`` (a callee expression) as a call reference."""
        if isinstance(node, ast.Name):
            dotted = self.mod.aliases.get(node.id)
            if dotted is not None:
                self.fn.refs.append((("dotted", dotted), ref_site))
            else:
                self.fn.refs.append((("name", node.id), ref_site))
        elif isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and self.cls_name is not None
            ):
                self.fn.refs.append((("self", self.cls_name, node.attr), ref_site))
            else:
                dotted = self._dotted(node)
                if dotted is not None:
                    self.fn.refs.append((("dotted", dotted), ref_site))

    # -- visits -------------------------------------------------------- #

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._dotted(node.func)
        if dotted is not None:
            if dotted in WALLCLOCK_CALLS:
                self._add_sink("wallclock", node.lineno, f"{dotted}()")
            rng = rng_sink_name(dotted, node)
            if rng is not None:
                self._add_sink("rng", node.lineno, rng)
        self._add_ref(node.func, node)
        # Function references handed to a consumer (min(q, key=f), map(f, ...))
        # count as calls: the consumer invokes them.
        for arg in [*node.args, *(kw.value for kw in node.keywords)]:
            if isinstance(arg, (ast.Name, ast.Attribute)):
                self._add_ref(arg, node)
        # Mutator-method call on an engine-owned attribute of a non-self
        # object (job.requeued_maps.append(...)).
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATOR_METHODS
            and isinstance(func.value, ast.Attribute)
            and func.value.attr in ENGINE_OWNED_JOB_ATTRS
        ):
            root = func.value.value
            while isinstance(root, (ast.Attribute, ast.Subscript)):
                root = root.value
            if isinstance(root, ast.Name) and root.id not in ("self", "cls"):
                self._add_sink(
                    "mutation", node.lineno,
                    f"{root.id}.{func.value.attr}.{func.attr}()",
                )
        self.generic_visit(node)

    def _mutation_target(self, target: ast.AST) -> None:
        if not isinstance(target, ast.Attribute):
            return
        if target.attr not in ENGINE_OWNED_JOB_ATTRS:
            return
        root: ast.AST = target.value
        while isinstance(root, (ast.Attribute, ast.Subscript)):
            root = root.value
        if isinstance(root, ast.Name) and root.id not in ("self", "cls"):
            self._add_sink(
                "mutation", target.lineno, f"{root.id}.{target.attr}"
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._mutation_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._mutation_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._mutation_target(node.target)
        self.generic_visit(node)

    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        name: Optional[str] = None
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name):
            name = exc.id
        elif isinstance(exc, ast.Attribute):
            name = exc.attr
        # Bare ``raise`` (re-raise inside except) introduces nothing new.
        if name is not None and name not in RAISE_EXEMPT:
            self._add_sink("raise", node.lineno, name)
        self.generic_visit(node)

    # Nested defs merge into the parent (closure approximation).
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.generic_visit(node)


class CallGraph:
    """Project-wide index + call edges + taint closures.

    Build with :meth:`add_module` per file, then :meth:`finalize` once;
    rules query :meth:`callees_at` and :meth:`witness` afterwards.
    """

    def __init__(self, config: LintConfig, *, strict: bool = False) -> None:
        self.config = config
        #: Fail-closed effect inference (see :mod:`repro.analysis.effects`):
        #: unresolvable calls and dynamic-execution builtins contribute
        #: the ``unresolved-call`` atom instead of nothing.  Used by the
        #: inline-certification path, never by lint.
        self.strict = strict
        self._modules: dict[str, _ModuleIdx] = {}
        self._suppressions: dict[str, dict[int, set[str]]] = {}
        self._whitelisted: dict[str, bool] = {}
        self._testpath: dict[str, bool] = {}
        #: id(call-site AST node) -> resolved project callees.
        self._callsites: dict[int, list[FuncNode]] = {}
        self._finalized = False

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def add_module(
        self,
        path: str,
        tree: ast.Module,
        source: str,
        suppressions: Optional[dict[int, set[str]]] = None,
    ) -> None:
        """Index one parsed module (``path`` is the display path).

        ``suppressions`` lets the runner share one parsed-directive map
        per file instead of re-scanning the source here.
        """
        name = module_name_for_path(path)
        mod = _ModuleIdx(name=name, path=path)
        self._modules[name] = mod
        self._suppressions[path] = (
            suppressions if suppressions is not None else parse_suppressions(source)
        )
        self._whitelisted[path] = self.config.is_timing_whitelisted(path)
        self._testpath[path] = self.config.is_test_path(path)
        is_package = path.replace("\\", "/").endswith("__init__.py")

        for stmt in tree.body:
            self._index_stmt(mod, stmt, is_package)

    def _index_stmt(self, mod: _ModuleIdx, stmt: ast.stmt, is_package: bool) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                mod.aliases[local] = alias.name if alias.asname else alias.name.split(".", 1)[0]
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.level:
                target = _relative_target(mod.name, is_package, stmt.level, stmt.module)
                if target is None:
                    return
            else:
                target = stmt.module
                if target is None:
                    return
            for alias in stmt.names:
                local = alias.asname or alias.name
                mod.aliases[local] = f"{target}.{alias.name}"
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                if isinstance(target, ast.Tuple):
                    names: Iterable[ast.expr] = target.elts
                else:
                    names = [target]
                for name_node in names:
                    if isinstance(name_node, ast.Name):
                        mod.state.setdefault(name_node.id, stmt.lineno)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._index_function(mod, stmt, cls=None)
        elif isinstance(stmt, ast.ClassDef):
            cls = _ClassIdx()
            for base in stmt.bases:
                if isinstance(base, ast.Name):
                    cls.base_refs.append(mod.aliases.get(base.id, base.id))
                elif isinstance(base, ast.Attribute):
                    dotted = _attr_dotted(base, mod.aliases)
                    if dotted is not None:
                        cls.base_refs.append(dotted)
            mod.classes[stmt.name] = cls
            for member in stmt.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._index_function(mod, member, cls=stmt.name)

    def _index_function(
        self,
        mod: _ModuleIdx,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        cls: Optional[str],
    ) -> None:
        qname = f"{cls}.{node.name}" if cls else node.name
        fn = FuncNode(
            module=mod.name, path=mod.path, qname=qname, lineno=node.lineno,
            node=node, cls_name=cls,
        )
        if cls is None:
            mod.functions[qname] = fn
        else:
            mod.classes[cls].methods[node.name] = fn
            mod.functions[qname] = fn
        scanner = _FunctionScanner(self, mod, fn, cls)
        for stmt in node.body:
            scanner.visit(stmt)

    # ------------------------------------------------------------------ #
    # resolution
    # ------------------------------------------------------------------ #

    def _resolve_module(self, name: str) -> Optional[_ModuleIdx]:
        mod = self._modules.get(name)
        if mod is not None:
            return mod
        # Unique dotted-suffix match: ``helpers`` finds
        # ``tests.fixtures.xmod.helpers`` when unambiguous.
        suffix = "." + name
        hits = [m for key, m in self._modules.items() if key.endswith(suffix)]
        return hits[0] if len(hits) == 1 else None

    def _resolve_class(self, mod: _ModuleIdx, name: str,
                       seen: Optional[set] = None) -> "Optional[tuple[_ModuleIdx, _ClassIdx]]":
        """Find class ``name`` starting from ``mod`` (aliases included)."""
        if seen is None:
            seen = set()
        key = (mod.name, name)
        if key in seen:
            return None
        seen.add(key)
        cls = mod.classes.get(name)
        if cls is not None:
            return mod, cls
        dotted = mod.aliases.get(name)
        if dotted is not None and "." in dotted:
            owner, _, attr = dotted.rpartition(".")
            target = self._resolve_module(owner)
            if target is not None and attr in target.classes:
                return target, target.classes[attr]
        return None

    def _method_in_hierarchy(self, mod: _ModuleIdx, cls_name: str,
                             method: str, depth: int = 0) -> Optional[FuncNode]:
        if depth > 8:
            return None
        found = self._resolve_class(mod, cls_name)
        if found is None:
            return None
        owner_mod, cls = found
        fn = cls.methods.get(method)
        if fn is not None:
            return fn
        for base in cls.base_refs:
            base_name = base.rpartition(".")[2]
            fn = self._method_in_hierarchy(owner_mod, base_name, method, depth + 1)
            if fn is not None:
                return fn
        return None

    def _resolve_dotted_func(self, dotted: str) -> Optional[FuncNode]:
        """``a.b.mod.func`` / ``mod.Class.method`` -> FuncNode."""
        # Longest module prefix wins; the remainder is the qualified name.
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod = self._resolve_module(".".join(parts[:cut]))
            if mod is None:
                continue
            qname = ".".join(parts[cut:])
            fn = mod.functions.get(qname)
            if fn is not None:
                return fn
            # ``mod.Class`` referenced bare: constructor -> __init__.
            cls = mod.classes.get(qname)
            if cls is not None:
                return cls.methods.get("__init__")
            return None
        return None

    def _resolve_ref(self, mod: _ModuleIdx, ref: tuple) -> Optional[FuncNode]:
        tag = ref[0]
        if tag == "name":
            fn = mod.functions.get(ref[1])
            if fn is not None:
                return fn
            cls = mod.classes.get(ref[1])
            if cls is not None:
                return cls.methods.get("__init__")
            return None
        if tag == "dotted":
            return self._resolve_dotted_func(ref[1])
        if tag == "self":
            _, cls_name, attr = ref
            return self._method_in_hierarchy(mod, cls_name, attr)
        return None

    def finalize(self) -> None:
        """Resolve call references into edges and run the taint closures."""
        if self._finalized:
            return
        self._finalized = True
        for mod_name in sorted(self._modules):
            mod = self._modules[mod_name]
            for qname in sorted(mod.functions):
                fn = mod.functions[qname]
                for ref, site in fn.refs:
                    callee = self._resolve_ref(mod, ref)
                    if callee is None or callee is fn:
                        continue
                    fn.callees.append(callee)
                    self._callsites.setdefault(id(site), []).append(callee)
        # Effect inference subsumes the old per-kind reverse-BFS taint
        # closures: the engine computes the full summary lattice per
        # function (fixpoint over SCCs) and back-fills ``fn.taint`` with
        # the same four legacy kinds the cross-module rules consume.
        from .effects import infer_effects

        infer_effects(self)

    # ------------------------------------------------------------------ #
    # queries (used by rules)
    # ------------------------------------------------------------------ #

    def callees_at(self, site: ast.AST) -> list[FuncNode]:
        """Project functions a call-site node resolves to (possibly [])."""
        return self._callsites.get(id(site), [])

    def witness(self, fn: FuncNode, kind: TaintKind) -> "Optional[tuple[list[str], Sink]]":
        """Call chain from ``fn`` to its ``kind`` sink, or None.

        Returns ``(chain, sink)`` where ``chain`` is the display names
        from ``fn`` down to (and including) the sinking function.
        """
        step = fn.taint.get(kind)
        if step is None:
            return None
        chain = [fn.display]
        node = fn
        guard = 0
        while step[0] == "call":
            if guard >= 10_000:  # cycle guard; BFS chains are finite
                return None
            node = step[1]
            chain.append(node.display)
            step = node.taint.get(kind)
            if step is None:  # pragma: no cover - closure guarantees a path
                return None
            guard += 1
        if not isinstance(step[1], Sink):  # pragma: no cover - invariant
            return None
        return chain, step[1]

    def function(self, module: str, qname: str) -> Optional[FuncNode]:
        """Lookup helper for tests."""
        mod = self._modules.get(module)
        return mod.functions.get(qname) if mod else None

    # ------------------------------------------------------------------ #
    # shared-index access (the CFG/dataflow layer reuses this index
    # instead of re-parsing or re-scanning modules)
    # ------------------------------------------------------------------ #

    def iter_functions(self) -> "Iterable[FuncNode]":
        """Every indexed function, in deterministic module/qname order."""
        for mod_name in sorted(self._modules):
            mod = self._modules[mod_name]
            for qname in sorted(mod.functions):
                yield mod.functions[qname]

    def module_index(self, name: str) -> "Optional[_ModuleIdx]":
        """The per-module index (aliases, classes) built by add_module."""
        return self._modules.get(name)

    def iter_module_indexes(self) -> "Iterable[_ModuleIdx]":
        for name in sorted(self._modules):
            yield self._modules[name]

    def resolve_ref(self, module: str, ref: tuple) -> Optional[FuncNode]:
        """Resolve a callee descriptor against the project index.

        Descriptors are the same shape :class:`_FunctionScanner` records:
        ``("self", cls, attr)`` / ``("name", name)`` / ``("dotted", dotted)``.
        """
        mod = self._modules.get(module)
        if mod is None:
            return None
        return self._resolve_ref(mod, ref)

    def class_closure(self, module: str, cls_name: str) -> dict[str, FuncNode]:
        """Every method of ``cls_name`` including resolvable inherited ones.

        Closest override wins (subclass methods shadow base methods), so
        the result is the method table certification must reason about.
        Unresolvable bases (third-party, builtins) contribute nothing —
        consistent with the rest of the graph's never-guess stance.
        """
        out: dict[str, FuncNode] = {}
        mod = self._modules.get(module)
        if mod is None:
            return out
        queue: list[tuple[_ModuleIdx, str]] = [(mod, cls_name)]
        seen: set[tuple[str, str]] = set()
        while queue:
            owner, name = queue.pop(0)
            found = self._resolve_class(owner, name)
            if found is None:
                continue
            owner_mod, cls = found
            key = (owner_mod.name, name)
            if key in seen:
                continue
            seen.add(key)
            for method, fn in cls.methods.items():
                out.setdefault(method, fn)
            for base in cls.base_refs:
                queue.append((owner_mod, base.rpartition(".")[2]))
        return out


def _attr_dotted(node: ast.Attribute, aliases: dict[str, str]) -> Optional[str]:
    parts: list[str] = []
    cur: ast.AST = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    root = aliases.get(cur.id, cur.id)
    parts.append(root)
    return ".".join(reversed(parts))


def build_callgraph(
    config: LintConfig,
    modules: Iterable[tuple[str, ast.Module, str]],
) -> CallGraph:
    """Build + finalize a graph from ``(path, tree, source)`` triples."""
    graph = CallGraph(config)
    for path, tree, source in modules:
        graph.add_module(path, tree, source)
    graph.finalize()
    return graph
