"""Findings baseline: accepted lint debt, committed next to the code.

Whole-program rules (CONC/RES) can surface debt in code that predates
them.  Blocking CI on day one would force either mass suppressions or
a rules-off launch; a *baseline file* is the standard third way (same
shape as ruff's ``--add-noqa`` alternative or mypy's baseline
wrappers): known findings are recorded in a committed JSON file, the
gate fails only on findings **not** in the baseline, and a *stale*
baseline entry (recorded finding that no longer fires) also fails so
the file shrinks monotonically as debt is paid down.

Findings match baseline entries on ``(path, rule_id, line)``.  Line
numbers make entries brittle against unrelated edits by design — a
baseline is a debt ledger, not a suppression mechanism; when a file is
refactored the baseline must be re-examined, which is exactly when
re-examining is cheap.

The file format is versioned JSON::

    {"version": 1, "findings": [
        {"path": "src/...", "rule_id": "RES002", "line": 92,
         "message": "sqlite cursor 'cur' is never closed ..."}
    ]}

``message`` is informational (kept for reviewers reading the diff);
matching ignores it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from .findings import Finding

__all__ = [
    "Baseline",
    "BaselineEntry",
    "load_baseline",
    "write_baseline",
    "partition_findings",
]

_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    path: str
    rule_id: str
    line: int
    message: str

    @property
    def key(self) -> tuple[str, str, int]:
        return (self.path, self.rule_id, self.line)

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule_id} {self.message}"


@dataclass(frozen=True)
class Baseline:
    entries: tuple[BaselineEntry, ...]

    @property
    def keys(self) -> frozenset[tuple[str, str, int]]:
        return frozenset(entry.key for entry in self.entries)


def load_baseline(path: Path) -> Baseline:
    """Load and validate a baseline file; raises ``ValueError`` on bad shape."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ValueError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        raise ValueError(
            f"baseline {path}: expected a version-{_VERSION} baseline object"
        )
    raw = payload.get("findings")
    if not isinstance(raw, list):
        raise ValueError(f"baseline {path}: 'findings' must be a list")
    entries = []
    for item in raw:
        if not isinstance(item, dict):
            raise ValueError(f"baseline {path}: finding entries must be objects")
        try:
            entries.append(BaselineEntry(
                path=str(item["path"]),
                rule_id=str(item["rule_id"]),
                line=int(item["line"]),
                message=str(item.get("message", "")),
            ))
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"baseline {path}: malformed entry {item!r}") from exc
    return Baseline(entries=tuple(entries))


def write_baseline(path: Path, findings: Sequence[Finding]) -> Baseline:
    """Record ``findings`` as the new accepted baseline at ``path``."""
    entries = tuple(
        BaselineEntry(
            path=f.path, rule_id=f.rule_id, line=f.line, message=f.message
        )
        for f in sorted(findings, key=lambda f: f.sort_key)
    )
    payload = {
        "version": _VERSION,
        "findings": [
            {
                "path": e.path,
                "rule_id": e.rule_id,
                "line": e.line,
                "message": e.message,
            }
            for e in entries
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return Baseline(entries=entries)


def partition_findings(
    findings: Sequence[Finding], baseline: Baseline
) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
    """Split findings into (new, baselined) and report stale entries.

    *new* findings are absent from the baseline and must fail the gate;
    *baselined* findings are accepted debt; *stale* entries are baseline
    records that no longer fire — also a gate failure, so the ledger
    never accumulates dead weight.
    """
    keys = baseline.keys
    new: list[Finding] = []
    matched: list[Finding] = []
    hit: set[tuple[str, str, int]] = set()
    for finding in findings:
        key = (finding.path, finding.rule_id, finding.line)
        if key in keys:
            matched.append(finding)
            hit.add(key)
        else:
            new.append(finding)
    stale = [entry for entry in baseline.entries if entry.key not in hit]
    return new, matched, stale
