"""Per-function control-flow graphs for simlint's dataflow rules.

The CONC/RES rule families reason about *paths*: "is this lock released
on every exit?", "can an exception escape between acquiring a
``SharedMemory`` segment and registering it for cleanup?".  Those are
questions the per-file AST walker cannot answer — it sees structure, not
flow.  :func:`build_cfg` lowers one function body into a small
statement-granular control-flow graph with explicit *exceptional* edges,
which :mod:`repro.analysis.dataflow` then walks.

Design notes (deliberate over-approximations, all in the direction of
"more paths exist than really do"):

* Each simple statement is one node; compound statements contribute a
  node for their evaluated fragment only (an ``if``'s test, a ``for``'s
  iterable) — bodies are lowered recursively.
* A node *can raise* when its evaluated fragment contains a call,
  attribute access, subscript, arithmetic, or comparison; such nodes get
  an edge to the innermost exception target (handler dispatch, enclosing
  ``finally``, or the synthetic raise-exit).
* ``with`` blocks get explicit enter/exit nodes on both the normal and
  the exceptional path, so lock- and resource-analyses can key GEN/KILL
  facts to the ``withitem``.
* ``finally`` bodies are lowered once; their exit fans out to every
  continuation that routed through them (fall-through, re-raise,
  ``return``/``break``/``continue``).  This merges paths a real
  interpreter keeps separate — acceptable for leak/guard analyses, which
  only need "a path exists".
* A handler list without a catch-all (``except:``/``except Exception``/
  ``except BaseException``) also routes the exception onward — an
  uncaught kind keeps propagating.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

__all__ = ["CFG", "CFGNode", "build_cfg", "can_raise"]

FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Expression node types whose evaluation can raise at runtime.  Plain
#: name/constant traffic (``x = y``) cannot; anything that calls,
#: dereferences, indexes, or computes can.  Comprehensions run implicit
#: calls and iteration, so they count.
_RAISING_EXPRS = (
    ast.Call,
    ast.Attribute,
    ast.Subscript,
    ast.BinOp,
    ast.Compare,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
    ast.Await,
)

#: Handler types treated as catching *everything* (so the exception does
#: not also propagate outward).  ``except Exception`` technically misses
#: ``KeyboardInterrupt``; treating it as a catch-all keeps the common
#: cleanup idiom from producing noise findings.
_CATCH_ALL_NAMES = frozenset({"BaseException", "Exception"})


def _node_can_raise(node: ast.AST) -> bool:
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        return False  # defining it raises nothing; the body runs elsewhere
    if isinstance(node, _RAISING_EXPRS) or isinstance(node, (ast.Raise, ast.Assert)):
        return True
    return any(_node_can_raise(child) for child in ast.iter_child_nodes(node))


def can_raise(nodes: Sequence[ast.AST]) -> bool:
    """Whether evaluating any of ``nodes`` can raise at runtime.

    Nested function/lambda definitions are not descended into: defining
    them raises nothing, and their bodies run elsewhere.
    """
    return any(_node_can_raise(root) for root in nodes)


@dataclass
class CFGNode:
    """One node of a function CFG.

    ``kind`` is one of ``entry`` / ``exit`` / ``raise_exit`` / ``stmt``
    / ``test`` / ``with_enter`` / ``with_exit`` / ``dispatch`` /
    ``finally`` — synthetic nodes carry no statement.  ``scan`` holds
    the AST fragments this node *evaluates* (what dataflow analyses
    should inspect); for compound statements that is the test/iterable
    only, never the body.
    """

    index: int
    kind: str
    node: Optional[ast.AST] = None
    scan: tuple[ast.AST, ...] = ()
    succs: list[int] = field(default_factory=list)
    #: Exceptional successors: taken when evaluating this node raises.
    exc_succs: list[int] = field(default_factory=list)

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 0)


@dataclass
class CFG:
    """A function's control-flow graph; node 0/1/2 are entry/exit/raise."""

    nodes: list[CFGNode]
    func: FuncDef

    ENTRY = 0
    EXIT = 1
    RAISE_EXIT = 2

    def node_for(self, stmt: ast.AST) -> Optional[CFGNode]:
        """The CFG node whose governing AST node is ``stmt`` (tests)."""
        for node in self.nodes:
            if node.node is stmt:
                return node
        return None

    def successors(self, index: int) -> list[tuple[int, bool]]:
        """All outgoing edges of ``index`` as ``(target, is_exceptional)``."""
        node = self.nodes[index]
        out = [(s, False) for s in node.succs]
        out.extend((s, True) for s in node.exc_succs)
        return out


@dataclass
class _Finally:
    """One pending ``finally`` block while lowering its ``try``."""

    enter: int
    #: Node indexes the finally's exit must fan out to (collected while
    #: lowering the protected region: fall-through, outer exception
    #: target, routed jumps).
    continuations: set[int] = field(default_factory=set)


@dataclass
class _Loop:
    """Jump targets of the innermost enclosing loop."""

    continue_target: int
    break_collector: list[int]
    #: Finally stack depth at loop entry — jumps route through finallys
    #: pushed *after* this depth.
    finally_depth: int


class _Builder:
    """Recursive-descent lowering of one function body."""

    def __init__(self, func: FuncDef) -> None:
        self.func = func
        self.nodes: list[CFGNode] = []
        self._new("entry")
        self._new("exit")
        self._new("raise_exit")
        #: Innermost-last exception targets (dispatch/finally/raise-exit).
        self._exc_stack: list[int] = [CFG.RAISE_EXIT]
        self._finally_stack: list[_Finally] = []
        self._loops: list[_Loop] = []
        #: Frontier: nodes whose normal successor is the next lowered node.
        self._frontier: list[int] = [CFG.ENTRY]

    # -- plumbing ------------------------------------------------------- #

    def _new(
        self,
        kind: str,
        node: Optional[ast.AST] = None,
        scan: tuple[ast.AST, ...] = (),
    ) -> int:
        idx = len(self.nodes)
        self.nodes.append(CFGNode(index=idx, kind=kind, node=node, scan=scan))
        return idx

    def _link(self, sources: Sequence[int], target: int) -> None:
        for src in sources:
            if target not in self.nodes[src].succs:
                self.nodes[src].succs.append(target)

    def _place(self, idx: int) -> None:
        """Attach ``idx`` after the current frontier and make it the frontier."""
        self._link(self._frontier, idx)
        self._frontier = [idx]

    def _maybe_raise(self, idx: int) -> None:
        node = self.nodes[idx]
        if node.scan and can_raise(node.scan):
            target = self._exc_stack[-1]
            if target not in node.exc_succs:
                node.exc_succs.append(target)
            if self._finally_stack and target == self._finally_stack[-1].enter:
                self._finally_stack[-1].continuations.add(self._outer_exc())

    def _outer_exc(self) -> int:
        """The exception target *outside* the innermost finally frame."""
        for target in reversed(self._exc_stack[:-1]):
            return target
        return CFG.RAISE_EXIT

    def _route_jump(self, source: int, target: int, through_depth: int) -> None:
        """Route a return/break/continue from ``source`` to ``target``
        through every finally pushed above ``through_depth``."""
        pending = self.nodes[source]
        chain = self._finally_stack[through_depth:]
        if not chain:
            if target not in pending.succs:
                pending.succs.append(target)
            return
        # Innermost finally first; each finally continues into the next
        # one outward, the outermost continues to the jump target.
        first = chain[-1]
        if first.enter not in pending.succs:
            pending.succs.append(first.enter)
        for inner, outer in zip(reversed(chain), list(reversed(chain))[1:]):
            inner.continuations.add(outer.enter)
        chain[0].continuations.add(target)

    # -- statements ----------------------------------------------------- #

    def lower(self) -> CFG:
        self._body(self.func.body)
        self._link(self._frontier, CFG.EXIT)
        return CFG(nodes=self.nodes, func=self.func)

    def _body(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            if not self._frontier:
                break  # unreachable code after return/raise/break
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            self._loop(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._with(stmt)
        elif isinstance(stmt, ast.Try):
            self._try(stmt)
        elif isinstance(stmt, ast.Match):
            self._match(stmt)
        elif isinstance(stmt, ast.Return):
            scan = (stmt.value,) if stmt.value is not None else ()
            idx = self._new("stmt", stmt, scan)
            self._place(idx)
            self._maybe_raise(idx)
            self._route_jump(idx, CFG.EXIT, 0)
            self._frontier = []
        elif isinstance(stmt, ast.Raise):
            idx = self._new("stmt", stmt, tuple(n for n in (stmt.exc, stmt.cause) if n))
            self._place(idx)
            target = self._exc_stack[-1]
            self.nodes[idx].exc_succs.append(target)
            if self._finally_stack and target == self._finally_stack[-1].enter:
                self._finally_stack[-1].continuations.add(self._outer_exc())
            self._frontier = []
        elif isinstance(stmt, ast.Break):
            idx = self._new("stmt", stmt)
            self._place(idx)
            if self._loops:
                loop = self._loops[-1]
                collector = self._new("stmt")  # landing pad after the loop
                loop.break_collector.append(collector)
                self._route_jump(idx, collector, loop.finally_depth)
            self._frontier = []
        elif isinstance(stmt, ast.Continue):
            idx = self._new("stmt", stmt)
            self._place(idx)
            if self._loops:
                loop = self._loops[-1]
                self._route_jump(idx, loop.continue_target, loop.finally_depth)
            self._frontier = []
        else:
            # Simple statement (assign, expr, import, def, ...): one node.
            idx = self._new("stmt", stmt, (stmt,))
            self._place(idx)
            self._maybe_raise(idx)

    def _if(self, stmt: ast.If) -> None:
        test = self._new("test", stmt, (stmt.test,))
        self._place(test)
        self._maybe_raise(test)
        after: list[int] = []
        self._frontier = [test]
        self._body(stmt.body)
        after.extend(self._frontier)
        self._frontier = [test]
        if stmt.orelse:
            self._body(stmt.orelse)
            after.extend(self._frontier)
        else:
            after.append(test)
        self._frontier = after

    def _match(self, stmt: ast.Match) -> None:
        head = self._new("test", stmt, (stmt.subject,))
        self._place(head)
        self._maybe_raise(head)
        after: list[int] = [head]  # no case may match
        for case in stmt.cases:
            self._frontier = [head]
            self._body(case.body)
            after.extend(self._frontier)
        self._frontier = after

    def _loop(self, stmt: Union[ast.While, ast.For, ast.AsyncFor]) -> None:
        if isinstance(stmt, ast.While):
            scan: tuple[ast.AST, ...] = (stmt.test,)
        else:
            scan = (stmt.iter, stmt.target)
        head = self._new("test", stmt, scan)
        self._place(head)
        self._maybe_raise(head)
        loop = _Loop(
            continue_target=head,
            break_collector=[],
            finally_depth=len(self._finally_stack),
        )
        self._loops.append(loop)
        self._frontier = [head]
        self._body(stmt.body)
        self._link(self._frontier, head)  # back edge
        self._loops.pop()
        exits = [head, *loop.break_collector]
        self._frontier = exits
        if stmt.orelse:
            self._frontier = [head]
            self._body(stmt.orelse)
            self._frontier = [*self._frontier, *loop.break_collector]

    def _with(self, stmt: Union[ast.With, ast.AsyncWith]) -> None:
        self._with_items(stmt, 0)

    def _with_items(self, stmt: Union[ast.With, ast.AsyncWith], i: int) -> None:
        if i >= len(stmt.items):
            self._body(stmt.body)
            return
        item = stmt.items[i]
        scan: tuple[ast.AST, ...] = (item.context_expr,)
        if item.optional_vars is not None:
            scan = (item.context_expr, item.optional_vars)
        enter = self._new("with_enter", item, scan)
        self._place(enter)
        self._maybe_raise(enter)
        # Exceptions inside the body run __exit__ before propagating.
        exc_exit = self._new("with_exit", item)
        self.nodes[exc_exit].succs.append(self._exc_stack[-1])
        if self._finally_stack and self._exc_stack[-1] == self._finally_stack[-1].enter:
            self._finally_stack[-1].continuations.add(self._outer_exc())
        self._exc_stack.append(exc_exit)
        self._with_items(stmt, i + 1)
        self._exc_stack.pop()
        norm_exit = self._new("with_exit", item)
        self._link(self._frontier, norm_exit)
        self._frontier = [norm_exit]

    def _try(self, stmt: ast.Try) -> None:
        fin: Optional[_Finally] = None
        if stmt.finalbody:
            fin = _Finally(enter=self._new("finally", stmt))
            self._finally_stack.append(fin)
            self._exc_stack.append(fin.enter)

        after: list[int] = []
        if stmt.handlers:
            dispatch = self._new("dispatch", stmt)
            self._exc_stack.append(dispatch)
            self._body(stmt.body)
            self._exc_stack.pop()
            body_exits = list(self._frontier)
            if stmt.orelse:
                self._frontier = body_exits
                self._body(stmt.orelse)
                body_exits = list(self._frontier)
            after.extend(body_exits)
            caught_all = False
            for handler in stmt.handlers:
                if _is_catch_all(handler):
                    caught_all = True
                h_entry = self._new("stmt", handler, tuple(
                    n for n in (handler.type,) if n is not None
                ))
                self.nodes[dispatch].succs.append(h_entry)
                self._frontier = [h_entry]
                self._body(handler.body)
                after.extend(self._frontier)
            if not caught_all:
                # An uncaught kind keeps propagating outward.
                target = self._exc_stack[-1]
                self.nodes[dispatch].succs.append(target)
                if fin is not None and target == fin.enter:
                    fin.continuations.add(self._outer_exc())
        else:
            self._body(stmt.body)
            after.extend(self._frontier)
            if stmt.orelse:
                self._frontier = after
                self._body(stmt.orelse)
                after = list(self._frontier)

        if fin is not None:
            self._finally_stack.pop()
            self._exc_stack.pop()
            # Normal fall-through also runs the finally.
            self._link(after, fin.enter)
            # The pad must be held locally: a try/finally nested inside
            # *this* finally body allocates its own pad, and resuming
            # from that inner pad would dead-end the outer continuation.
            pad = self._fresh_after()
            fin.continuations.add(pad)
            self._frontier = [fin.enter]
            self._body(stmt.finalbody)
            fin_exits = list(self._frontier)
            for continuation in sorted(fin.continuations):
                self._link(fin_exits, continuation)
            # Resume lowering from the landing pad created above.
            self._frontier = [pad]
        else:
            self._frontier = after

    def _fresh_after(self) -> int:
        """A landing-pad node for code following a try/finally."""
        return self._new("stmt")


def _is_catch_all(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    node = handler.type
    if isinstance(node, ast.Name):
        return node.id in _CATCH_ALL_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _CATCH_ALL_NAMES
    return False


def build_cfg(func: FuncDef) -> CFG:
    """Lower ``func``'s body to a :class:`CFG`."""
    return _Builder(func).lower()
