"""simlint: determinism & simulation-invariant static analysis for SimMR.

SimMR's headline guarantees — bit-reproducible trace replay and >1M
events/sec — rest on invariants the type system cannot see: wall-clock
independence, seeded randomness, stable iteration orders in tie-breaking
paths, and scheduler plugins that honour the paper's narrow
``choose_next_*`` contract (Section III-B).  This package machine-checks
those invariants over the source tree.

Layout
------
``findings``   the :class:`Finding` record and severity levels
``config``     :class:`LintConfig` (rule selection, path classification)
``registry``   the rule registry, rule docs, id validation
``visitor``    the single-pass AST walker and per-file context
``rules``      the DET/SIM/API rule implementations and CONC/RES shims
``callgraph``  the whole-program module index and call edges
``cfg``        per-function control-flow graphs with exceptional edges
``dataflow``   the forward "held resource" walk over CFGs
``concurrency`` thread-entry reachability and the CONC rule family
``resources``  acquire/release path tracking and the RES rule family
``effects``    per-function effect/determinism inference (the lattice)
``certify``    signed scheduler safety certificates over the lattice
``cache``      the content-addressed incremental analysis store
``baseline``   the committed accepted-findings ledger
``reporter``   text, JSON, GitHub-annotation and SARIF renderers
``runner``     directory walking and the public ``lint_paths`` API

Entry points: ``simmr lint`` / ``python -m repro lint`` (see
:mod:`repro.cli`), the ``lint_paths`` / ``lint_source`` functions here,
and the CI gate in ``tests/test_simlint.py``.
"""

from __future__ import annotations

from .baseline import Baseline, load_baseline, partition_findings, write_baseline
from .cache import AnalysisCache, default_cache_path
from .certify import certify_target, verify_certificate
from .config import LintConfig
from .findings import Finding, Severity
from .registry import RuleInfo, RuleRegistry, default_registry
from .reporter import render_github, render_json, render_sarif, render_text
from .runner import lint_paths, lint_source

__all__ = [
    "AnalysisCache",
    "Baseline",
    "Finding",
    "Severity",
    "LintConfig",
    "RuleInfo",
    "RuleRegistry",
    "certify_target",
    "default_cache_path",
    "default_registry",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "partition_findings",
    "render_text",
    "render_json",
    "render_github",
    "render_sarif",
    "verify_certificate",
    "write_baseline",
]
