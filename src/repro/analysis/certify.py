"""Scheduler certification: signed effect-safety verdicts.

``simmr certify <module:Class>`` (and the service's ``inline-certified``
scheduler kind) turn the effect summaries of
:mod:`repro.analysis.effects` into a machine-checkable claim about a
scheduler class.  The certificate is a JSON document carrying the
per-method effect summary, a content digest of the defining module,
and three safety predicates:

* **cache-safe** — no method (transitively) reaches a nondeterministic
  source, I/O, or module-global mutation: a replay's digest is a pure
  function of (trace, scheduler spec, seed), so results may be cached
  by content address.
* **parallel-safe** — no module-global mutation and no I/O: concurrent
  instances in one process (service worker threads, sweep fan-out)
  cannot interfere through shared state.
* **service-safe** — cache-safe *and* parallel-safe *and* the
  ``choose_next_*`` contract methods carry no engine-owned-state
  mutation (the SIM004 contract): the class is acceptable as inline
  source over HTTP.

A failed predicate names its witness — the method, the offending
effect atom, and the full call chain down to the sink — so the verdict
is actionable, not just a boolean.  The document is signed with a
keyed BLAKE2b over its canonical JSON form; :func:`verify_certificate`
re-derives the signature, so a verdict pasted between tools cannot be
edited without detection (this is tamper-evidence, not PKI — the key
ships with the analyzer).

Certification honours no inline ``# simlint: disable=`` suppressions
for the lattice atoms: a safety verdict must not be silenceable from
inside the code under scrutiny.
"""

from __future__ import annotations

import ast
import hashlib
import hmac
import importlib.util
import json
from pathlib import Path
from typing import Any, Optional

from .cache import AnalysisCache, engine_version, program_key, source_digest
from .callgraph import CallGraph, module_name_for_path
from .config import LintConfig
from .effects import (
    IO,
    MUTATES_GLOBAL,
    NONDET,
    UNRESOLVED,
    effect_witness,
    import_time_kinds,
)
from .visitor import CHOOSE_METHODS

__all__ = [
    "CERTIFICATE_VERSION",
    "MAX_INLINE_SOURCE",
    "CertificationError",
    "certificate_for_class",
    "certify_inline",
    "certify_target",
    "certified_inline_class",
    "failure_message",
    "sign_certificate",
    "verify_certificate",
]

CERTIFICATE_VERSION = 1

#: Hard cap on inline scheduler source accepted for certification.
#: Whole-program analysis is linear-ish but not free; without a cap,
#: repeated large unique submissions make request parsing a CPU DoS
#: vector (each unique digest misses the memo).
MAX_INLINE_SOURCE = 64 * 1024

#: Keyed-hash key for tamper-evident signatures.  Deliberately public:
#: the signature binds a verdict to this analyzer version's canonical
#: form, it does not authenticate a signer.
_SIGNING_KEY = b"simmr-certify-v1"

#: Effect atoms that break each predicate.  ``unresolved-call`` only
#: appears in strict (inline) graphs, where a call the analyzer cannot
#: resolve must be presumed capable of anything.
_CACHE_UNSAFE = frozenset({NONDET, IO, MUTATES_GLOBAL, UNRESOLVED})
_PARALLEL_UNSAFE = frozenset({MUTATES_GLOBAL, IO, UNRESOLVED})

#: Witness-priority order for blocking atoms in reports.
_BLOCKING_ORDER = (NONDET, MUTATES_GLOBAL, IO, UNRESOLVED)

#: Top-level modules an inline scheduler may import.  Everything here
#: is either pure computation, covered by a dedicated effect sink when
#: used (``time``, ``random``), or the engine's own trusted code
#: (``repro`` — usable as base classes; *calls* into it still resolve
#: to nothing and are flagged by strict mode).  Imports execute code,
#: so this is a whitelist, not a scan.
_INLINE_IMPORTABLE = frozenset({
    "__future__", "repro", "time", "random", "types",
    "math", "cmath", "heapq", "bisect", "itertools", "functools",
    "collections", "operator", "statistics", "string", "copy", "enum",
    "abc", "dataclasses", "typing", "decimal", "fractions", "numbers",
})

#: Import-time effect kinds that reject an inline module outright:
#: the module body runs at ``exec`` before any predicate can gate it.
_IMPORT_TIME_UNSAFE = (IO, NONDET, UNRESOLVED)

#: Memoized inline verdicts: (source digest, class name) -> certificate.
_INLINE_MEMO: dict[tuple[str, str], dict[str, Any]] = {}
_INLINE_MEMO_MAX = 64


class CertificationError(ValueError):
    """The target cannot be certified (unresolvable, unparsable, unsafe)."""


def _canonical(doc: dict[str, Any]) -> bytes:
    body = {k: v for k, v in doc.items() if k != "signature"}
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode()


def sign_certificate(doc: dict[str, Any]) -> str:
    """Keyed BLAKE2b over the canonical (signature-less) document."""
    return hashlib.blake2b(
        _canonical(doc), key=_SIGNING_KEY, digest_size=32
    ).hexdigest()


def verify_certificate(doc: dict[str, Any]) -> bool:
    """Does the embedded signature match the document body?"""
    signature = doc.get("signature")
    if not isinstance(signature, str):
        return False
    return hmac.compare_digest(signature, sign_certificate(doc))


def certificate_for_class(
    graph: CallGraph,
    module_name: str,
    cls_name: str,
    *,
    target: str,
    src_digest: str,
) -> dict[str, Any]:
    """Build (and sign) the verdict for one class in a finalized graph."""
    closure = graph.class_closure(module_name, cls_name)
    if not closure:
        raise CertificationError(
            f"class {cls_name!r} not found in module {module_name!r} "
            f"(or it defines no methods the analyzer can see)"
        )
    effects: dict[str, list[str]] = {}
    union: set[str] = set()
    for method in sorted(closure):
        fn = closure[method]
        atoms = sorted(fn.effects.atoms) if fn.effects is not None else []
        effects[method] = atoms
        union.update(atoms)

    witness: Optional[dict[str, Any]] = None

    def _effect_witness_for(atoms: frozenset[str]) -> Optional[dict[str, Any]]:
        for atom in _BLOCKING_ORDER:
            if atom not in atoms:
                continue
            for method in sorted(closure):
                fn = closure[method]
                found = effect_witness(fn, atom)
                if found is None:
                    continue
                chain, sink = found
                return {
                    "atom": atom,
                    "method": method,
                    "chain": chain,
                    "detail": sink.detail,
                    "line": sink.lineno,
                }
        return None

    cache_safe = not (union & _CACHE_UNSAFE)
    parallel_safe = not (union & _PARALLEL_UNSAFE)
    if not (cache_safe and parallel_safe):
        witness = _effect_witness_for(frozenset(union))

    choose_mutation = None
    for method in sorted(CHOOSE_METHODS):
        fn = closure.get(method)
        if fn is not None and "mutation" in fn.taint:
            found = graph.witness(fn, "mutation")
            if found is not None:
                chain, sink = found
                choose_mutation = {
                    "atom": "mutates-engine-state",
                    "method": method,
                    "chain": chain,
                    "detail": sink.detail,
                    "line": sink.lineno,
                }
                break
    service_safe = cache_safe and parallel_safe and choose_mutation is None
    if witness is None and choose_mutation is not None:
        witness = choose_mutation

    doc: dict[str, Any] = {
        "version": CERTIFICATE_VERSION,
        "target": target,
        "module": module_name,
        "class": cls_name,
        "source_digest": src_digest,
        "engine": engine_version(),
        "effects": effects,
        "summary": sorted(union),
        "cache_safe": cache_safe,
        "parallel_safe": parallel_safe,
        "service_safe": service_safe,
        "certified": service_safe,
        "witness": witness,
    }
    doc["signature"] = sign_certificate(doc)
    return doc


def failure_message(doc: dict[str, Any]) -> str:
    """One-line human explanation of a failed certificate."""
    witness = doc.get("witness") or {}
    chain = witness.get("chain") or []
    detail = witness.get("detail", "?")
    atom = witness.get("atom", "effectful")
    head = f"{doc.get('target', '?')} is not service-safe ({atom})"
    if chain:
        return f"{head}: {' -> '.join(chain)} -> {detail}"
    return f"{head}: {detail}"


# --------------------------------------------------------------------------- #
# target resolution (static — nothing outside the stdlib import machinery
# runs; find_spec imports parent *packages* only, never the target module)
# --------------------------------------------------------------------------- #


def _package_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def _registry_target(name: str) -> tuple[Path, str]:
    from ..schedulers import _REGISTRY

    cls = _REGISTRY.get(name.lower())
    if cls is None:
        raise CertificationError(
            f"unknown certify target {name!r}: not a path, module:Class, "
            f"or registry scheduler (known: {sorted(_REGISTRY)})"
        )
    spec = importlib.util.find_spec(cls.__module__)
    if spec is None or spec.origin is None:
        raise CertificationError(
            f"cannot locate source for {cls.__module__}"
        )
    return Path(spec.origin), cls.__name__


def resolve_target(target: str) -> tuple[Path, str]:
    """``path.py:Class`` / ``pkg.mod:Class`` / registry name -> (file, class)."""
    if ":" not in target:
        return _registry_target(target)
    mod_part, _, cls_name = target.rpartition(":")
    if not cls_name.isidentifier():
        raise CertificationError(f"bad class name in target {target!r}")
    candidate = Path(mod_part)
    if mod_part.endswith(".py") or candidate.exists():
        if not candidate.is_file():
            raise CertificationError(f"no such module file: {mod_part}")
        return candidate, cls_name
    try:
        spec = importlib.util.find_spec(mod_part)
    except (ImportError, ValueError) as exc:
        raise CertificationError(
            f"cannot resolve module {mod_part!r}: {exc}"
        ) from None
    if spec is None or spec.origin is None or not spec.origin.endswith(".py"):
        raise CertificationError(f"cannot locate source for module {mod_part!r}")
    return Path(spec.origin), cls_name


# --------------------------------------------------------------------------- #
# whole-tree certification (the CLI path)
# --------------------------------------------------------------------------- #


def certify_target(
    target: str,
    *,
    config: Optional[LintConfig] = None,
    cache: Optional[AnalysisCache] = None,
    root: Optional[Path] = None,
) -> dict[str, Any]:
    """Certify ``target`` against the installed ``repro`` source tree.

    The whole package is analyzed together with the target's module, so
    helpers the scheduler calls into are resolved cross-module exactly
    as ``simmr lint`` resolves them.  With a ``cache``, a warm verdict
    is a digest sweep plus one JSON lookup.
    """
    from .runner import iter_python_files

    config = config if config is not None else LintConfig()
    if root is None:
        root = Path.cwd()
    module_path, cls_name = resolve_target(target)
    files = list(iter_python_files([_package_root()]))
    resolved = module_path.resolve()
    if resolved not in {f.resolve() for f in files}:
        files.append(module_path)

    modules: list[tuple[str, str, str]] = []  # (display, source, digest)
    target_display: Optional[str] = None
    for file_path in files:
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            raise CertificationError(f"cannot read {file_path}: {exc}") from None
        display = _display(file_path, root)
        modules.append((display, source, source_digest(source)))
        if file_path.resolve() == resolved:
            target_display = display
    assert target_display is not None
    module_name = module_name_for_path(target_display)
    label = f"{module_name}:{cls_name}"

    key = ""
    if cache is not None:
        key = program_key(config, [(d, dig) for d, _s, dig in modules])
        hit = cache.lookup_certificate(label, key)
        if hit is not None:
            return hit

    graph = CallGraph(config)
    target_digest = ""
    for display, source, digest in modules:
        try:
            tree = ast.parse(source, filename=display)
        except SyntaxError as exc:
            if display == target_display:
                raise CertificationError(
                    f"cannot parse {display}: {exc.msg} (line {exc.lineno})"
                ) from None
            continue
        graph.add_module(display, tree, source)
        if display == target_display:
            target_digest = digest
    graph.finalize()
    doc = certificate_for_class(
        graph, module_name, cls_name, target=label, src_digest=target_digest
    )
    if cache is not None:
        cache.store_certificate(label, key, doc)
        cache.save()
    return doc


def _display(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


# --------------------------------------------------------------------------- #
# inline certification (the service path)
# --------------------------------------------------------------------------- #


def _check_inline_imports(tree: ast.Module) -> None:
    """Reject imports (anywhere, incl. function bodies) off the whitelist.

    Importing a module *executes* it, so the usage-level effect scan
    cannot gate it — only a whitelist can.  Relative imports have no
    package to resolve against and are rejected outright.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                raise CertificationError(
                    f"inline scheduler source may not use relative "
                    f"imports (line {node.lineno})"
                )
            names = [node.module or ""]
        else:
            continue
        for name in names:
            top = name.split(".", 1)[0]
            if top not in _INLINE_IMPORTABLE:
                raise CertificationError(
                    f"inline scheduler source imports {name!r} "
                    f"(line {node.lineno}), which is outside the "
                    f"certifiable-import whitelist "
                    f"({', '.join(sorted(_INLINE_IMPORTABLE))})"
                )


def _check_import_time(
    graph: CallGraph, module_name: str, tree: ast.Module
) -> None:
    """Reject inline modules whose *top-level* code is effectful.

    Certification gates what the class's methods may do, but the
    module body itself runs the moment the source is exec'd — before
    any predicate applies.  Everything executed at import time (module
    statements, class bodies, decorators, default arguments) must
    therefore be effect-free, and any blob-local function it calls
    must be too.
    """
    mod = graph.module_index(module_name)
    aliases = dict(mod.aliases) if mod is not None else {}
    state = dict(mod.state) if mod is not None else {}
    callables: set[str] = set()
    if mod is not None:
        callables = set(mod.functions) | set(mod.classes)
    kinds, called = import_time_kinds(
        tree, aliases=aliases, state=state, callables=callables
    )
    for kind in _IMPORT_TIME_UNSAFE:
        sink = kinds.get(kind)
        if sink is not None:
            raise CertificationError(
                f"inline scheduler source runs effectful code at import "
                f"time: {sink.detail} ({kind}) at line {sink.lineno}"
            )
    for name in sorted(called):
        fn = graph.resolve_ref(module_name, ("name", name))
        if fn is None or fn.effects is None:
            continue
        bad = sorted(set(fn.effects.atoms) & set(_IMPORT_TIME_UNSAFE))
        if bad:
            raise CertificationError(
                f"inline scheduler source calls {name!r} at import "
                f"time, which reaches {', '.join(bad)}"
            )


def certify_inline(source: str, cls_name: str) -> dict[str, Any]:
    """Certify one self-contained scheduler module shipped as text.

    Single-module analysis: every helper the class uses must travel in
    the same source blob (there is no other code the server could
    soundly attribute to the submitter).  Because the verdict gates
    ``exec`` of untrusted input, analysis here is **fail-closed**
    (``CallGraph(strict=True)``): a call the analyzer cannot resolve
    to a known-pure target carries the ``unresolved-call`` atom and
    fails certification, imports are whitelisted, and the module's
    import-time code must itself be effect-free.  Verdicts are
    memoized by content digest.
    """
    if len(source) > MAX_INLINE_SOURCE:
        raise CertificationError(
            f"inline scheduler source is {len(source)} bytes; the "
            f"certification limit is {MAX_INLINE_SOURCE}"
        )
    digest = source_digest(source)
    memo_key = (digest, cls_name)
    hit = _INLINE_MEMO.get(memo_key)
    if hit is not None:
        return hit
    path = f"<inline:{cls_name}>"
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise CertificationError(
            f"cannot parse inline scheduler source: {exc.msg} "
            f"(line {exc.lineno})"
        ) from None
    _check_inline_imports(tree)
    config = LintConfig()
    graph = CallGraph(config, strict=True)
    graph.add_module(path, tree, source)
    graph.finalize()
    module_name = module_name_for_path(path)
    _check_import_time(graph, module_name, tree)
    doc = certificate_for_class(
        graph,
        module_name,
        cls_name,
        target=f"inline:{cls_name}",
        src_digest=digest,
    )
    if len(_INLINE_MEMO) >= _INLINE_MEMO_MAX:
        _INLINE_MEMO.pop(next(iter(_INLINE_MEMO)))
    _INLINE_MEMO[memo_key] = doc
    return doc


def certified_inline_class(source: str, cls_name: str) -> type:
    """Certify then materialize an inline scheduler class.

    Raises :class:`CertificationError` unless the verdict is
    service-safe; only then is the source executed.  A fresh namespace
    per call keeps class-level state from leaking between runs.
    """
    doc = certify_inline(source, cls_name)
    if not doc["service_safe"]:
        raise CertificationError(failure_message(doc))
    namespace: dict[str, Any] = {}
    exec(compile(source, f"<inline:{cls_name}>", "exec"), namespace)
    cls = namespace.get(cls_name)
    if not isinstance(cls, type):
        raise CertificationError(
            f"inline source does not define a class named {cls_name!r}"
        )
    return cls
