"""Content-addressed incremental cache for whole-program analysis.

Lint and certification both start with the same expensive prefix:
read + parse every module, build the call graph, run effect inference
and the CFG/dataflow passes.  On a warm tree none of that can produce
a different answer, so the cache short-circuits it:

* every module is addressed by a BLAKE2b digest of its source;
* a **program key** digests the sorted ``(path, digest)`` pairs plus
  the engine version (package version + rule ids + a salt bumped on
  any behavioural analysis change) and the effective config — any
  drift in any input changes the key;
* a program-key hit replays the stored findings verbatim (identical
  by construction — they were produced by an identical analysis over
  identical sources);
* on a partial hit, unchanged modules replay their cached *local*
  findings (the per-file rules, which depend only on that file) and
  only re-run the whole-program rules — changed modules re-analyze in
  full.  Cross-module findings always recompute: the call graph makes
  their validity a property of the whole tree.

Certificates (:mod:`repro.analysis.certify`) store under the same
program key, so a warm ``simmr certify`` is a digest check plus a JSON
load.

The store is one JSON file living alongside the lint baseline
(``scripts/lint_baseline.json`` -> ``scripts/.analysis_cache.json`` by
default), written atomically via rename.  A missing, corrupt, or
stale-engine file degrades to an empty cache — never an error.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
from pathlib import Path
from typing import Any, Optional, Sequence

from .config import LintConfig
from .findings import Finding

__all__ = [
    "ANALYSIS_SALT",
    "AnalysisCache",
    "default_cache_path",
    "engine_version",
    "source_digest",
    "program_key",
]

#: Bump whenever rule or engine behaviour changes in a way that can
#: alter findings or certificates for unchanged sources.
ANALYSIS_SALT = "2"

#: Keep at most this many program-level entries (insertion-ordered
#: eviction); one per (tree state, config) actually in use.
_MAX_PROGRAM_ENTRIES = 8


def _package_version() -> str:
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:  # pragma: no cover - uninstalled checkout
        return "0"


def engine_version() -> str:
    """Version salt invalidating every entry on analyzer changes.

    The interpreter version participates too: a checkout shared across
    Python versions (worktrees, containers, version bumps) must not
    replay findings or certificates produced by an interpreter whose
    ``ast`` grammar or analysis behaviour differs.
    """
    from .registry import default_registry

    rules = ",".join(default_registry.known_ids())
    py = "py{}.{}".format(*sys.version_info[:2])
    raw = f"{_package_version()}|{ANALYSIS_SALT}|{py}|{rules}"
    return hashlib.blake2b(raw.encode(), digest_size=8).hexdigest()


def source_digest(source: str) -> str:
    """Content address of one module's source text."""
    return hashlib.blake2b(source.encode("utf-8"), digest_size=16).hexdigest()


def _config_key(config: LintConfig) -> str:
    raw = json.dumps(
        {
            "select": sorted(config.select) if config.select is not None else None,
            "disable": sorted(config.disable),
            "sim_paths": list(config.sim_paths),
            "test_paths": list(config.test_paths),
            "timing_whitelist": list(config.timing_whitelist),
            "non_test_paths": list(config.non_test_paths),
        },
        sort_keys=True,
    )
    return hashlib.blake2b(raw.encode(), digest_size=8).hexdigest()


def program_key(
    config: LintConfig, modules: Sequence[tuple[str, str]]
) -> str:
    """One digest naming the whole analysis input.

    ``modules`` is ``(display_path, source_digest)`` per file; order
    does not matter (pairs are sorted before hashing).
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(engine_version().encode())
    h.update(_config_key(config).encode())
    for path, digest in sorted(modules):
        h.update(path.encode())
        h.update(b"\0")
        h.update(digest.encode())
        h.update(b"\n")
    return h.hexdigest()


def default_cache_path(baseline: Optional[Path]) -> Optional[Path]:
    """Where the cache lives for a given baseline ledger (its sibling)."""
    if baseline is None:
        return None
    return Path(baseline).parent / ".analysis_cache.json"


class AnalysisCache:
    """The on-disk store.  All lookups are tolerant; all writes atomic."""

    def __init__(self, path: Path, data: Optional[dict[str, Any]] = None) -> None:
        self.path = Path(path)
        self._data: dict[str, Any] = data if data is not None else self._empty()
        self._dirty = False

    @staticmethod
    def _empty() -> dict[str, Any]:
        return {
            "version": 1,
            "engine": engine_version(),
            "program": {},
            "modules": {},
            "certificates": {},
        }

    @classmethod
    def load(cls, path: Path) -> "AnalysisCache":
        """Read the store; degrade to empty on any problem or version skew."""
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cls(path)
        if (
            not isinstance(data, dict)
            or data.get("version") != 1
            or data.get("engine") != engine_version()
        ):
            return cls(path)
        for key in ("program", "modules", "certificates"):
            if not isinstance(data.get(key), dict):
                return cls(path)
        return cls(path, data)

    def save(self) -> None:
        """Write back atomically (tmp file + rename); best-effort."""
        if not self._dirty:
            return
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(self._data, handle, sort_keys=True)
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:  # pragma: no cover - read-only checkout etc.
            return
        self._dirty = False

    # ------------------------------------------------------------------ #
    # program-level findings
    # ------------------------------------------------------------------ #

    def lookup_findings(self, key: str) -> Optional[list[Finding]]:
        entry = self._data["program"].get(key)
        if entry is None:
            return None
        try:
            return [Finding.from_dict(d) for d in entry["findings"]]
        except (KeyError, TypeError, ValueError):
            return None

    def store_findings(self, key: str, findings: Sequence[Finding]) -> None:
        table: dict[str, Any] = self._data["program"]
        table.pop(key, None)
        table[key] = {"findings": [f.to_dict() for f in findings]}
        while len(table) > _MAX_PROGRAM_ENTRIES:
            table.pop(next(iter(table)))
        self._dirty = True

    # ------------------------------------------------------------------ #
    # per-module local findings (file-scoped rules only)
    # ------------------------------------------------------------------ #

    def lookup_local(self, path: str, digest: str) -> Optional[list[Finding]]:
        entry = self._data["modules"].get(path)
        if entry is None or entry.get("digest") != digest:
            return None
        try:
            return [Finding.from_dict(d) for d in entry["local"]]
        except (KeyError, TypeError, ValueError):
            return None

    def store_local(
        self, path: str, digest: str, findings: Sequence[Finding]
    ) -> None:
        self._data["modules"][path] = {
            "digest": digest,
            "local": [f.to_dict() for f in findings],
        }
        self._dirty = True

    # ------------------------------------------------------------------ #
    # certificates
    # ------------------------------------------------------------------ #

    def lookup_certificate(
        self, target: str, key: str
    ) -> Optional[dict[str, Any]]:
        entry = self._data["certificates"].get(target)
        if entry is None or entry.get("program") != key:
            return None
        certificate = entry.get("certificate")
        return certificate if isinstance(certificate, dict) else None

    def store_certificate(
        self, target: str, key: str, certificate: dict[str, Any]
    ) -> None:
        self._data["certificates"][target] = {
            "program": key,
            "certificate": certificate,
        }
        self._dirty = True
