"""The simlint rule registry.

Every rule class registers itself (via the :meth:`RuleRegistry.register`
decorator in :mod:`repro.analysis.rules`) with a :class:`RuleInfo`
carrying its id, severity, and documentation.  The registry is the
single source of truth for:

* which rule ids exist (config and suppression validation),
* per-rule docs (``simmr lint --list-rules``, ``docs/linting.md``),
* instantiating the rule set for a run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator

from .findings import Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .visitor import LintRule

__all__ = ["RuleInfo", "RuleRegistry", "default_registry", "META_RULE_ID"]

#: Meta-rule id for problems with simlint itself: unparsable files and
#: unknown rule ids in suppression directives.
META_RULE_ID = "LINT000"


@dataclass(frozen=True)
class RuleInfo:
    """Static description of one rule."""

    rule_id: str
    title: str
    severity: Severity
    rationale: str
    hint: str

    def summary(self) -> str:
        return f"{self.rule_id} [{self.severity.value}] {self.title}"


class RuleRegistry:
    """Mapping of rule id -> (info, rule class)."""

    def __init__(self) -> None:
        self._infos: dict[str, RuleInfo] = {}
        self._classes: dict[str, type] = {}

    def register(self, info: RuleInfo) -> "Callable[[type], type]":
        """Class decorator: add ``cls`` under ``info.rule_id``."""

        def deco(cls: type) -> type:
            if info.rule_id in self._infos:
                raise ValueError(f"duplicate rule id {info.rule_id!r}")
            cls.info = info
            self._infos[info.rule_id] = info
            self._classes[info.rule_id] = cls
            return cls

        return deco

    def register_meta(self, info: RuleInfo) -> None:
        """Register an id with docs but no rule class (LINT000)."""
        if info.rule_id in self._infos:
            raise ValueError(f"duplicate rule id {info.rule_id!r}")
        self._infos[info.rule_id] = info

    def known_ids(self) -> list[str]:
        return sorted(self._infos)

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._infos

    def __iter__(self) -> Iterator[RuleInfo]:
        for rule_id in self.known_ids():
            yield self._infos[rule_id]

    def info(self, rule_id: str) -> RuleInfo:
        try:
            return self._infos[rule_id]
        except KeyError:
            raise ValueError(
                f"unknown rule id {rule_id!r}; known: {', '.join(self.known_ids())}"
            ) from None

    def create_rules(self) -> "list[LintRule]":
        """Instantiate every registered rule class, in id order."""
        return [self._classes[rid]() for rid in sorted(self._classes)]


#: The process-wide registry the stock rules attach to.
default_registry = RuleRegistry()
