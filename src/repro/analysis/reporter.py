"""Text and JSON renderers for simlint findings."""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from .findings import Finding, Severity

__all__ = [
    "render_text", "render_json", "render_github", "render_sarif",
    "parse_json", "summarize",
]

#: Bumped on any backwards-incompatible change to the JSON layout.
JSON_FORMAT_VERSION = 1


def summarize(findings: Sequence[Finding]) -> dict[str, int]:
    """Counts by severity plus the total, for reports and exit logic."""
    counts = {"total": len(findings), "errors": 0, "warnings": 0}
    for f in findings:
        if f.severity is Severity.ERROR:
            counts["errors"] += 1
        else:
            counts["warnings"] += 1
    return counts


def render_text(findings: Iterable[Finding]) -> str:
    """Human-readable report, grouped by file, sorted by location."""
    ordered = sorted(findings, key=lambda f: f.sort_key)
    if not ordered:
        return "simlint: no findings"
    lines: list[str] = []
    current_path = None
    for f in ordered:
        if f.path != current_path:
            if current_path is not None:
                lines.append("")
            current_path = f.path
        lines.append(f.format())
    counts = summarize(ordered)
    lines.append("")
    lines.append(
        f"simlint: {counts['total']} finding(s) "
        f"({counts['errors']} error(s), {counts['warnings']} warning(s))"
    )
    return "\n".join(lines)


def _gh_escape(text: str, *, property: bool = False) -> str:
    """Escape data for GitHub Actions workflow commands.

    ``%``, CR and LF must be percent-encoded in message data; property
    values (file, title, ...) additionally escape ``:`` and ``,``, the
    property delimiters.
    """
    text = text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    if property:
        text = text.replace(":", "%3A").replace(",", "%2C")
    return text


def render_github(findings: Iterable[Finding]) -> str:
    """GitHub Actions annotations: one workflow command per finding.

    ``::error file=...,line=...,col=...,title=RULE::message`` lines make
    findings surface inline on the pull-request diff when ``simmr lint
    --format=github`` runs in CI.  A trailing plain-text summary keeps
    the log readable.
    """
    ordered = sorted(findings, key=lambda f: f.sort_key)
    lines: list[str] = []
    for f in ordered:
        level = "error" if f.severity is Severity.ERROR else "warning"
        message = f.message if not f.hint else f"{f.message} (hint: {f.hint})"
        lines.append(
            f"::{level} file={_gh_escape(f.path, property=True)},"
            f"line={f.line},col={f.col},"
            f"title={_gh_escape(f.rule_id, property=True)}::"
            f"{_gh_escape(message)}"
        )
    counts = summarize(ordered)
    lines.append(
        f"simlint: {counts['total']} finding(s) "
        f"({counts['errors']} error(s), {counts['warnings']} warning(s))"
    )
    return "\n".join(lines)


def render_json(findings: Iterable[Finding]) -> str:
    """Machine-readable report; round-trips through :func:`parse_json`."""
    ordered = sorted(findings, key=lambda f: f.sort_key)
    payload = {
        "version": JSON_FORMAT_VERSION,
        "summary": summarize(ordered),
        "findings": [f.to_dict() for f in ordered],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


#: SARIF is standardized; pin the exact schema the output claims.
_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_sarif(findings: Iterable[Finding]) -> str:
    """SARIF 2.1.0 log, the interchange format code-scanning UIs ingest.

    One run, one ``simlint`` tool driver carrying the full rule catalog
    (id, short description, rationale as full description, hint as
    help), one result per finding.  ``simmr lint --format sarif`` in CI
    feeds this straight to ``github/codeql-action/upload-sarif`` so
    findings land in the repository's code-scanning tab.
    """
    from .registry import default_registry

    rules = []
    rule_index: dict[str, int] = {}
    for info in default_registry:
        rule_index[info.rule_id] = len(rules)
        rules.append({
            "id": info.rule_id,
            "shortDescription": {"text": info.title},
            "fullDescription": {"text": info.rationale},
            "help": {"text": info.hint},
            "defaultConfiguration": {
                "level": "error" if info.severity is Severity.ERROR else "warning",
            },
        })
    results = []
    for f in sorted(findings, key=lambda f: f.sort_key):
        message = f.message if not f.hint else f"{f.message} (hint: {f.hint})"
        result = {
            "ruleId": f.rule_id,
            "level": "error" if f.severity is Severity.ERROR else "warning",
            "message": {"text": message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path},
                    "region": {
                        "startLine": f.line,
                        "startColumn": max(f.col, 1),
                    },
                },
            }],
        }
        if f.rule_id in rule_index:
            result["ruleIndex"] = rule_index[f.rule_id]
        results.append(result)
    log = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "simlint",
                    "informationUri": "docs/linting.md",
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }
    return json.dumps(log, indent=2, sort_keys=True)


def parse_json(text: str) -> list[Finding]:
    """Inverse of :func:`render_json` (used by tooling and the tests)."""
    payload = json.loads(text)
    version = payload.get("version")
    if version != JSON_FORMAT_VERSION:
        raise ValueError(
            f"unsupported simlint JSON version {version!r} "
            f"(expected {JSON_FORMAT_VERSION})"
        )
    return [Finding.from_dict(d) for d in payload["findings"]]
