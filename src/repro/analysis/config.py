"""Rule configuration: selection, suppression, and path classification.

The analyzer needs to know three things about a file that the AST alone
cannot tell it:

* is it **simulation logic** (engine/schedulers/trace — where wall-clock
  reads are forbidden, DET001)?
* is it **test code** (where unseeded randomness is tolerated, DET002)?
* is it **whitelisted timing/benchmark code** (where wall-clock reads
  are the whole point)?

Classification is by substring match against the file's POSIX-style
path.  ``tests/fixtures/`` is deliberately *not* test code: fixture
files there are lint targets (deliberately-broken schedulers the gate
asserts against), so the test exemption must not swallow them.

Defaults can be overridden from ``[tool.simlint]`` in ``pyproject.toml``::

    [tool.simlint]
    disable = []
    sim-paths = ["core/", "schedulers/", "trace/", "mumak/", "hadoop/"]
    timing-whitelist = ["benchmarks/"]
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .registry import RuleRegistry

__all__ = ["LintConfig", "find_pyproject"]

#: Paths holding simulation logic: wall-clock calls here violate DET001.
DEFAULT_SIM_PATHS = ("core/", "schedulers/", "trace/", "mumak/", "hadoop/")

#: Paths holding test code: DET002 (unseeded randomness) is waived here.
DEFAULT_TEST_PATHS = ("tests/", "test_", "conftest")

#: Paths whose *job* is wall-clock measurement: DET001 is waived here.
#: ``walltime`` is repro.core.walltime — the single sanctioned wall-clock
#: site the engine's throughput metric reads through.
DEFAULT_TIMING_WHITELIST = ("benchmarks/", "walltime")

#: Sub-paths of test dirs that are lint *targets*, not test code.
DEFAULT_NON_TEST_PATHS = ("fixtures/",)


def _as_tuple(value: Iterable[str]) -> tuple[str, ...]:
    return tuple(str(v) for v in value)


@dataclass(frozen=True)
class LintConfig:
    """Immutable analyzer configuration.

    ``select`` of ``None`` means "all registered rules"; otherwise only
    the listed ids run.  ``disable`` always wins over ``select``.
    """

    select: Optional[frozenset[str]] = None
    disable: frozenset[str] = frozenset()
    sim_paths: tuple[str, ...] = DEFAULT_SIM_PATHS
    test_paths: tuple[str, ...] = DEFAULT_TEST_PATHS
    timing_whitelist: tuple[str, ...] = DEFAULT_TIMING_WHITELIST
    non_test_paths: tuple[str, ...] = DEFAULT_NON_TEST_PATHS

    # ------------------------------------------------------------------ #
    # rule selection
    # ------------------------------------------------------------------ #

    def validate(self, registry: "RuleRegistry") -> "LintConfig":
        """Reject unknown rule ids up front; returns self for chaining."""
        known = set(registry.known_ids())
        for group, ids in (("select", self.select or ()), ("disable", self.disable)):
            unknown = sorted(set(ids) - known)
            if unknown:
                raise ValueError(
                    f"unknown rule id(s) in {group}: {', '.join(unknown)}; "
                    f"known: {', '.join(sorted(known))}"
                )
        return self

    def is_enabled(self, rule_id: str) -> bool:
        if rule_id in self.disable:
            return False
        return self.select is None or rule_id in self.select

    # ------------------------------------------------------------------ #
    # path classification
    # ------------------------------------------------------------------ #

    @staticmethod
    def _matches(path: str, patterns: tuple[str, ...]) -> bool:
        posix = path.replace("\\", "/")
        name = posix.rsplit("/", 1)[-1]
        for pat in patterns:
            if pat.endswith("/"):
                if f"/{pat}" in f"/{posix}":
                    return True
            elif name.startswith(pat):
                return True
        return False

    def is_sim_path(self, path: str) -> bool:
        return self._matches(path, self.sim_paths)

    def is_test_path(self, path: str) -> bool:
        return self._matches(path, self.test_paths) and not self._matches(
            path, self.non_test_paths
        )

    def is_timing_whitelisted(self, path: str) -> bool:
        return self._matches(path, self.timing_whitelist)

    # ------------------------------------------------------------------ #
    # loading
    # ------------------------------------------------------------------ #

    @classmethod
    def from_pyproject(cls, pyproject: Path) -> "LintConfig":
        """Build a config from ``[tool.simlint]``; defaults when absent."""
        import tomllib

        try:
            data = tomllib.loads(pyproject.read_text())
        except tomllib.TOMLDecodeError as exc:
            # Normalized to ValueError so callers (the CLI's exit-code-2
            # path) need one except clause for every config problem.
            raise ValueError(f"invalid TOML in {pyproject}: {exc}") from exc
        table = data.get("tool", {}).get("simlint", {})
        known_keys = {
            "select", "disable", "sim-paths", "test-paths",
            "timing-whitelist", "non-test-paths",
        }
        unknown = sorted(set(table) - known_keys)
        if unknown:
            raise ValueError(
                f"unknown [tool.simlint] key(s) in {pyproject}: {', '.join(unknown)}"
            )
        kwargs: dict = {}
        if "select" in table:
            kwargs["select"] = frozenset(_as_tuple(table["select"]))
        if "disable" in table:
            kwargs["disable"] = frozenset(_as_tuple(table["disable"]))
        if "sim-paths" in table:
            kwargs["sim_paths"] = _as_tuple(table["sim-paths"])
        if "test-paths" in table:
            kwargs["test_paths"] = _as_tuple(table["test-paths"])
        if "timing-whitelist" in table:
            kwargs["timing_whitelist"] = _as_tuple(table["timing-whitelist"])
        if "non-test-paths" in table:
            kwargs["non_test_paths"] = _as_tuple(table["non-test-paths"])
        return cls(**kwargs)


def find_pyproject(start: Path) -> Optional[Path]:
    """Nearest ``pyproject.toml`` at or above ``start``, if any."""
    node = start.resolve()
    if node.is_file():
        node = node.parent
    for candidate in (node, *node.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None
