"""Directory walking and the public linting entry points.

``lint_paths`` runs in two passes: every target file is read and parsed
once, the whole-program call graph is built over all parseable modules
(powering the cross-module rules DET004/SIM004/API002), and then each
file is walked by the per-file rule set with the shared graph on its
:class:`~repro.analysis.visitor.FileContext`.  ``lint_source`` builds a
single-module graph, so intra-file indirection is still caught when
linting one buffer (tests, editors).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

from .cache import AnalysisCache, program_key, source_digest
from .callgraph import CallGraph
from .concurrency import analyze_concurrency
from .config import LintConfig
from .dataflow import RawFinding
from .findings import Finding
from .registry import META_RULE_ID, RuleRegistry, default_registry
from .resources import analyze_resources
from .visitor import FileContext, Walker, parse_suppressions

# Rule classes attach to default_registry at import time.
from . import rules as _rules  # noqa: F401  (import for side effect)

__all__ = ["lint_paths", "lint_source", "iter_python_files", "PROGRAM_RULE_IDS"]

#: Rules whose findings depend on the *whole* analyzed tree (call graph
#: or thread-reachability), not just one file's source.  The incremental
#: cache may replay a module's file-scoped findings when its source is
#: unchanged, but these always recompute.
PROGRAM_RULE_IDS = frozenset({
    "DET004", "SIM004", "API002",
    "CONC001", "CONC002", "CONC003", "CONC004",
    "RES001", "RES002", "RES003",
})

_SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".venv", "venv", ".mypy_cache", ".ruff_cache",
    ".pytest_cache", "build", "dist",
})


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted, deduplicated .py list.

    (Sorted so reports — and any rule interaction with ordering — are
    themselves deterministic.  The linter must pass its own rules.)
    """
    seen: set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(
                p
                for p in path.rglob("*.py")
                if not any(part in _SKIP_DIRS for part in p.parts)
            )
        else:
            candidates = [path]
        for c in candidates:
            if c not in seen:
                seen.add(c)
                yield c


def _display_path(path: Path, root: Optional[Path]) -> str:
    """Path as reported in findings: relative to ``root`` when possible."""
    if root is not None:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def _program_findings(
    graph: CallGraph, config: LintConfig
) -> dict[str, list[RawFinding]]:
    """Run the whole-program CONC/RES analyses, grouped by display path."""
    by_path: dict[str, list[RawFinding]] = {}
    for raw in analyze_concurrency(graph, config) + analyze_resources(graph, config):
        by_path.setdefault(raw.path, []).append(raw)
    return by_path


def _lint_tree(
    source: str,
    path: str,
    tree: Optional[ast.Module],
    parse_error: Optional[SyntaxError],
    config: LintConfig,
    registry: RuleRegistry,
    callgraph: Optional[CallGraph],
    program_findings: Optional[list[RawFinding]] = None,
    suppressions: Optional[dict[int, set[str]]] = None,
    cached_local: Optional[list[Finding]] = None,
) -> list[Finding]:
    """Walk one pre-parsed module (or report its parse failure).

    When ``cached_local`` is given (the incremental cache proved this
    file's source unchanged), only the whole-program rules walk the
    tree; the file-scoped findings are replayed from the cache.
    """
    ctx = FileContext(
        path,
        source,
        config,
        registry,
        callgraph=callgraph,
        program_findings=program_findings,
        suppressions=suppressions,
    )
    if tree is None:
        if parse_error is not None:
            ctx.report_meta(parse_error.lineno or 1, f"cannot parse file: {parse_error.msg}")
        return ctx.findings
    rules = registry.create_rules()
    if cached_local is not None:
        rules = [r for r in rules if r.info.rule_id in PROGRAM_RULE_IDS]
    Walker(ctx, rules).run(tree)
    if cached_local is not None:
        ctx.findings.extend(cached_local)
    ctx.findings.sort(key=lambda f: f.sort_key)
    return ctx.findings


def lint_source(
    source: str,
    path: str = "<string>",
    config: Optional[LintConfig] = None,
    registry: Optional[RuleRegistry] = None,
) -> list[Finding]:
    """Lint one in-memory module; the unit used by tests and editors."""
    config = config if config is not None else LintConfig()
    registry = registry if registry is not None else default_registry
    config.validate(registry)
    tree: Optional[ast.Module] = None
    parse_error: Optional[SyntaxError] = None
    graph: Optional[CallGraph] = None
    program: Optional[list[RawFinding]] = None
    suppressions = parse_suppressions(source)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        parse_error = exc
    if tree is not None:
        graph = CallGraph(config)
        graph.add_module(path, tree, source, suppressions=suppressions)
        graph.finalize()
        program = _program_findings(graph, config).get(path)
    return _lint_tree(
        source, path, tree, parse_error, config, registry, graph,
        program_findings=program, suppressions=suppressions,
    )


def lint_paths(
    paths: Sequence[Path | str],
    config: Optional[LintConfig] = None,
    registry: Optional[RuleRegistry] = None,
    root: Optional[Path] = None,
    cache: Optional[AnalysisCache] = None,
) -> list[Finding]:
    """Lint files and directory trees; findings sorted by location.

    ``root`` (default: the current directory) is stripped from reported
    paths so findings are stable across checkouts.  ``cache`` enables
    the content-addressed incremental store
    (:class:`repro.analysis.cache.AnalysisCache`): a warm unchanged
    tree replays its findings without re-analysis, and a partially
    changed tree replays the file-scoped findings of unchanged modules.
    Custom registries bypass the cache (its keys only describe the
    stock rule set).
    """
    config = config if config is not None else LintConfig()
    registry = registry if registry is not None else default_registry
    config.validate(registry)
    if registry is not default_registry:
        cache = None
    if root is None:
        root = Path.cwd()
    findings: list[Finding] = []
    # Pass 1: read + parse everything ONCE, building the shared call
    # graph.  The parsed trees, the suppression maps, and the graph's
    # module index are all reused by pass 2 and by the whole-program
    # dataflow analyses — no file is read or parsed twice.
    parsed: list[
        tuple[str, str, Optional[ast.Module], Optional[SyntaxError], dict[int, set[str]]]
    ] = []
    digests: dict[str, str] = {}
    sources: dict[str, str] = {}
    read_errors = False
    for file_path in iter_python_files(Path(p) for p in paths):
        display = _display_path(file_path, root)
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            ctx = FileContext(display, "", config, registry)
            ctx.report_meta(1, f"cannot read file: {exc}")
            findings.extend(ctx.findings)
            read_errors = True
            continue
        sources[display] = source
        digests[display] = source_digest(source)
        parsed.append((display, source, None, None, {}))
    # Unreadable files make the tree state unaddressable; run uncached.
    if read_errors:
        cache = None
    key = ""
    if cache is not None:
        key = program_key(config, sorted(digests.items()))
        hit = cache.lookup_findings(key)
        if hit is not None:
            findings.extend(hit)
            findings.sort(key=lambda f: f.sort_key)
            return findings
    graph = CallGraph(config)
    analyzed: list[
        tuple[str, str, Optional[ast.Module], Optional[SyntaxError], dict[int, set[str]]]
    ] = []
    for display, source, _tree, _err, _supp in parsed:
        suppressions = parse_suppressions(source)
        try:
            tree: Optional[ast.Module] = ast.parse(source, filename=display)
            parse_error: Optional[SyntaxError] = None
        except SyntaxError as exc:
            tree, parse_error = None, exc
        if tree is not None:
            graph.add_module(display, tree, source, suppressions=suppressions)
        analyzed.append((display, source, tree, parse_error, suppressions))
    graph.finalize()
    # Whole-program CONC/RES dataflow over the same finalized graph.
    program = _program_findings(graph, config)
    # Pass 2: per-file walks with the whole-program graph in scope.
    for display, source, tree, parse_error, suppressions in analyzed:
        cached_local: Optional[list[Finding]] = None
        if cache is not None and tree is not None:
            cached_local = cache.lookup_local(display, digests[display])
        file_findings = _lint_tree(
            source, display, tree, parse_error, config, registry, graph,
            program_findings=program.get(display), suppressions=suppressions,
            cached_local=cached_local,
        )
        if cache is not None and tree is not None and cached_local is None:
            cache.store_local(
                display,
                digests[display],
                [
                    f for f in file_findings
                    if f.rule_id not in PROGRAM_RULE_IDS
                    and f.rule_id != META_RULE_ID
                ],
            )
        findings.extend(file_findings)
    findings.sort(key=lambda f: f.sort_key)
    if cache is not None:
        cache.store_findings(key, findings)
        cache.save()
    return findings
