"""Directory walking and the public linting entry points.

``lint_paths`` runs in two passes: every target file is read and parsed
once, the whole-program call graph is built over all parseable modules
(powering the cross-module rules DET004/SIM004/API002), and then each
file is walked by the per-file rule set with the shared graph on its
:class:`~repro.analysis.visitor.FileContext`.  ``lint_source`` builds a
single-module graph, so intra-file indirection is still caught when
linting one buffer (tests, editors).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

from .callgraph import CallGraph
from .concurrency import analyze_concurrency
from .config import LintConfig
from .dataflow import RawFinding
from .findings import Finding
from .registry import RuleRegistry, default_registry
from .resources import analyze_resources
from .visitor import FileContext, Walker, parse_suppressions

# Rule classes attach to default_registry at import time.
from . import rules as _rules  # noqa: F401  (import for side effect)

__all__ = ["lint_paths", "lint_source", "iter_python_files"]

_SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".venv", "venv", ".mypy_cache", ".ruff_cache",
    ".pytest_cache", "build", "dist",
})


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted, deduplicated .py list.

    (Sorted so reports — and any rule interaction with ordering — are
    themselves deterministic.  The linter must pass its own rules.)
    """
    seen: set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(
                p
                for p in path.rglob("*.py")
                if not any(part in _SKIP_DIRS for part in p.parts)
            )
        else:
            candidates = [path]
        for c in candidates:
            if c not in seen:
                seen.add(c)
                yield c


def _display_path(path: Path, root: Optional[Path]) -> str:
    """Path as reported in findings: relative to ``root`` when possible."""
    if root is not None:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def _program_findings(
    graph: CallGraph, config: LintConfig
) -> dict[str, list[RawFinding]]:
    """Run the whole-program CONC/RES analyses, grouped by display path."""
    by_path: dict[str, list[RawFinding]] = {}
    for raw in analyze_concurrency(graph, config) + analyze_resources(graph, config):
        by_path.setdefault(raw.path, []).append(raw)
    return by_path


def _lint_tree(
    source: str,
    path: str,
    tree: Optional[ast.Module],
    parse_error: Optional[SyntaxError],
    config: LintConfig,
    registry: RuleRegistry,
    callgraph: Optional[CallGraph],
    program_findings: Optional[list[RawFinding]] = None,
    suppressions: Optional[dict[int, set[str]]] = None,
) -> list[Finding]:
    """Walk one pre-parsed module (or report its parse failure)."""
    ctx = FileContext(
        path,
        source,
        config,
        registry,
        callgraph=callgraph,
        program_findings=program_findings,
        suppressions=suppressions,
    )
    if tree is None:
        if parse_error is not None:
            ctx.report_meta(parse_error.lineno or 1, f"cannot parse file: {parse_error.msg}")
        return ctx.findings
    Walker(ctx, registry.create_rules()).run(tree)
    ctx.findings.sort(key=lambda f: f.sort_key)
    return ctx.findings


def lint_source(
    source: str,
    path: str = "<string>",
    config: Optional[LintConfig] = None,
    registry: Optional[RuleRegistry] = None,
) -> list[Finding]:
    """Lint one in-memory module; the unit used by tests and editors."""
    config = config if config is not None else LintConfig()
    registry = registry if registry is not None else default_registry
    config.validate(registry)
    tree: Optional[ast.Module] = None
    parse_error: Optional[SyntaxError] = None
    graph: Optional[CallGraph] = None
    program: Optional[list[RawFinding]] = None
    suppressions = parse_suppressions(source)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        parse_error = exc
    if tree is not None:
        graph = CallGraph(config)
        graph.add_module(path, tree, source, suppressions=suppressions)
        graph.finalize()
        program = _program_findings(graph, config).get(path)
    return _lint_tree(
        source, path, tree, parse_error, config, registry, graph,
        program_findings=program, suppressions=suppressions,
    )


def lint_paths(
    paths: Sequence[Path | str],
    config: Optional[LintConfig] = None,
    registry: Optional[RuleRegistry] = None,
    root: Optional[Path] = None,
) -> list[Finding]:
    """Lint files and directory trees; findings sorted by location.

    ``root`` (default: the current directory) is stripped from reported
    paths so findings are stable across checkouts.
    """
    config = config if config is not None else LintConfig()
    registry = registry if registry is not None else default_registry
    config.validate(registry)
    if root is None:
        root = Path.cwd()
    findings: list[Finding] = []
    # Pass 1: read + parse everything ONCE, building the shared call
    # graph.  The parsed trees, the suppression maps, and the graph's
    # module index are all reused by pass 2 and by the whole-program
    # dataflow analyses — no file is read or parsed twice.
    parsed: list[
        tuple[str, str, Optional[ast.Module], Optional[SyntaxError], dict[int, set[str]]]
    ] = []
    graph = CallGraph(config)
    for file_path in iter_python_files(Path(p) for p in paths):
        display = _display_path(file_path, root)
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            ctx = FileContext(display, "", config, registry)
            ctx.report_meta(1, f"cannot read file: {exc}")
            findings.extend(ctx.findings)
            continue
        suppressions = parse_suppressions(source)
        try:
            tree: Optional[ast.Module] = ast.parse(source, filename=display)
            parse_error: Optional[SyntaxError] = None
        except SyntaxError as exc:
            tree, parse_error = None, exc
        if tree is not None:
            graph.add_module(display, tree, source, suppressions=suppressions)
        parsed.append((display, source, tree, parse_error, suppressions))
    graph.finalize()
    # Whole-program CONC/RES dataflow over the same finalized graph.
    program = _program_findings(graph, config)
    # Pass 2: per-file walks with the whole-program graph in scope.
    for display, source, tree, parse_error, suppressions in parsed:
        findings.extend(
            _lint_tree(
                source, display, tree, parse_error, config, registry, graph,
                program_findings=program.get(display), suppressions=suppressions,
            )
        )
    findings.sort(key=lambda f: f.sort_key)
    return findings
