"""Directory walking and the public linting entry points."""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

from .config import LintConfig
from .findings import Finding
from .registry import RuleRegistry, default_registry
from .visitor import FileContext, Walker

# Rule classes attach to default_registry at import time.
from . import rules as _rules  # noqa: F401  (import for side effect)

__all__ = ["lint_paths", "lint_source", "iter_python_files"]

_SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".venv", "venv", ".mypy_cache", ".ruff_cache",
    ".pytest_cache", "build", "dist",
})


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted, deduplicated .py list.

    (Sorted so reports — and any rule interaction with ordering — are
    themselves deterministic.  The linter must pass its own rules.)
    """
    seen: set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(
                p
                for p in path.rglob("*.py")
                if not any(part in _SKIP_DIRS for part in p.parts)
            )
        else:
            candidates = [path]
        for c in candidates:
            if c not in seen:
                seen.add(c)
                yield c


def _display_path(path: Path, root: Optional[Path]) -> str:
    """Path as reported in findings: relative to ``root`` when possible."""
    if root is not None:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def lint_source(
    source: str,
    path: str = "<string>",
    config: Optional[LintConfig] = None,
    registry: Optional[RuleRegistry] = None,
) -> list[Finding]:
    """Lint one in-memory module; the unit used by tests and editors."""
    config = config if config is not None else LintConfig()
    registry = registry if registry is not None else default_registry
    config.validate(registry)
    ctx = FileContext(path, source, config, registry)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        ctx.report_meta(exc.lineno or 1, f"cannot parse file: {exc.msg}")
        return ctx.findings
    Walker(ctx, registry.create_rules()).run(tree)
    ctx.findings.sort(key=lambda f: f.sort_key)
    return ctx.findings


def lint_paths(
    paths: Sequence[Path | str],
    config: Optional[LintConfig] = None,
    registry: Optional[RuleRegistry] = None,
    root: Optional[Path] = None,
) -> list[Finding]:
    """Lint files and directory trees; findings sorted by location.

    ``root`` (default: the current directory) is stripped from reported
    paths so findings are stable across checkouts.
    """
    config = config if config is not None else LintConfig()
    registry = registry if registry is not None else default_registry
    config.validate(registry)
    if root is None:
        root = Path.cwd()
    findings: list[Finding] = []
    for file_path in iter_python_files(Path(p) for p in paths):
        display = _display_path(file_path, root)
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            ctx = FileContext(display, "", config, registry)
            ctx.report_meta(1, f"cannot read file: {exc}")
            findings.extend(ctx.findings)
            continue
        findings.extend(lint_source(source, display, config, registry))
    findings.sort(key=lambda f: f.sort_key)
    return findings
