"""Single-pass AST walker and per-file analysis context.

One parse, one walk: the :class:`Walker` visits every node once and
dispatches to each rule's ``check_<NodeType>`` hooks, sharing the
bookkeeping every rule needs — import aliases, the enclosing
class/function stacks, scheduler-class detection, and inline-suppression
handling — so individual rules stay small and declarative.

Inline suppression
------------------
A trailing ``# simlint: disable=<RULE>[,<RULE>...]`` comment suppresses the
listed rules (or ``all``) on that physical line.  Prose after the id
list ("-- audited because ...") is ignored, so the justification can
live in the directive itself.  Unknown rule ids in a directive are
themselves reported (:data:`~repro.analysis.registry.META_RULE_ID`)
— a typo in a suppression must not silently disable nothing.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from .config import LintConfig
from .findings import Finding, Severity
from .registry import META_RULE_ID, RuleInfo, RuleRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .callgraph import CallGraph
    from .dataflow import RawFinding

__all__ = ["LintRule", "FileContext", "Walker", "parse_suppressions"]

# Ids are comma-separated; anything after the id list (a justification,
# "-- see audit note") is deliberately not captured.
_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

#: ``datetime``-module calls that read the host clock.
WALLCLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.clock_gettime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: The paper's narrow scheduler-plugin contract (Section III-B).
CHOOSE_METHODS = frozenset({"choose_next_map_task", "choose_next_reduce_task"})

#: Scheduler-contract entry points the engine invokes on valid traces;
#: API002 checks their (transitive) callees for undeclared raises.
CONTRACT_METHODS = CHOOSE_METHODS | frozenset({
    "priority_key", "preemption_requests", "on_job_arrival", "on_job_departure",
})

#: Function names that embody a scheduling / tie-breaking decision.
DECISION_FUNC_RE = re.compile(
    r"^(choose_next_|_choose\b|choose\b|priority_key$|preemption_requests$"
    r"|_allocate|tie_break|_tie_break)"
)


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map 1-based line number -> set of rule ids disabled on that line."""
    out: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if m:
            ids = {part.strip() for part in m.group(1).split(",") if part.strip()}
            if ids:
                out[lineno] = ids
    return out


@dataclass
class ClassInfo:
    """Facts about the class currently being visited."""

    node: ast.ClassDef
    base_names: tuple[str, ...]
    is_scheduler: bool
    declares_static_priority: bool = False
    inherits_static_priority: bool = False
    has_priority_key: bool = False
    own_choose_defs: list[ast.FunctionDef] = field(default_factory=list)

    @property
    def static_priority(self) -> bool:
        return self.declares_static_priority or self.inherits_static_priority


@dataclass
class FunctionInfo:
    """Facts about the function currently being visited."""

    node: ast.FunctionDef | ast.AsyncFunctionDef
    name: str
    is_choose: bool
    is_handler: bool
    is_decision: bool
    #: A scheduler-contract entry point (choose_next_*, priority_key,
    #: preemption_requests, on_job_*) defined on a scheduler class.
    is_contract: bool = False
    #: Names bound (directly or via min/max/sorted/next/for) from the
    #: job-queue parameter of a ``choose_next_*`` method.
    jobish_names: set[str] = field(default_factory=set)


class FileContext:
    """Everything rules need to know about the file under analysis."""

    def __init__(
        self,
        path: str,
        source: str,
        config: LintConfig,
        registry: RuleRegistry,
        callgraph: "Optional[CallGraph]" = None,
        program_findings: "Optional[list[RawFinding]]" = None,
        suppressions: Optional[dict[int, set[str]]] = None,
    ) -> None:
        self.path = path
        self.source = source
        self.config = config
        self.registry = registry
        #: Whole-program call graph (DET004/SIM004/API002); ``None`` when
        #: the caller did not build one — cross-module rules then no-op.
        self.callgraph = callgraph
        #: Whole-program CONC/RES findings for *this* path, computed by
        #: the runner over the finalized graph; the thin rule classes
        #: replay them through :meth:`report` so config selection and
        #: inline suppression apply like any per-file finding.
        self.program_findings = program_findings or []
        self.findings: list[Finding] = []
        # The runner parses suppressions once per file and shares the
        # result here and with the call graph; standalone construction
        # still parses its own.
        self.suppressions = (
            suppressions if suppressions is not None else parse_suppressions(source)
        )
        # Import alias tracking: local name -> dotted module/object path.
        self.aliases: dict[str, str] = {}
        self.class_stack: list[ClassInfo] = []
        self.func_stack: list[FunctionInfo] = []
        self.is_sim_path = config.is_sim_path(path)
        self.is_test_path = config.is_test_path(path)
        self.is_timing_whitelisted = config.is_timing_whitelisted(path)
        self._check_suppression_ids()

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #

    def report(
        self,
        info: RuleInfo,
        node: ast.AST,
        message: Optional[str] = None,
        hint: Optional[str] = None,
    ) -> None:
        """File a finding for ``info`` at ``node`` unless suppressed."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        if not self.config.is_enabled(info.rule_id):
            return
        disabled = self.suppressions.get(line, ())
        if info.rule_id in disabled or "all" in disabled:
            return
        self.findings.append(
            Finding(
                path=self.path,
                line=line,
                col=col,
                rule_id=info.rule_id,
                severity=info.severity,
                message=message if message is not None else info.title,
                hint=hint if hint is not None else info.hint,
            )
        )

    def report_meta(self, line: int, message: str) -> None:
        """File a LINT000 meta finding (bad directive / unparsable file)."""
        if not self.config.is_enabled(META_RULE_ID):
            return
        self.findings.append(
            Finding(
                path=self.path,
                line=line,
                col=1,
                rule_id=META_RULE_ID,
                severity=Severity.ERROR,
                message=message,
                hint=self.registry.info(META_RULE_ID).hint,
            )
        )

    def _check_suppression_ids(self) -> None:
        for line, ids in sorted(self.suppressions.items()):
            for rule_id in sorted(ids):
                if rule_id != "all" and rule_id not in self.registry:
                    self.report_meta(
                        line,
                        f"unknown rule id {rule_id!r} in simlint directive; "
                        f"known: {', '.join(self.registry.known_ids())} or 'all'",
                    )

    # ------------------------------------------------------------------ #
    # name resolution
    # ------------------------------------------------------------------ #

    def resolve_dotted(self, node: ast.AST) -> Optional[str]:
        """Resolve ``Name``/``Attribute`` chains through import aliases.

        ``_time.perf_counter`` (after ``import time as _time``) resolves
        to ``"time.perf_counter"``; ``rng.random`` (a local variable)
        resolves to ``None`` — locals are not modules.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))

    def record_import(self, node: ast.Import | ast.ImportFrom) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                self.aliases[local] = target
        else:
            if node.module is None or node.level:
                return  # relative imports are in-package, never time/random
            for alias in node.names:
                local = alias.asname or alias.name
                self.aliases[local] = f"{node.module}.{alias.name}"

    # ------------------------------------------------------------------ #
    # scope queries used by rules
    # ------------------------------------------------------------------ #

    @property
    def current_class(self) -> Optional[ClassInfo]:
        return self.class_stack[-1] if self.class_stack else None

    @property
    def current_function(self) -> Optional[FunctionInfo]:
        return self.func_stack[-1] if self.func_stack else None

    def in_scheduler_class(self) -> bool:
        return any(c.is_scheduler for c in self.class_stack)

    def in_sim_scope(self) -> bool:
        """Is this node inside simulation logic (for DET001)?

        True when the file lives under a configured simulation path, or
        — regardless of path — inside a scheduler class or an event
        handler, so plugin files anywhere are still covered.
        """
        if self.is_timing_whitelisted:
            return False
        if self.is_sim_path:
            return True
        if self.in_scheduler_class():
            return True
        return any(f.is_handler or f.is_decision for f in self.func_stack)

    def in_decision_scope(self) -> bool:
        return any(f.is_decision for f in self.func_stack)

    def in_choose_method(self) -> Optional[FunctionInfo]:
        for f in reversed(self.func_stack):
            if f.is_choose:
                return f
        return None

    def in_contract_method(self) -> Optional[FunctionInfo]:
        for f in reversed(self.func_stack):
            if f.is_contract:
                return f
        return None

    def program_findings_for(self, rule_id: str) -> "list[RawFinding]":
        return [raw for raw in self.program_findings if raw.rule_id == rule_id]


class LintRule:
    """Base class for rules.

    Subclasses define ``check_<NodeType>(node, ctx)`` hooks; the walker
    calls them as it encounters matching nodes.  ``ClassDef`` hooks run
    *after* the class body was pre-scanned into :class:`ClassInfo` but
    before the body is visited; ``finish_ClassDef`` runs after the body.
    """

    info: RuleInfo  # injected by RuleRegistry.register

    def hooks(self) -> dict[str, "list"]:
        """Node-type name -> bound check methods, discovered by prefix."""
        out: dict[str, list] = {}
        for name in dir(self):
            if name.startswith(("check_", "finish_")):
                out.setdefault(name, []).append(getattr(self, name))
        return out


def _base_names(node: ast.ClassDef) -> tuple[str, ...]:
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return tuple(names)


def _is_scheduler_class(bases: tuple[str, ...]) -> bool:
    return any(b == "Scheduler" or b.endswith("Scheduler") for b in bases)


_HANDLER_RE = re.compile(r"^_?on_[a-z]")


class Walker(ast.NodeVisitor):
    """Drives every rule over one file's AST in a single traversal."""

    def __init__(self, ctx: FileContext, rules: "list[LintRule]") -> None:
        self.ctx = ctx
        # hook name ("check_Call") -> list of bound rule methods.
        self._hooks: dict[str, list] = {}
        for rule in rules:
            for name, fns in rule.hooks().items():
                self._hooks.setdefault(name, []).extend(fns)

    def run(self, tree: ast.Module) -> None:
        # Module-level hooks bracket the walk; the whole-program rule
        # shims (CONC/RES replay) hang off check_Module.
        self._dispatch("check", tree)
        self.visit(tree)
        self._dispatch("finish", tree)

    def _dispatch(self, phase: str, node: ast.AST) -> None:
        for fn in self._hooks.get(f"{phase}_{type(node).__name__}", ()):
            fn(node, self.ctx)

    # ------------------------------------------------------------------ #
    # structure-tracking visits
    # ------------------------------------------------------------------ #

    def visit_Import(self, node: ast.Import) -> None:
        self.ctx.record_import(node)
        self._dispatch("check", node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.ctx.record_import(node)
        self._dispatch("check", node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        bases = _base_names(node)
        info = ClassInfo(
            node=node,
            base_names=bases,
            is_scheduler=_is_scheduler_class(bases) or node.name.endswith("Scheduler"),
            inherits_static_priority="StaticPriorityScheduler" in bases,
        )
        # Pre-scan the class body so rules see the whole contract at once.
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == "static_priority"
                        and isinstance(stmt.value, ast.Constant)
                        and stmt.value.value is True
                    ):
                        info.declares_static_priority = True
            elif isinstance(stmt, ast.AnnAssign):
                if (
                    isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "static_priority"
                    and isinstance(stmt.value, ast.Constant)
                    and stmt.value.value is True
                ):
                    info.declares_static_priority = True
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stmt.name == "priority_key":
                    info.has_priority_key = True
                elif stmt.name in CHOOSE_METHODS:
                    info.own_choose_defs.append(stmt)  # type: ignore[arg-type]
        self.ctx.class_stack.append(info)
        self._dispatch("check", node)
        self.generic_visit(node)
        self._dispatch("finish", node)
        self.ctx.class_stack.pop()

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        in_class = bool(self.ctx.class_stack) and not self.ctx.func_stack
        is_choose = in_class and node.name in CHOOSE_METHODS
        info = FunctionInfo(
            node=node,
            name=node.name,
            is_choose=is_choose,
            is_handler=in_class and bool(_HANDLER_RE.match(node.name)),
            is_decision=bool(DECISION_FUNC_RE.match(node.name)),
            is_contract=(
                in_class
                and node.name in CONTRACT_METHODS
                and self.ctx.in_scheduler_class()
            ),
        )
        if is_choose:
            # The job-queue parameter: everything flowing out of it is an
            # engine-owned Job (tracked for SIM002's mutation checks).
            params = [a.arg for a in node.args.args if a.arg != "self"]
            if params:
                info.jobish_names.add(params[0])
        self.ctx.func_stack.append(info)
        self._dispatch("check", node)
        self.generic_visit(node)
        self._dispatch("finish", node)
        self.ctx.func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_For(self, node: ast.For) -> None:
        self._track_jobish_binding(node.target, node.iter)
        self._dispatch("check", node)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1:
            self._track_jobish_binding(node.targets[0], node.value)
        self._dispatch("check", node)
        self.generic_visit(node)

    def _track_jobish_binding(self, target: ast.AST, value: ast.AST) -> None:
        """Propagate job-ness: ``for j in queue`` / ``j = min(queue, ...)``."""
        fn = self.ctx.in_choose_method()
        if fn is None or not isinstance(target, ast.Name):
            return
        source = value
        if (
            isinstance(source, ast.Call)
            and isinstance(source.func, ast.Name)
            and source.func.id in {"min", "max", "sorted", "next", "list", "reversed"}
            and source.args
        ):
            source = source.args[0]
        if isinstance(source, ast.Name) and source.id in fn.jobish_names:
            fn.jobish_names.add(target.id)

    # ------------------------------------------------------------------ #
    # plain dispatch visits
    # ------------------------------------------------------------------ #

    def _plain(self, node: ast.AST) -> None:
        self._dispatch("check", node)
        self.generic_visit(node)

    visit_Call = _plain
    visit_Compare = _plain
    visit_AugAssign = _plain
    # ``comprehension`` nodes (the ``for x in y`` clauses of list/set/
    # dict comprehensions and generator expressions) are reached through
    # generic_visit and dispatch like any other node type.
    visit_comprehension = _plain
