"""Resource-safety analysis: the RES rule family.

The parallel executor hands trace payloads around as
``multiprocessing.shared_memory`` segments and spill files, and both
cache layers sit on sqlite.  A segment that leaks on an exception path
is not a theoretical concern: the OS keeps ``/dev/shm`` backing alive
until ``unlink()``, so a crashed sweep leaves memory pinned until
reboot.  This module tracks acquire/release pairs along
:mod:`repro.analysis.cfg` paths:

``RES001``
    A ``SharedMemory`` segment with a path (normal *or* exceptional) to
    function exit on which neither ``close()``/``unlink()`` runs nor
    ownership transfers (stored on ``self``, appended to a cleanup
    list, returned).
``RES002``
    A sqlite connection not closed on every path, or a cursor
    (``conn.execute(...)`` / ``conn.cursor()``) never closed before the
    function returns.  Cursors are only checked on the normal path —
    an abandoned cursor is a lazy-GC wart, not a crash-path leak.
``RES003``
    A tempfile (``mkstemp``, ``mkdtemp``, ``NamedTemporaryFile(
    delete=False)``) that can be left behind: no ``os.unlink`` /
    ``shutil.rmtree`` and no ownership transfer on some path.

"Ownership transfer" uses :func:`~repro.analysis.dataflow.bare_names`:
the variable appearing in value position (call argument, container
element, return value, right-hand side of an attribute store) escapes
the function's responsibility; a dereference (``seg.buf``,
``cur.lastrowid``) does not.  Context-managed acquisitions (``with
sqlite3.connect(...) as conn:``) are never tracked — the ``with`` is
the sanctioned form.  Like every simlint pass, unresolvable shapes
produce no finding.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Optional, Union

from .callgraph import CallGraph, FuncNode, _ModuleIdx
from .cfg import CFG, build_cfg
from .concurrency import _dotted, _local_aliases
from .config import LintConfig
from .dataflow import RawFinding, bare_names, track_acquisition

__all__ = ["ResourceAnalysis", "analyze_resources"]

FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Acquisition kinds and the rule each reports under.
_KIND_RULES = {
    "shm": "RES001",
    "conn": "RES002",
    "cursor": "RES002",
    "mkstemp": "RES003",
    "mkdtemp": "RES003",
    "ntf": "RES003",
}

_CURSOR_METHODS = frozenset({"execute", "executemany", "executescript", "cursor"})


@dataclass
class _Acquisition:
    kind: str
    var: str
    stmt: ast.Assign
    call: ast.Call


class ResourceAnalysis:
    """Runs the RES001–003 checks over a finalized call graph."""

    def __init__(self, graph: CallGraph, config: LintConfig) -> None:
        self.graph = graph
        self.config = config
        self.findings: list[RawFinding] = []
        #: (module, class) -> attrs assigned from ``sqlite3.connect``.
        self._conn_attrs: dict[tuple[str, str], set[str]] = {}

    def run(self) -> list[RawFinding]:
        self._collect_conn_attrs()
        for mod, fn in self._iter_functions():
            self._check_function(mod, fn)
        self.findings.sort(key=lambda f: f.sort_key)
        return self.findings

    # -- shared facts ----------------------------------------------------- #

    def _iter_functions(self) -> Iterable[tuple[_ModuleIdx, FuncNode]]:
        for mod in self.graph.iter_module_indexes():
            if self.config.is_test_path(mod.path):
                continue
            for qname in sorted(mod.functions):
                fn = mod.functions[qname]
                if fn.node is not None:
                    yield mod, fn

    def _collect_conn_attrs(self) -> None:
        for mod, fn in self._iter_functions():
            if fn.cls_name is None or fn.node is None:
                continue
            aliases = _local_aliases(mod, fn.node)
            for stmt in ast.walk(fn.node):
                if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
                    continue
                target = stmt.targets[0]
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and isinstance(stmt.value, ast.Call)
                    and _dotted(stmt.value.func, aliases) == "sqlite3.connect"
                ):
                    self._conn_attrs.setdefault(
                        (mod.name, fn.cls_name), set()
                    ).add(target.attr)

    # -- per-function pass ------------------------------------------------- #

    def _check_function(self, mod: _ModuleIdx, fn: FuncNode) -> None:
        assert fn.node is not None
        aliases = _local_aliases(mod, fn.node)
        acquisitions = self._find_acquisitions(mod, fn, aliases)
        if not acquisitions:
            return
        cfg = build_cfg(fn.node)
        for acq in acquisitions:
            self._track(cfg, fn, acq)

    def _find_acquisitions(
        self, mod: _ModuleIdx, fn: FuncNode, aliases: dict[str, str]
    ) -> list[_Acquisition]:
        out: list[_Acquisition] = []
        conn_locals: set[str] = set()
        class_conns = (
            self._conn_attrs.get((mod.name, fn.cls_name), set())
            if fn.cls_name is not None
            else set()
        )
        assert fn.node is not None
        for stmt in ast.walk(fn.node):
            # Only plain assignments: `with <acquire>() as v:` is the
            # sanctioned context-managed form and is never tracked.
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
                continue
            value = stmt.value
            if not isinstance(value, ast.Call):
                continue
            target = stmt.targets[0]
            dotted = _dotted(value.func, aliases)
            if dotted == "multiprocessing.shared_memory.SharedMemory":
                if isinstance(target, ast.Name):
                    out.append(_Acquisition("shm", target.id, stmt, value))
            elif dotted == "sqlite3.connect":
                if isinstance(target, ast.Name):
                    conn_locals.add(target.id)
                    out.append(_Acquisition("conn", target.id, stmt, value))
            elif dotted == "tempfile.mkstemp":
                # `fd, path = mkstemp()`: the *path* is the durable
                # artifact; the fd is consumed by os.fdopen/os.close.
                if (
                    isinstance(target, ast.Tuple)
                    and len(target.elts) == 2
                    and isinstance(target.elts[1], ast.Name)
                ):
                    out.append(
                        _Acquisition("mkstemp", target.elts[1].id, stmt, value)
                    )
            elif dotted == "tempfile.mkdtemp":
                if isinstance(target, ast.Name):
                    out.append(_Acquisition("mkdtemp", target.id, stmt, value))
            elif dotted == "tempfile.NamedTemporaryFile":
                delete_false = any(
                    kw.arg == "delete"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is False
                    for kw in value.keywords
                )
                if delete_false and isinstance(target, ast.Name):
                    out.append(_Acquisition("ntf", target.id, stmt, value))
            elif (
                isinstance(value.func, ast.Attribute)
                and value.func.attr in _CURSOR_METHODS
                and isinstance(target, ast.Name)
            ):
                recv = value.func.value
                is_conn = (
                    isinstance(recv, ast.Name) and recv.id in conn_locals
                ) or (
                    isinstance(recv, ast.Attribute)
                    and isinstance(recv.value, ast.Name)
                    and recv.value.id == "self"
                    and recv.attr in class_conns
                )
                if is_conn:
                    out.append(_Acquisition("cursor", target.id, stmt, value))
        return out

    def _track(self, cfg: CFG, fn: FuncNode, acq: _Acquisition) -> None:
        acquire_idx = self._node_containing(cfg, acq.stmt)
        if acquire_idx is None:
            return

        kills: set[int] = set()
        escapes: set[int] = set()
        for node in cfg.nodes:
            if node.index == acquire_idx or not node.scan:
                continue
            killed = escaped = False
            for root in node.scan:
                if self._releases(root, acq):
                    killed = True
                if self._reassigns(root, acq.var):
                    killed = True
                if not killed and bare_names(root, acq.var):
                    escaped = True
            if killed:
                kills.add(node.index)
            elif escaped:
                escapes.add(node.index)

        report = track_acquisition(
            cfg,
            acquire_idx,
            lambda i: i in kills,
            lambda i: i in escapes,
        )
        leak_exit = report.held_at_exit
        leak_raise = report.held_at_raise
        if acq.kind == "cursor":
            leak_raise = False  # abandoned cursor on a crash path is GC's job
        if not leak_exit and not leak_raise:
            return

        if leak_raise and report.raise_line:
            detail = f"an exception at line {report.raise_line} can exit first"
        elif leak_raise:
            detail = "an exception path exits first"
        else:
            detail = "no release before return"
        self.findings.append(RawFinding(
            rule_id=_KIND_RULES[acq.kind],
            path=fn.path,
            line=acq.stmt.lineno,
            col=acq.stmt.col_offset + 1,
            message=self._message(acq, detail),
        ))

    def _message(self, acq: _Acquisition, detail: str) -> str:
        v = acq.var
        if acq.kind == "shm":
            return (
                f"SharedMemory segment '{v}' may leak: {detail}; close()/"
                f"unlink() it or register it with its owner before fallible "
                f"writes"
            )
        if acq.kind == "conn":
            return (
                f"sqlite connection '{v}' is not closed on every path "
                f"({detail}); use 'with contextlib.closing(...)' or try/finally"
            )
        if acq.kind == "cursor":
            return (
                f"sqlite cursor '{v}' is never closed ({detail}); call "
                f"{v}.close() once the result is read"
            )
        what = {
            "mkstemp": "file (mkstemp)",
            "mkdtemp": "directory (mkdtemp)",
            "ntf": "file (NamedTemporaryFile(delete=False))",
        }[acq.kind]
        return (
            f"temporary {what} '{v}' may be left behind: {detail}; remove it "
            f"or hand it to a cleanup owner first"
        )

    # -- node classification ---------------------------------------------- #

    @staticmethod
    def _node_containing(cfg: CFG, target: ast.AST) -> Optional[int]:
        for node in cfg.nodes:
            for root in node.scan:
                for sub in ast.walk(root):
                    if sub is target:
                        return node.index
        return None

    def _releases(self, root: ast.AST, acq: _Acquisition) -> bool:
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if acq.kind in ("shm", "conn", "cursor"):
                methods = {"close", "unlink"} if acq.kind == "shm" else {"close"}
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in methods
                    and isinstance(func.value, ast.Name)
                    and func.value.id == acq.var
                ):
                    return True
            elif acq.kind in ("mkstemp", "ntf"):
                if self._remover(func, {"os.unlink", "os.remove"}) and any(
                    self._names_var(arg, acq.var) for arg in node.args
                ):
                    return True
            elif acq.kind == "mkdtemp":
                if self._remover(func, {"shutil.rmtree", "os.rmdir"}) and any(
                    self._names_var(arg, acq.var) for arg in node.args
                ):
                    return True
        return False

    @staticmethod
    def _remover(func: ast.AST, dotted_names: set[str]) -> bool:
        # Cleanup helpers are referenced as `os.unlink`/`shutil.rmtree`
        # verbatim throughout this repo; a plain structural match avoids
        # re-resolving aliases inside every candidate node.
        if not (
            isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name)
        ):
            return False
        return f"{func.value.id}.{func.attr}" in dotted_names

    @staticmethod
    def _names_var(arg: ast.AST, var: str) -> bool:
        """Does ``arg`` denote the tracked variable (``v`` or ``v.name``)?"""
        if isinstance(arg, ast.Name):
            return arg.id == var
        if isinstance(arg, ast.Attribute) and isinstance(arg.value, ast.Name):
            return arg.value.id == var
        return False

    @staticmethod
    def _reassigns(root: ast.AST, var: str) -> bool:
        for node in ast.walk(root):
            if isinstance(node, ast.Name) and node.id == var and isinstance(
                node.ctx, ast.Store
            ):
                return True
        return False


def analyze_resources(graph: CallGraph, config: LintConfig) -> list[RawFinding]:
    """Run the RES family over a finalized call graph."""
    return ResourceAnalysis(graph, config).run()
