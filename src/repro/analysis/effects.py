"""Per-function effect and determinism inference.

The call graph's original taint pass answered four yes/no questions
(wall-clock, global RNG, engine-state mutation, escaping raise) with a
one-shot reverse BFS per kind.  Certification needs a richer answer —
*what may this function do, at all?* — so this module computes, per
function, a summary over the effect lattice

    pure < { reads-sim-state, mutates-self, mutates-global,
             io, nondeterministic-source, raises }

where ``pure`` is the empty summary and join is set union.  Summaries
are interprocedural: a function inherits every atom of every resolvable
callee.  The engine runs a fixpoint over the condensation of the call
graph (Tarjan SCCs in reverse topological order; members of a cycle
share one summary), then selects a forward witness step per atom with a
sink-rooted breadth-first layering — the *same* layering the legacy
taint closure used, so the witness chains the cross-module rules print
(and the xmod fixtures pin) are unchanged.

The legacy four kinds are back-filled into ``FuncNode.taint`` from
here; :meth:`CallGraph.finalize` delegates to :func:`infer_effects`, so
DET004/SIM004/API002 now ride on effect summaries instead of their own
ad-hoc closure.

Local effect sources beyond the legacy sinks:

* ``mutates-self`` — writes (or mutator-method calls) on ``self``;
* ``mutates-global`` — ``global`` declarations, mutator calls or
  subscript/attribute writes on module-level bindings, and ``next()``
  on a module-level iterator (which is *also* a nondeterministic
  source: the value observed depends on process-global call history —
  the ``diverging_scheduler`` fixture's trick);
* ``io`` — file/process/socket traffic (``open``/``print``, ``os.*``
  beyond ``os.path``, ``subprocess``, ``socket``, ...), whether called
  dotted (``subprocess.run(...)``) or through a ``from subprocess
  import run`` alias;
* ``reads-sim-state`` — attribute reads off ``self`` or a parameter
  (jobs, clusters, queues): the benign atom every scheduler has.

Unlike the lint rules, these sources honour no inline suppressions:
a certificate is a safety claim about code, not a style gate, and must
not be silenceable from inside the code under scrutiny.

**Strict (fail-closed) mode.**  For linting, unresolvable calls
contribute no effects — the graph never guesses, and a false "may do
IO" on project code would be noise.  That default is unsound as a gate
for *untrusted* code: ``eval``, ``__import__('os').system(...)``, or a
call through a dynamically-chosen receiver would all certify clean.
A graph built with ``CallGraph(config, strict=True)`` therefore
inverts the default for exactly those cases: any call (or decorator
application) the analyzer cannot resolve to a known-pure target, any
reference to a dynamic-execution or introspection builtin (``eval``,
``exec``, ``getattr``, ``__import__``, ...), and any non-whitelisted
dunder attribute access contributes the ``unresolved-call`` atom,
which certification treats as unsafe.  The inline (service) path is
the only strict consumer.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

from .callgraph import _MUTATOR_METHODS, CallGraph, FuncNode, Sink

__all__ = [
    "EFFECT_ATOMS",
    "READS_SIM_STATE",
    "MUTATES_SELF",
    "MUTATES_GLOBAL",
    "IO",
    "NONDET",
    "RAISES",
    "UNRESOLVED",
    "EffectSummary",
    "import_time_kinds",
    "infer_effects",
    "effect_witness",
]

READS_SIM_STATE = "reads-sim-state"
MUTATES_SELF = "mutates-self"
MUTATES_GLOBAL = "mutates-global"
IO = "io"
NONDET = "nondeterministic-source"
RAISES = "raises"
UNRESOLVED = "unresolved-call"

#: The lattice atoms, in report order ("pure" is their absence).
#: ``unresolved-call`` is emitted by strict graphs only.
EFFECT_ATOMS: tuple[str, ...] = (
    READS_SIM_STATE, MUTATES_SELF, MUTATES_GLOBAL, IO, NONDET, RAISES,
    UNRESOLVED,
)

#: Every kind the engine propagates: the four legacy taint kinds the
#: cross-module rules consume, plus the new lattice-only sources.
_ALL_KINDS: tuple[str, ...] = (
    "wallclock", "rng", "mutation", "raise",
    READS_SIM_STATE, MUTATES_SELF, MUTATES_GLOBAL, IO, NONDET, UNRESOLVED,
)

#: Raw propagation kinds feeding each lattice atom, in witness-priority
#: order (a wall-clock read is a more recognisable nondeterminism
#: witness than a module-iterator draw).
_ATOM_SOURCES: dict[str, tuple[str, ...]] = {
    READS_SIM_STATE: (READS_SIM_STATE,),
    MUTATES_SELF: (MUTATES_SELF,),
    MUTATES_GLOBAL: (MUTATES_GLOBAL,),
    IO: (IO,),
    NONDET: ("wallclock", "rng", NONDET),
    RAISES: ("raise",),
    UNRESOLVED: (UNRESOLVED,),
}

#: Dotted-call prefixes that are I/O no matter the arguments.
_IO_DOTTED_PREFIXES = (
    "subprocess.", "socket.", "shutil.", "urllib.", "http.client.",
    "sys.stdout", "sys.stderr",
)

#: Builtins whose bare call is I/O (unless shadowed locally).
_IO_BUILTINS = frozenset({"open", "print", "input"})

#: Method names that read/write the filesystem on any receiver.
_IO_METHODS = frozenset({
    "write_text", "read_text", "write_bytes", "read_bytes",
})

#: Builtins that execute or introspect code dynamically.  In strict
#: mode their very *mention* (not just their call) defeats static
#: certification: ``f = getattr`` then ``f(obj, name)()`` would
#: otherwise launder an arbitrary attribute into a call.
_DYNAMIC_BUILTINS = frozenset({
    "eval", "exec", "compile", "__import__", "getattr", "setattr",
    "delattr", "globals", "locals", "vars", "breakpoint",
})

#: Builtins a strict graph accepts as call targets without effects
#: (their results may still be scanned — e.g. a lambda handed to
#: ``min(key=...)`` has its body merged into the enclosing function).
_PURE_BUILTINS = frozenset({
    "abs", "all", "any", "bool", "bytes", "callable", "chr", "complex",
    "dict", "divmod", "enumerate", "filter", "float", "format",
    "frozenset", "hasattr", "hash", "hex", "id", "int", "isinstance",
    "issubclass", "iter", "len", "list", "map", "max", "min", "next",
    "object", "oct", "ord", "pow", "property", "range", "repr",
    "reversed", "round", "set", "slice", "sorted", "staticmethod",
    "classmethod", "str", "sum", "super", "tuple", "type", "zip",
})

#: Names acceptable as bare-call targets because raising/constructing
#: exceptions is covered by the ``raises`` kind, not certification.
_EXCEPTION_NAMES = frozenset({
    "Exception", "BaseException", "StopIteration", "StopAsyncIteration",
    "GeneratorExit", "KeyboardInterrupt", "SystemExit", "Warning",
})

#: Modules whose members a strict graph may call: pure computation
#: only — no clock, no RNG (``random``/``time`` usage is caught by the
#: dedicated sinks instead), no filesystem, no dynamic import.
_PURE_MODULES = frozenset({
    "math", "cmath", "heapq", "bisect", "itertools", "functools",
    "collections", "operator", "statistics", "string", "copy", "enum",
    "abc", "dataclasses", "typing", "decimal", "fractions", "numbers",
})

#: Dunder attributes legitimate scheduler code touches.  Everything
#: else (``__class__``, ``__subclasses__``, ``__globals__``, ...) is
#: the standard introspection escape hatch and is flagged in strict
#: mode.
_DUNDER_OK = frozenset({"__init__", "__name__", "__doc__"})


def _is_exceptionish(name: str) -> bool:
    return name in _EXCEPTION_NAMES or name.endswith("Error")


@dataclass(frozen=True)
class EffectSummary:
    """One function's inferred effects (atoms + witness steps).

    ``atoms`` is the transitive lattice summary.  ``steps`` maps each
    *raw* propagation kind present to a forward step toward its origin:
    ``("sink", Sink)`` for a local source, ``("call", FuncNode)`` for
    a callee that carries it — the structure :func:`effect_witness`
    walks to rebuild the full chain.
    """

    atoms: frozenset[str] = frozenset()
    steps: "dict[str, tuple[str, object]]" = field(default_factory=dict)

    @property
    def pure(self) -> bool:
        return not self.atoms


def _bound_names(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> set[str]:
    """Names the function binds: parameters plus every Store target."""
    args = func.args
    names = {
        a.arg
        for a in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        )
    }
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
    return names


def _root_name(node: ast.AST) -> Optional[str]:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


class _EffectScanner(ast.NodeVisitor):
    """Collect the lattice-only local effect sources of one function.

    Nested functions and lambdas merge into the enclosing function,
    matching the call graph's closure approximation.
    """

    def __init__(
        self,
        bound: set[str],
        params: set[str],
        aliases: dict[str, str],
        module_state: dict[str, int],
        module_callables: set[str],
        out: dict[str, Sink],
        *,
        strict: bool = False,
    ) -> None:
        self.bound = bound
        self.params = params
        self.aliases = aliases
        self.state = module_state
        self.module_callables = module_callables
        self.out = out
        self.strict = strict
        #: Blob-local functions/classes invoked (bare-name calls and
        #: decorator applications) — the import-time scan merges their
        #: inferred summaries into the module-level verdict.
        self.called_locals: set[str] = set()

    @classmethod
    def for_function(
        cls,
        fn: FuncNode,
        aliases: dict[str, str],
        module_state: dict[str, int],
        module_callables: set[str],
        out: dict[str, Sink],
        *,
        strict: bool = False,
    ) -> "_EffectScanner":
        func = fn.node
        assert func is not None
        params = {
            a.arg for a in (*func.args.posonlyargs, *func.args.args,
                            *func.args.kwonlyargs)
        }
        params.discard("self")
        params.discard("cls")
        return cls(
            _bound_names(func), params, aliases, module_state,
            module_callables, out, strict=strict,
        )

    # -- helpers ------------------------------------------------------- #

    def _add(self, atom: str, lineno: int, detail: str) -> None:
        self.out.setdefault(atom, Sink(atom, lineno, detail))

    def _dotted(self, node: ast.AST) -> Optional[str]:
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))

    def _is_module_state(self, name: str) -> bool:
        return name in self.state and name not in self.bound

    def _dotted_call(self, dotted: str, lineno: int) -> None:
        """Effect checks shared by dotted and aliased-bare-name calls."""
        if dotted.startswith("os.") and not dotted.startswith("os.path."):
            self._add(IO, lineno, f"{dotted}()")
        elif dotted.startswith(_IO_DOTTED_PREFIXES):
            self._add(IO, lineno, f"{dotted}()")
        if self.strict and dotted.split(".", 1)[0] not in _PURE_MODULES:
            self._add(
                UNRESOLVED, lineno,
                f"{dotted}() is outside the certifiable-module whitelist",
            )

    # -- visits -------------------------------------------------------- #

    def visit_Global(self, node: ast.Global) -> None:
        self._add(
            MUTATES_GLOBAL, node.lineno, f"global {', '.join(node.names)}"
        )

    def visit_Name(self, node: ast.Name) -> None:
        # Strict mode: referencing a dynamic-execution builtin (even
        # without calling it) defeats certification — it can be bound
        # to a local and invoked later, beyond static resolution.
        if (
            self.strict
            and isinstance(node.ctx, ast.Load)
            and node.id not in self.bound
            and node.id not in self.module_callables
            and node.id not in self.aliases
        ):
            if node.id in _DYNAMIC_BUILTINS:
                self._add(
                    UNRESOLVED, node.lineno,
                    f"{node.id} (dynamic execution/introspection is not "
                    f"certifiable)",
                )
            elif node.id in _IO_BUILTINS:
                self._add(IO, node.lineno, f"reference to {node.id}")
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            root = node.value
            if isinstance(root, ast.Name):
                if root.id == "self":
                    self._add(
                        READS_SIM_STATE, node.lineno, f"self.{node.attr}"
                    )
                elif root.id in self.params:
                    self._add(
                        READS_SIM_STATE, node.lineno, f"{root.id}.{node.attr}"
                    )
        if (
            self.strict
            and node.attr.startswith("__")
            and node.attr.endswith("__")
            and node.attr not in _DUNDER_OK
        ):
            self._add(
                UNRESOLVED, node.lineno,
                f".{node.attr} (dunder introspection is not certifiable)",
            )
        self.generic_visit(node)

    def _classify_bare_call(self, name: str, lineno: int) -> None:
        """Strict fail-closed resolution of a bare-name call target."""
        if name in self.module_callables:
            self.called_locals.add(name)
            return
        if (
            name in self.bound
            or name in _PURE_BUILTINS
            or _is_exceptionish(name)
        ):
            # Locally-bound callables are safe because every way of
            # *binding* something dangerous (dynamic builtins, IO
            # references, non-whitelisted dotted loads) is itself
            # flagged at the binding site.
            return
        if name in _DYNAMIC_BUILTINS or name in _IO_BUILTINS:
            return  # already flagged by visit_Name / the IO check
        self._add(
            UNRESOLVED, lineno, f"call to unresolvable name {name!r}"
        )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # Bare-builtin I/O: open(...), print(...), input(...).
        if (
            isinstance(func, ast.Name)
            and func.id in _IO_BUILTINS
            and func.id not in self.bound
            and func.id not in self.module_callables
            and func.id not in self.aliases
        ):
            self._add(IO, node.lineno, f"{func.id}()")
        # next() on a module-level iterator: mutates process-global
        # state AND observes call history — the hidden-counter trick.
        if (
            isinstance(func, ast.Name)
            and func.id == "next"
            and func.id not in self.bound
            and node.args
            and isinstance(node.args[0], ast.Name)
            and self._is_module_state(node.args[0].id)
        ):
            detail = (
                f"next({node.args[0].id}) consumes the module-level "
                f"iterator {node.args[0].id!r}"
            )
            self._add(MUTATES_GLOBAL, node.lineno, detail)
            self._add(NONDET, node.lineno, detail)
        if isinstance(func, ast.Name):
            dotted = self.aliases.get(func.id)
            if dotted is not None:
                # ``from subprocess import run; run(...)`` — the alias
                # names a library function; apply the dotted checks.
                self._dotted_call(dotted, node.lineno)
            elif self.strict:
                self._classify_bare_call(func.id, node.lineno)
        elif isinstance(func, ast.Attribute):
            # Dotted library I/O (os.*, subprocess.*, sockets, std streams).
            dotted = self._dotted(func)
            if dotted is not None:
                self._dotted_call(dotted, node.lineno)
            if func.attr in _IO_METHODS:
                self._add(IO, node.lineno, f".{func.attr}()")
            # Mutator-method calls: self.x.append(...) vs STATE.update(...).
            if func.attr in _MUTATOR_METHODS:
                root = _root_name(func.value)
                if root == "self":
                    self._add(
                        MUTATES_SELF, node.lineno,
                        f"self...{func.attr}()",
                    )
                elif root is not None and self._is_module_state(root):
                    self._add(
                        MUTATES_GLOBAL, node.lineno,
                        f"{root}.{func.attr}() mutates module state",
                    )
            if self.strict and dotted is None:
                self._classify_method_call(func, node.lineno)
        elif self.strict and not isinstance(func, ast.Lambda):
            # Calling the result of an expression (``f()()``,
            # ``table[k]()``, ...): nothing static to certify.  An
            # immediately-invoked lambda is fine — its body is scanned.
            self._add(
                UNRESOLVED, node.lineno,
                "call through a dynamic expression is not certifiable",
            )
        self.generic_visit(node)

    def _classify_method_call(self, func: ast.Attribute, lineno: int) -> None:
        """Strict fail-closed resolution of an attribute-call receiver."""
        receiver = func.value
        # ``super().__init__(...)`` — base-class delegation is allowed.
        if (
            isinstance(receiver, ast.Call)
            and isinstance(receiver.func, ast.Name)
            and receiver.func.id == "super"
        ):
            return
        root = _root_name(receiver)
        if root is None:
            self._add(
                UNRESOLVED, lineno,
                f".{func.attr}() on a dynamic receiver is not certifiable",
            )
            return
        if (
            root in ("self", "cls")
            or root in self.bound
            or root in self.params
            or self._is_module_state(root)
        ):
            # Method on an engine-provided or module-local object:
            # covered by the mutator/IO/dunder checks above.
            return
        self._add(
            UNRESOLVED, lineno,
            f"{root}.{func.attr}() cannot be resolved statically",
        )

    def _write_target(self, target: ast.AST) -> None:
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return
        root = _root_name(target)
        if root == "self":
            self._add(MUTATES_SELF, target.lineno, ast.unparse(target))
        elif root is not None and self._is_module_state(root):
            self._add(
                MUTATES_GLOBAL, target.lineno,
                f"{ast.unparse(target)} writes module state",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._write_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._write_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._write_target(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._write_target(target)
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.generic_visit(node)


def _local_kinds(graph: CallGraph, fn: FuncNode) -> dict[str, Sink]:
    """Every raw kind ``fn`` sources locally, with its first sink.

    Legacy sinks come straight from the call-graph scanner (already
    sanction-filtered there); the lattice-only sources are scanned here.
    """
    out: dict[str, Sink] = {}
    for sink in fn.sinks:
        out.setdefault(sink.kind, sink)
    if fn.node is None:  # pragma: no cover - every indexed fn keeps its AST
        return out
    mod = graph.module_index(fn.module)
    aliases = dict(mod.aliases) if mod is not None else {}
    state = dict(mod.state) if mod is not None else {}
    callables: set[str] = set()
    if mod is not None:
        callables = set(mod.functions) | set(mod.classes)
    scanner = _EffectScanner.for_function(
        fn, aliases, state, callables, out,
        strict=getattr(graph, "strict", False),
    )
    for stmt in fn.node.body:
        scanner.visit(stmt)
    return out


class _ImportTimeScanner(_EffectScanner):
    """Scan the code a module executes at ``exec`` time, strictly.

    That is everything *outside* function bodies: top-level statements,
    class bodies, decorator applications, default-argument and
    annotation expressions.  Function bodies are skipped — they only
    run when called, and the call graph accounts for them — but their
    decorators/defaults are visited, because ``@evil`` runs at def
    time.
    """

    def _decorator(self, dec: ast.expr) -> None:
        # Applying a decorator *calls* it: classify the application as
        # a call of the decorator expression.  A factory decorator
        # (``@dataclass(frozen=True)``) is classified by its own call —
        # the result of a certifiable factory is accepted as applied.
        if isinstance(dec, ast.Call):
            self.visit_Call(dec)
            return
        call = ast.copy_location(
            ast.Call(func=dec, args=[], keywords=[]), dec
        )
        self.visit_Call(call)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        for dec in node.decorator_list:
            self._decorator(dec)
        args = node.args
        for default in (*args.defaults, *args.kw_defaults):
            if default is not None:
                self.visit(default)
        # Signature annotations evaluate at def time (the inline module
        # is exec'd without ``from __future__ import annotations``).
        all_args = (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        )
        for arg in all_args:
            if arg.annotation is not None:
                self.visit(arg.annotation)
        if node.returns is not None:
            self.visit(node.returns)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        for dec in node.decorator_list:
            self._decorator(dec)
        for keyword in node.keywords:
            self._add(
                UNRESOLVED, node.lineno,
                f"class keyword {keyword.arg or '**'}=... (metaclass "
                f"machinery) is not certifiable",
            )
        for base in node.bases:
            self.visit(base)
        for stmt in node.body:
            self.visit(stmt)


def import_time_kinds(
    tree: ast.Module,
    *,
    aliases: dict[str, str],
    state: dict[str, int],
    callables: set[str],
) -> tuple[dict[str, Sink], set[str]]:
    """Strict effect scan of a module's import-time code.

    Returns ``(kinds, called_locals)``: the local sinks the module
    body can trigger the moment it is exec'd, plus the names of
    blob-local functions/classes it invokes at import time (whose
    inferred summaries the caller must fold in).  Module-level writes
    to the module's *own* names are not flagged — populating fresh
    module state at import is how constants are built.
    """
    out: dict[str, Sink] = {}
    scanner = _ImportTimeScanner(
        set(state), set(), dict(aliases), dict(state), set(callables), out,
        strict=True,
    )
    for stmt in tree.body:
        scanner.visit(stmt)
    return out, scanner.called_locals


def _tarjan_sccs(nodes: list[FuncNode]) -> Iterator[list[FuncNode]]:
    """Tarjan's SCCs, iteratively, emitted callees-first.

    Tarjan pops a component only once every component reachable from it
    has been popped, so consuming the emission order gives the reverse
    topological order the fixpoint needs.
    """
    counter = 0
    number: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[FuncNode] = []
    for root in nodes:
        if id(root) in number:
            continue
        number[id(root)] = low[id(root)] = counter
        counter += 1
        stack.append(root)
        on_stack.add(id(root))
        work: list[tuple[FuncNode, Iterator[FuncNode]]] = [
            (root, iter(root.callees))
        ]
        while work:
            fn, callees = work[-1]
            advanced = False
            for callee in callees:
                cid = id(callee)
                if cid not in number:
                    number[cid] = low[cid] = counter
                    counter += 1
                    stack.append(callee)
                    on_stack.add(cid)
                    work.append((callee, iter(callee.callees)))
                    advanced = True
                    break
                if cid in on_stack:
                    low[id(fn)] = min(low[id(fn)], number[cid])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[id(parent)] = min(low[id(parent)], low[id(fn)])
            if low[id(fn)] == number[id(fn)]:
                scc: list[FuncNode] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(id(member))
                    scc.append(member)
                    if member is fn:
                        break
                yield scc


def _project_atoms(kinds: set[str]) -> frozenset[str]:
    """Raw propagation kinds -> lattice atoms.

    The legacy ``mutation`` kind (engine-owned job state) deliberately
    stays out of the lattice: its scope is the SIM004 contract check,
    which certification applies to the ``choose_next_*`` methods via
    the taint it still carries.
    """
    atoms: set[str] = set()
    for atom, sources in _ATOM_SOURCES.items():
        if any(kind in kinds for kind in sources):
            atoms.add(atom)
    return frozenset(atoms)


def infer_effects(graph: CallGraph) -> None:
    """Annotate every function with its effect summary and legacy taint.

    Called by :meth:`CallGraph.finalize` once call edges exist.  Two
    passes:

    1. **Summaries** — fixpoint over the SCC condensation: an SCC's
       kind set is the union of its members' local kinds and of every
       callee outside the component (whose set is already final).
    2. **Witness steps** — per kind, a breadth-first layering rooted at
       the local sinks, walking caller-ward; each function keeps one
       forward step, so chains are shortest and deterministic (the
       exact selection the legacy taint closure made).
    """
    nodes = list(graph.iter_functions())
    local: dict[int, dict[str, Sink]] = {
        id(fn): _local_kinds(graph, fn) for fn in nodes
    }

    # Pass 1: summary fixpoint over the condensation.
    kinds_of: dict[int, set[str]] = {}
    scc_of: dict[int, int] = {}
    sccs = list(_tarjan_sccs(nodes))
    for scc_index, scc in enumerate(sccs):
        for fn in scc:
            scc_of[id(fn)] = scc_index
    for scc_index, scc in enumerate(sccs):
        kinds: set[str] = set()
        for fn in scc:
            kinds.update(local[id(fn)])
            for callee in fn.callees:
                if scc_of.get(id(callee)) != scc_index:
                    kinds.update(kinds_of.get(id(callee), ()))
        for fn in scc:
            kinds_of[id(fn)] = kinds

    # Pass 2: witness-step selection (sink-rooted BFS per kind).
    callers: dict[int, list[FuncNode]] = {}
    for fn in nodes:
        for callee in fn.callees:
            callers.setdefault(id(callee), []).append(fn)
    steps: dict[int, dict[str, tuple[str, object]]] = {
        id(fn): {} for fn in nodes
    }
    for kind in _ALL_KINDS:
        frontier: list[FuncNode] = []
        for fn in nodes:
            sink = local[id(fn)].get(kind)
            if sink is not None:
                steps[id(fn)][kind] = ("sink", sink)
                frontier.append(fn)
        while frontier:
            nxt: list[FuncNode] = []
            for fn in frontier:
                for caller in callers.get(id(fn), ()):
                    if kind not in steps[id(caller)]:
                        steps[id(caller)][kind] = ("call", fn)
                        nxt.append(caller)
            frontier = nxt

    # Publish: lattice summary + the legacy taint the rules consume.
    for fn in nodes:
        fn_steps = steps[id(fn)]
        assert set(fn_steps) == kinds_of[id(fn)], (
            f"effect fixpoint / witness layering disagree for {fn.display}"
        )
        fn.effects = EffectSummary(
            atoms=_project_atoms(kinds_of[id(fn)]), steps=fn_steps
        )
        for kind in ("wallclock", "rng", "mutation", "raise"):
            step = fn_steps.get(kind)
            if step is not None:
                fn.taint[kind] = step


def effect_witness(
    fn: FuncNode, atom: str
) -> Optional[tuple[list[str], Sink]]:
    """Call chain from ``fn`` to the origin of ``atom``, or None.

    Returns ``(chain, sink)`` with ``chain`` the display names from
    ``fn`` down to (and including) the function holding the local
    source — the shape :meth:`CallGraph.witness` returns, extended to
    the whole lattice.
    """
    summary = fn.effects
    if summary is None or atom not in summary.atoms:
        return None
    for kind in _ATOM_SOURCES.get(atom, ()):
        step = summary.steps.get(kind)
        if step is None:
            continue
        chain = [fn.display]
        node = fn
        # The BFS layering makes chains shortest, but generated code
        # can still legitimately be deep; the guard only breaks cycles
        # a corrupted steps table could introduce.  On exhaustion (or
        # any malformed step) fall through to the next kind instead of
        # asserting — a witness is best-effort, a crash is not.
        guard = 0
        broken = False
        while step[0] == "call":
            if guard >= 10_000:
                broken = True
                break
            callee = step[1]
            if not isinstance(callee, FuncNode):
                broken = True
                break
            node = callee
            chain.append(node.display)
            next_summary = node.effects
            if next_summary is None:  # pragma: no cover - closure invariant
                broken = True
                break
            step = next_summary.steps.get(kind)
            if step is None:  # pragma: no cover - closure invariant
                broken = True
                break
            guard += 1
        if broken:
            continue
        sink = step[1]
        if not isinstance(sink, Sink):  # pragma: no cover - closure invariant
            continue
        return chain, sink
    return None
