"""Per-function effect and determinism inference.

The call graph's original taint pass answered four yes/no questions
(wall-clock, global RNG, engine-state mutation, escaping raise) with a
one-shot reverse BFS per kind.  Certification needs a richer answer —
*what may this function do, at all?* — so this module computes, per
function, a summary over the effect lattice

    pure < { reads-sim-state, mutates-self, mutates-global,
             io, nondeterministic-source, raises }

where ``pure`` is the empty summary and join is set union.  Summaries
are interprocedural: a function inherits every atom of every resolvable
callee.  The engine runs a fixpoint over the condensation of the call
graph (Tarjan SCCs in reverse topological order; members of a cycle
share one summary), then selects a forward witness step per atom with a
sink-rooted breadth-first layering — the *same* layering the legacy
taint closure used, so the witness chains the cross-module rules print
(and the xmod fixtures pin) are unchanged.

The legacy four kinds are back-filled into ``FuncNode.taint`` from
here; :meth:`CallGraph.finalize` delegates to :func:`infer_effects`, so
DET004/SIM004/API002 now ride on effect summaries instead of their own
ad-hoc closure.

Local effect sources beyond the legacy sinks:

* ``mutates-self`` — writes (or mutator-method calls) on ``self``;
* ``mutates-global`` — ``global`` declarations, mutator calls or
  subscript/attribute writes on module-level bindings, and ``next()``
  on a module-level iterator (which is *also* a nondeterministic
  source: the value observed depends on process-global call history —
  the ``diverging_scheduler`` fixture's trick);
* ``io`` — file/process/socket traffic (``open``/``print``, ``os.*``
  beyond ``os.path``, ``subprocess``, ``socket``, ...);
* ``reads-sim-state`` — attribute reads off ``self`` or a parameter
  (jobs, clusters, queues): the benign atom every scheduler has.

Unlike the lint rules, these sources honour no inline suppressions:
a certificate is a safety claim about code, not a style gate, and must
not be silenceable from inside the code under scrutiny.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

from .callgraph import _MUTATOR_METHODS, CallGraph, FuncNode, Sink

__all__ = [
    "EFFECT_ATOMS",
    "READS_SIM_STATE",
    "MUTATES_SELF",
    "MUTATES_GLOBAL",
    "IO",
    "NONDET",
    "RAISES",
    "EffectSummary",
    "infer_effects",
    "effect_witness",
]

READS_SIM_STATE = "reads-sim-state"
MUTATES_SELF = "mutates-self"
MUTATES_GLOBAL = "mutates-global"
IO = "io"
NONDET = "nondeterministic-source"
RAISES = "raises"

#: The lattice atoms, in report order ("pure" is their absence).
EFFECT_ATOMS: tuple[str, ...] = (
    READS_SIM_STATE, MUTATES_SELF, MUTATES_GLOBAL, IO, NONDET, RAISES,
)

#: Every kind the engine propagates: the four legacy taint kinds the
#: cross-module rules consume, plus the new lattice-only sources.
_ALL_KINDS: tuple[str, ...] = (
    "wallclock", "rng", "mutation", "raise",
    READS_SIM_STATE, MUTATES_SELF, MUTATES_GLOBAL, IO, NONDET,
)

#: Raw propagation kinds feeding each lattice atom, in witness-priority
#: order (a wall-clock read is a more recognisable nondeterminism
#: witness than a module-iterator draw).
_ATOM_SOURCES: dict[str, tuple[str, ...]] = {
    READS_SIM_STATE: (READS_SIM_STATE,),
    MUTATES_SELF: (MUTATES_SELF,),
    MUTATES_GLOBAL: (MUTATES_GLOBAL,),
    IO: (IO,),
    NONDET: ("wallclock", "rng", NONDET),
    RAISES: ("raise",),
}

#: Dotted-call prefixes that are I/O no matter the arguments.
_IO_DOTTED_PREFIXES = (
    "subprocess.", "socket.", "shutil.", "urllib.", "http.client.",
    "sys.stdout", "sys.stderr",
)

#: Builtins whose bare call is I/O (unless shadowed locally).
_IO_BUILTINS = frozenset({"open", "print", "input"})

#: Method names that read/write the filesystem on any receiver.
_IO_METHODS = frozenset({
    "write_text", "read_text", "write_bytes", "read_bytes",
})


@dataclass(frozen=True)
class EffectSummary:
    """One function's inferred effects (atoms + witness steps).

    ``atoms`` is the transitive lattice summary.  ``steps`` maps each
    *raw* propagation kind present to a forward step toward its origin:
    ``("sink", Sink)`` for a local source, ``("call", FuncNode)`` for
    a callee that carries it — the structure :func:`effect_witness`
    walks to rebuild the full chain.
    """

    atoms: frozenset[str] = frozenset()
    steps: "dict[str, tuple[str, object]]" = field(default_factory=dict)

    @property
    def pure(self) -> bool:
        return not self.atoms


def _bound_names(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> set[str]:
    """Names the function binds: parameters plus every Store target."""
    args = func.args
    names = {
        a.arg
        for a in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        )
    }
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
    return names


def _root_name(node: ast.AST) -> Optional[str]:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


class _EffectScanner(ast.NodeVisitor):
    """Collect the lattice-only local effect sources of one function.

    Nested functions and lambdas merge into the enclosing function,
    matching the call graph's closure approximation.
    """

    def __init__(
        self,
        fn: FuncNode,
        aliases: dict[str, str],
        module_state: dict[str, int],
        module_callables: set[str],
        out: dict[str, Sink],
    ) -> None:
        self.fn = fn
        self.aliases = aliases
        self.state = module_state
        self.module_callables = module_callables
        self.out = out
        func = fn.node
        assert func is not None
        self.bound = _bound_names(func)
        params = {
            a.arg for a in (*func.args.posonlyargs, *func.args.args,
                            *func.args.kwonlyargs)
        }
        params.discard("self")
        params.discard("cls")
        self.params = params

    # -- helpers ------------------------------------------------------- #

    def _add(self, atom: str, lineno: int, detail: str) -> None:
        self.out.setdefault(atom, Sink(atom, lineno, detail))

    def _dotted(self, node: ast.AST) -> Optional[str]:
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))

    def _is_module_state(self, name: str) -> bool:
        return name in self.state and name not in self.bound

    # -- visits -------------------------------------------------------- #

    def visit_Global(self, node: ast.Global) -> None:
        self._add(
            MUTATES_GLOBAL, node.lineno, f"global {', '.join(node.names)}"
        )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            root = node.value
            if isinstance(root, ast.Name):
                if root.id == "self":
                    self._add(
                        READS_SIM_STATE, node.lineno, f"self.{node.attr}"
                    )
                elif root.id in self.params:
                    self._add(
                        READS_SIM_STATE, node.lineno, f"{root.id}.{node.attr}"
                    )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # Bare-builtin I/O: open(...), print(...), input(...).
        if (
            isinstance(func, ast.Name)
            and func.id in _IO_BUILTINS
            and func.id not in self.bound
            and func.id not in self.module_callables
            and func.id not in self.aliases
        ):
            self._add(IO, node.lineno, f"{func.id}()")
        # next() on a module-level iterator: mutates process-global
        # state AND observes call history — the hidden-counter trick.
        if (
            isinstance(func, ast.Name)
            and func.id == "next"
            and func.id not in self.bound
            and node.args
            and isinstance(node.args[0], ast.Name)
            and self._is_module_state(node.args[0].id)
        ):
            detail = (
                f"next({node.args[0].id}) consumes the module-level "
                f"iterator {node.args[0].id!r}"
            )
            self._add(MUTATES_GLOBAL, node.lineno, detail)
            self._add(NONDET, node.lineno, detail)
        if isinstance(func, ast.Attribute):
            # Dotted library I/O (os.*, subprocess.*, sockets, std streams).
            dotted = self._dotted(func)
            if dotted is not None:
                if dotted.startswith("os.") and not dotted.startswith("os.path."):
                    self._add(IO, node.lineno, f"{dotted}()")
                elif dotted.startswith(_IO_DOTTED_PREFIXES):
                    self._add(IO, node.lineno, f"{dotted}()")
            if func.attr in _IO_METHODS:
                self._add(IO, node.lineno, f".{func.attr}()")
            # Mutator-method calls: self.x.append(...) vs STATE.update(...).
            if func.attr in _MUTATOR_METHODS:
                root = _root_name(func.value)
                if root == "self":
                    self._add(
                        MUTATES_SELF, node.lineno,
                        f"self...{func.attr}()",
                    )
                elif root is not None and self._is_module_state(root):
                    self._add(
                        MUTATES_GLOBAL, node.lineno,
                        f"{root}.{func.attr}() mutates module state",
                    )
        self.generic_visit(node)

    def _write_target(self, target: ast.AST) -> None:
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return
        root = _root_name(target)
        if root == "self":
            self._add(MUTATES_SELF, target.lineno, ast.unparse(target))
        elif root is not None and self._is_module_state(root):
            self._add(
                MUTATES_GLOBAL, target.lineno,
                f"{ast.unparse(target)} writes module state",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._write_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._write_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._write_target(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._write_target(target)
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.generic_visit(node)


def _local_kinds(graph: CallGraph, fn: FuncNode) -> dict[str, Sink]:
    """Every raw kind ``fn`` sources locally, with its first sink.

    Legacy sinks come straight from the call-graph scanner (already
    sanction-filtered there); the lattice-only sources are scanned here.
    """
    out: dict[str, Sink] = {}
    for sink in fn.sinks:
        out.setdefault(sink.kind, sink)
    if fn.node is None:  # pragma: no cover - every indexed fn keeps its AST
        return out
    mod = graph.module_index(fn.module)
    aliases = dict(mod.aliases) if mod is not None else {}
    state = dict(mod.state) if mod is not None else {}
    callables: set[str] = set()
    if mod is not None:
        callables = set(mod.functions) | set(mod.classes)
    scanner = _EffectScanner(fn, aliases, state, callables, out)
    for stmt in fn.node.body:
        scanner.visit(stmt)
    return out


def _tarjan_sccs(nodes: list[FuncNode]) -> Iterator[list[FuncNode]]:
    """Tarjan's SCCs, iteratively, emitted callees-first.

    Tarjan pops a component only once every component reachable from it
    has been popped, so consuming the emission order gives the reverse
    topological order the fixpoint needs.
    """
    counter = 0
    number: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[FuncNode] = []
    for root in nodes:
        if id(root) in number:
            continue
        number[id(root)] = low[id(root)] = counter
        counter += 1
        stack.append(root)
        on_stack.add(id(root))
        work: list[tuple[FuncNode, Iterator[FuncNode]]] = [
            (root, iter(root.callees))
        ]
        while work:
            fn, callees = work[-1]
            advanced = False
            for callee in callees:
                cid = id(callee)
                if cid not in number:
                    number[cid] = low[cid] = counter
                    counter += 1
                    stack.append(callee)
                    on_stack.add(cid)
                    work.append((callee, iter(callee.callees)))
                    advanced = True
                    break
                if cid in on_stack:
                    low[id(fn)] = min(low[id(fn)], number[cid])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[id(parent)] = min(low[id(parent)], low[id(fn)])
            if low[id(fn)] == number[id(fn)]:
                scc: list[FuncNode] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(id(member))
                    scc.append(member)
                    if member is fn:
                        break
                yield scc


def _project_atoms(kinds: set[str]) -> frozenset[str]:
    """Raw propagation kinds -> lattice atoms.

    The legacy ``mutation`` kind (engine-owned job state) deliberately
    stays out of the lattice: its scope is the SIM004 contract check,
    which certification applies to the ``choose_next_*`` methods via
    the taint it still carries.
    """
    atoms: set[str] = set()
    for atom, sources in _ATOM_SOURCES.items():
        if any(kind in kinds for kind in sources):
            atoms.add(atom)
    return frozenset(atoms)


def infer_effects(graph: CallGraph) -> None:
    """Annotate every function with its effect summary and legacy taint.

    Called by :meth:`CallGraph.finalize` once call edges exist.  Two
    passes:

    1. **Summaries** — fixpoint over the SCC condensation: an SCC's
       kind set is the union of its members' local kinds and of every
       callee outside the component (whose set is already final).
    2. **Witness steps** — per kind, a breadth-first layering rooted at
       the local sinks, walking caller-ward; each function keeps one
       forward step, so chains are shortest and deterministic (the
       exact selection the legacy taint closure made).
    """
    nodes = list(graph.iter_functions())
    local: dict[int, dict[str, Sink]] = {
        id(fn): _local_kinds(graph, fn) for fn in nodes
    }

    # Pass 1: summary fixpoint over the condensation.
    kinds_of: dict[int, set[str]] = {}
    scc_of: dict[int, int] = {}
    sccs = list(_tarjan_sccs(nodes))
    for scc_index, scc in enumerate(sccs):
        for fn in scc:
            scc_of[id(fn)] = scc_index
    for scc_index, scc in enumerate(sccs):
        kinds: set[str] = set()
        for fn in scc:
            kinds.update(local[id(fn)])
            for callee in fn.callees:
                if scc_of.get(id(callee)) != scc_index:
                    kinds.update(kinds_of.get(id(callee), ()))
        for fn in scc:
            kinds_of[id(fn)] = kinds

    # Pass 2: witness-step selection (sink-rooted BFS per kind).
    callers: dict[int, list[FuncNode]] = {}
    for fn in nodes:
        for callee in fn.callees:
            callers.setdefault(id(callee), []).append(fn)
    steps: dict[int, dict[str, tuple[str, object]]] = {
        id(fn): {} for fn in nodes
    }
    for kind in _ALL_KINDS:
        frontier: list[FuncNode] = []
        for fn in nodes:
            sink = local[id(fn)].get(kind)
            if sink is not None:
                steps[id(fn)][kind] = ("sink", sink)
                frontier.append(fn)
        while frontier:
            nxt: list[FuncNode] = []
            for fn in frontier:
                for caller in callers.get(id(fn), ()):
                    if kind not in steps[id(caller)]:
                        steps[id(caller)][kind] = ("call", fn)
                        nxt.append(caller)
            frontier = nxt

    # Publish: lattice summary + the legacy taint the rules consume.
    for fn in nodes:
        fn_steps = steps[id(fn)]
        assert set(fn_steps) == kinds_of[id(fn)], (
            f"effect fixpoint / witness layering disagree for {fn.display}"
        )
        fn.effects = EffectSummary(
            atoms=_project_atoms(kinds_of[id(fn)]), steps=fn_steps
        )
        for kind in ("wallclock", "rng", "mutation", "raise"):
            step = fn_steps.get(kind)
            if step is not None:
                fn.taint[kind] = step


def effect_witness(
    fn: FuncNode, atom: str
) -> Optional[tuple[list[str], Sink]]:
    """Call chain from ``fn`` to the origin of ``atom``, or None.

    Returns ``(chain, sink)`` with ``chain`` the display names from
    ``fn`` down to (and including) the function holding the local
    source — the shape :meth:`CallGraph.witness` returns, extended to
    the whole lattice.
    """
    summary = fn.effects
    if summary is None or atom not in summary.atoms:
        return None
    for kind in _ATOM_SOURCES.get(atom, ()):
        step = summary.steps.get(kind)
        if step is None:
            continue
        chain = [fn.display]
        node = fn
        guard = 0
        while step[0] == "call" and guard < 64:
            callee = step[1]
            assert isinstance(callee, FuncNode)
            node = callee
            chain.append(node.display)
            next_summary = node.effects
            if next_summary is None:  # pragma: no cover - closure invariant
                return None
            step = next_summary.steps.get(kind)
            if step is None:  # pragma: no cover - closure invariant
                return None
            guard += 1
        sink = step[1]
        assert isinstance(sink, Sink)
        return chain, sink
    return None
