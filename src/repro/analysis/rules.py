"""The simlint rule set.

Each rule is a small :class:`~repro.analysis.visitor.LintRule` subclass
registered on :data:`~repro.analysis.registry.default_registry` with its
id, severity, and documentation.  See ``docs/linting.md`` for the
bad/good example of every rule.

Rule ids are grouped by invariant family:

* **DET** — determinism: the same trace and seed must produce the same
  schedule, bit for bit (the paper's replay guarantee).
* **SIM** — simulation semantics: simulated time is exact arithmetic on
  profile durations; scheduler plugins see the engine through the
  narrow ``choose_next_*`` contract (Section III-B).
* **API** — engine event protocol: time only moves forward.
* **CONC** — concurrency: shared state reachable from multiple thread
  entry points stays behind its lock, lock order is globally
  consistent, and cross-thread sqlite use goes through the sanctioned
  wrapper idiom.
* **RES** — resource safety: shared-memory segments, sqlite handles,
  and tempfiles are released (or ownership-transferred) on every CFG
  path, including exceptional ones.

The CONC/RES families are *whole-program* analyses computed by
:mod:`repro.analysis.concurrency` and :mod:`repro.analysis.resources`
over the finalized call graph; the rule classes here are thin shims
that replay the precomputed findings through the normal per-file
reporting machinery so ``--select``/``--disable`` and inline
``# simlint: disable=`` apply uniformly.
"""

from __future__ import annotations

import ast
from typing import Optional

from .callgraph import FuncNode, TaintKind
from .findings import Severity
from .registry import META_RULE_ID, RuleInfo, default_registry
from .visitor import CHOOSE_METHODS, WALLCLOCK_CALLS, FileContext, LintRule

__all__ = ["default_registry"]

# --------------------------------------------------------------------- #
# LINT000 — meta (docs only; emitted by FileContext, no rule class)
# --------------------------------------------------------------------- #

default_registry.register_meta(
    RuleInfo(
        rule_id=META_RULE_ID,
        title="simlint meta problem (unparsable file or bad directive)",
        severity=Severity.ERROR,
        rationale=(
            "A file that cannot be parsed cannot be checked, and a "
            "suppression naming an unknown rule id silently disables "
            "nothing — both must surface instead of hiding violations."
        ),
        hint="fix the syntax error, or correct the rule id in the "
        "'# simlint: disable=...' directive",
    )
)


# --------------------------------------------------------------------- #
# DET001 — wall-clock reads inside simulation logic
# --------------------------------------------------------------------- #


@default_registry.register(
    RuleInfo(
        rule_id="DET001",
        title="wall-clock read inside simulation logic",
        severity=Severity.ERROR,
        rationale=(
            "Simulated time is derived exclusively from trace profiles "
            "and the event heap; reading the host clock (time.time, "
            "perf_counter, datetime.now) inside engine/scheduler/trace "
            "code makes replays machine- and load-dependent, silently "
            "breaking the paper's bit-reproducibility guarantee."
        ),
        hint="use the engine's simulated clock (self._now / the event "
        "timestamp); wall-clock benchmarking belongs in whitelisted "
        "timing code or behind '# simlint: disable=DET001'",
    )
)
class WallClockRule(LintRule):
    def check_Call(self, node: ast.Call, ctx: FileContext) -> None:
        name = ctx.resolve_dotted(node.func)
        if name in WALLCLOCK_CALLS and ctx.in_sim_scope():
            ctx.report(self.info, node, message=f"wall-clock call {name}() in simulation logic")


# --------------------------------------------------------------------- #
# DET002 — unseeded randomness
# --------------------------------------------------------------------- #

def _np_random_member(name: str) -> Optional[str]:
    for prefix in ("numpy.random.",):
        if name.startswith(prefix):
            return name[len(prefix):]
    return None


@default_registry.register(
    RuleInfo(
        rule_id="DET002",
        title="unseeded or global-state randomness",
        severity=Severity.ERROR,
        rationale=(
            "All stochastic inputs (synthetic traces, failure injection, "
            "placement) must flow from an explicitly seeded "
            "numpy.random.Generator so every experiment is replayable "
            "from its seed.  The stdlib 'random' module and numpy's "
            "legacy module-level functions draw from hidden global "
            "state; default_rng() without a seed differs per process."
        ),
        hint="thread an explicitly seeded np.random.default_rng(seed) "
        "(or random.Random(seed)) through the call instead",
    )
)
class UnseededRandomRule(LintRule):
    def check_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if ctx.is_test_path:
            return
        name = ctx.resolve_dotted(node.func)
        if name is None:
            return
        if name == "random.Random" or name == "numpy.random.Generator":
            if node.args or node.keywords:
                return  # explicitly seeded/constructed
            ctx.report(self.info, node, message=f"{name}() constructed without a seed")
            return
        if name.startswith("random."):
            ctx.report(
                self.info,
                node,
                message=f"{name}() draws from the stdlib global RNG",
            )
            return
        member = _np_random_member(name)
        if member is None:
            return
        if member == "default_rng":
            seeded = bool(node.keywords) or (
                bool(node.args)
                and not (
                    isinstance(node.args[0], ast.Constant)
                    and node.args[0].value is None
                )
            )
            if not seeded:
                ctx.report(
                    self.info, node, message="np.random.default_rng() without a seed"
                )
        elif member[:1].islower():
            # Legacy module-level functions (np.random.rand, .seed, ...)
            # share one hidden global RandomState.  Capitalised members
            # (Generator, SeedSequence, ...) are classes, not draws.
            ctx.report(
                self.info,
                node,
                message=f"legacy global-state call np.random.{member}()",
            )


# --------------------------------------------------------------------- #
# DET003 — unordered-collection iteration in decision paths
# --------------------------------------------------------------------- #

_DICT_VIEWS = frozenset({"keys", "values", "items"})
_CONSUMERS = frozenset({"min", "max", "next", "list", "tuple", "any", "all", "sum"})


def _unordered_reason(node: ast.AST) -> Optional[str]:
    """Why iterating ``node`` has no stable order, or None if it does."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set"
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in {"set", "frozenset"}:
            return f"a {node.func.id}()"
        if isinstance(node.func, ast.Attribute) and node.func.attr in _DICT_VIEWS:
            return f".{node.func.attr}() of a mapping"
    return None


@default_registry.register(
    RuleInfo(
        rule_id="DET003",
        title="unordered iteration feeding a scheduling decision",
        severity=Severity.WARNING,
        rationale=(
            "Set iteration order is hash-randomized across processes, and "
            "dict views follow insertion order that rarely matches any "
            "documented tie-break.  Feeding either into a choose_next_*/"
            "priority/allocation decision makes two replays of the same "
            "trace disagree on which job wins a slot."
        ),
        hint="wrap the iterable in sorted(...) with an explicit, total "
        "tie-breaking key (e.g. (submit_time, job_id))",
    )
)
class UnorderedIterationRule(LintRule):
    def _check_iterable(self, it: ast.AST, ctx: FileContext, where: str) -> None:
        if not ctx.in_decision_scope():
            return
        reason = _unordered_reason(it)
        if reason is not None:
            ctx.report(
                self.info,
                it,
                message=f"iteration over {reason} in {where} has no deterministic order",
            )

    def check_For(self, node: ast.For, ctx: FileContext) -> None:
        self._check_iterable(node.iter, ctx, "a for loop")

    def check_comprehension(self, node: ast.comprehension, ctx: FileContext) -> None:
        self._check_iterable(node.iter, ctx, "a comprehension")

    def check_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _CONSUMERS
            and node.args
        ):
            self._check_iterable(node.args[0], ctx, f"{node.func.id}(...)")


# --------------------------------------------------------------------- #
# SIM001 — float equality on simulation-time expressions
# --------------------------------------------------------------------- #

_TIME_NAMES = frozenset({
    "now", "_now", "deadline", "makespan", "map_stage_end", "shuffle_end",
    "sim_time", "clock", "timestamp",
})
_TIME_SUFFIXES = ("_time", "_end", "_start", "_deadline")


def _terminal_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_time_expr(node: ast.AST) -> bool:
    name = _terminal_name(node)
    if name is None:
        return False
    return name in _TIME_NAMES or name.endswith(_TIME_SUFFIXES)


@default_registry.register(
    RuleInfo(
        rule_id="SIM001",
        title="float equality comparison on simulation time",
        severity=Severity.WARNING,
        rationale=(
            "Simulation timestamps are sums of float durations; two "
            "different orderings of the same arithmetic differ in the "
            "last ulp, so ==/!= on times encodes a coincidence, not a "
            "simulation invariant (e.g. 'reduce dispatched exactly at "
            "map_stage_end')."
        ),
        hint="compare with <=/>= against the event ordering, or use "
        "math.isclose with an explicit tolerance",
    )
)
class FloatTimeEqualityRule(LintRule):
    def check_Compare(self, node: ast.Compare, ctx: FileContext) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for a, b in ((left, right), (right, left)):
                if _is_time_expr(a):
                    # Comparing against None / a string is identity-ish
                    # dispatch, not time arithmetic.
                    if isinstance(b, ast.Constant) and (
                        b.value is None or isinstance(b.value, str)
                    ):
                        break
                    ctx.report(
                        self.info,
                        node,
                        message=(
                            f"{'==' if isinstance(op, ast.Eq) else '!='} on "
                            f"simulation-time expression {ast.unparse(a)}"
                        ),
                    )
                    break


# --------------------------------------------------------------------- #
# SIM002 — choose_next_* mutating engine-owned state
# --------------------------------------------------------------------- #

_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "pop", "remove", "clear", "add",
    "discard", "update", "setdefault", "popitem", "sort", "reverse",
})


def _attr_root(node: ast.AST) -> Optional[ast.Name]:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node if isinstance(node, ast.Name) else None


@default_registry.register(
    RuleInfo(
        rule_id="SIM002",
        title="choose_next_* mutates engine-owned job state",
        severity=Severity.ERROR,
        rationale=(
            "The paper's scheduler contract is a *narrow read-only query*: "
            "CHOOSENEXTMAPTASK/CHOOSENEXTREDUCETASK return which job runs "
            "next.  Job and TaskRecord bookkeeping (dispatch counters, "
            "state, records, caps) belongs to the engine; a plugin writing "
            "it from choose_next_* desynchronises the engine's slot "
            "accounting and the fast path's heap invariants."
        ),
        hint="keep plugin state on self; set per-job knobs like "
        "wanted_*_slots from the on_job_arrival hook instead",
    )
)
class EngineOwnedMutationRule(LintRule):
    def _flag(self, node: ast.AST, ctx: FileContext, what: str) -> None:
        ctx.report(self.info, node, message=f"choose_next_* {what}")

    def _non_self_attr_target(self, target: ast.AST) -> Optional[str]:
        if not isinstance(target, ast.Attribute):
            return None
        root = _attr_root(target)
        if root is not None and root.id == "self":
            return None
        try:
            return ast.unparse(target)
        except Exception:  # pragma: no cover - unparse is total on exprs
            return target.attr  # type: ignore[union-attr]

    def check_Assign(self, node: ast.Assign, ctx: FileContext) -> None:
        if ctx.in_choose_method() is None:
            return
        for target in node.targets:
            desc = self._non_self_attr_target(target)
            if desc is not None:
                self._flag(node, ctx, f"assigns {desc}")

    def check_AugAssign(self, node: ast.AugAssign, ctx: FileContext) -> None:
        if ctx.in_choose_method() is None:
            return
        desc = self._non_self_attr_target(node.target)
        if desc is not None:
            self._flag(node, ctx, f"mutates {desc} in place")

    def check_Call(self, node: ast.Call, ctx: FileContext) -> None:
        fn = ctx.in_choose_method()
        if fn is None:
            return
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in _MUTATOR_METHODS):
            return
        # Only flag mutations rooted at a job flowing out of the queue
        # parameter — locals (self-owned dicts, scratch lists) are fine.
        root = _attr_root(func.value)
        if root is not None and root.id in fn.jobish_names:
            try:
                desc = ast.unparse(func)
            except Exception:  # pragma: no cover
                desc = func.attr
            self._flag(node, ctx, f"calls mutator {desc}()")


# --------------------------------------------------------------------- #
# SIM003 — static_priority contract mismatch
# --------------------------------------------------------------------- #


@default_registry.register(
    RuleInfo(
        rule_id="SIM003",
        title="static_priority contract mismatch",
        severity=Severity.ERROR,
        rationale=(
            "static_priority=True promises the engine that priority_key "
            "is constant per job and fully determines choose_next_*, so "
            "dispatches are served from a heap and choose_next_* is "
            "NEVER called on the fast path.  A subclass that also "
            "hand-writes choose_next_* (or omits priority_key) has two "
            "sources of truth that will silently drift apart."
        ),
        hint="inherit StaticPriorityScheduler and define only "
        "priority_key; or drop static_priority=True to run on the "
        "dynamic (narrow-interface) path",
    )
)
class StaticPriorityContractRule(LintRule):
    def finish_ClassDef(self, node: ast.ClassDef, ctx: FileContext) -> None:
        cls = ctx.current_class
        if cls is None or cls.node is not node or not cls.is_scheduler:
            return
        if not cls.static_priority:
            return
        for fn in cls.own_choose_defs:
            ctx.report(
                self.info,
                fn,
                message=(
                    f"{node.name} declares static_priority=True but overrides "
                    f"{fn.name}; the fast path serves dispatches from "
                    "priority_key and ignores this override"
                ),
            )
        if cls.declares_static_priority and not (
            cls.has_priority_key or cls.inherits_static_priority
        ):
            ctx.report(
                self.info,
                node,
                message=(
                    f"{node.name} declares static_priority=True but defines no "
                    "priority_key; the fast path has nothing to order jobs by"
                ),
            )


# --------------------------------------------------------------------- #
# API001 — events pushed into the past
# --------------------------------------------------------------------- #

_PUSH_NAMES = frozenset({"_push_event", "push_event", "schedule_event", "schedule_at"})
_NOW_NAMES = frozenset({"now", "_now"})


def _is_now_expr(node: ast.AST) -> bool:
    name = _terminal_name(node)
    return name in _NOW_NAMES


@default_registry.register(
    RuleInfo(
        rule_id="API001",
        title="event pushed with a timestamp in the past",
        severity=Severity.ERROR,
        rationale=(
            "The event heap pops in nondecreasing time order; pushing an "
            "event at now - delta (or a negative absolute time) from a "
            "handler rewinds the simulation clock for that event, "
            "corrupting causality and every downstream metric."
        ),
        hint="schedule at self._now or later (now + delay); if a "
        "correction is needed, recompute state now instead of "
        "back-dating an event",
    )
)
class PastEventRule(LintRule):
    def check_Call(self, node: ast.Call, ctx: FileContext) -> None:
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name not in _PUSH_NAMES or not node.args:
            return
        when = node.args[0]
        if (
            isinstance(when, ast.BinOp)
            and isinstance(when.op, ast.Sub)
            and _is_now_expr(when.left)
        ):
            ctx.report(
                self.info,
                node,
                message=f"{name}() scheduled at {ast.unparse(when)} — before the current time",
            )
        elif (
            isinstance(when, ast.UnaryOp)
            and isinstance(when.op, ast.USub)
            and isinstance(when.operand, ast.Constant)
        ) or (
            isinstance(when, ast.Constant)
            and isinstance(when.value, (int, float))
            and when.value < 0
        ):
            ctx.report(
                self.info,
                node,
                message=f"{name}() scheduled at negative absolute time {ast.unparse(when)}",
            )


# --------------------------------------------------------------------- #
# Cross-module rules (DET004 / SIM004 / API002)
#
# These consume the whole-program call graph built by the runner (see
# repro.analysis.callgraph).  They fire only at calls into *project*
# functions, so they never double-report a violation the per-file rules
# (DET001/DET002/SIM002) already flag at the sink line itself.
# --------------------------------------------------------------------- #


def _project_callees(node: ast.Call, ctx: FileContext) -> "list[FuncNode]":
    """Unique project functions a call site resolves to (graph-backed)."""
    if ctx.callgraph is None:
        return []
    seen: set[int] = set()
    out: list[FuncNode] = []
    for fn in ctx.callgraph.callees_at(node):
        if id(fn) not in seen:
            seen.add(id(fn))
            out.append(fn)
    return out


def _witness_message(ctx: FileContext, fn: "FuncNode", kind: "TaintKind") -> Optional[str]:
    """`chain -> sink` description if ``fn`` is ``kind``-tainted."""
    assert ctx.callgraph is not None
    hit = ctx.callgraph.witness(fn, kind)
    if hit is None:
        return None
    chain, sink = hit
    return f"{' -> '.join(chain)} -> {sink.detail}"


@default_registry.register(
    RuleInfo(
        rule_id="DET004",
        title="simulation logic transitively reaches wall-clock or global RNG",
        severity=Severity.ERROR,
        rationale=(
            "DET001/DET002 check the sink line itself, so a scheduler "
            "that reads the host clock or the global RNG *through a "
            "helper function* — possibly in another module — passes the "
            "per-file rules clean while still making replays machine- "
            "and process-dependent.  The call graph propagates sink "
            "reachability caller-ward, closing the indirection loophole."
        ),
        hint="thread simulated time / a seeded Generator into the helper "
        "instead; sanctioned wall-clock reads live in "
        "repro.core.walltime or timing-whitelisted paths",
    )
)
class TransitiveNondeterminismRule(LintRule):
    def check_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if not ctx.in_sim_scope():
            return
        for fn in _project_callees(node, ctx):
            wall = _witness_message(ctx, fn, "wallclock")
            if wall is not None:
                ctx.report(
                    self.info, node,
                    message=f"call into {fn.display}() transitively reads the wall clock: {wall}",
                )
            rng = _witness_message(ctx, fn, "rng")
            if rng is not None:
                ctx.report(
                    self.info, node,
                    message=f"call into {fn.display}() transitively draws global randomness: {rng}",
                )


@default_registry.register(
    RuleInfo(
        rule_id="SIM004",
        title="choose_next_* transitively mutates engine-owned state",
        severity=Severity.ERROR,
        rationale=(
            "SIM002 catches a choose_next_* body writing engine-owned "
            "Job bookkeeping directly, but the contract is just as "
            "broken when the write hides inside a helper the method "
            "calls ('helpful' dispatch-counter updates, record edits).  "
            "The call graph follows the helpers, so the narrow read-only "
            "query stays read-only all the way down."
        ),
        hint="return the chosen job and let the engine do the "
        "bookkeeping; per-job knobs (wanted_*_slots) belong in "
        "on_job_arrival",
    )
)
class TransitiveChooseMutationRule(LintRule):
    def check_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if ctx.in_choose_method() is None:
            return
        for fn in _project_callees(node, ctx):
            mut = _witness_message(ctx, fn, "mutation")
            if mut is not None:
                ctx.report(
                    self.info, node,
                    message=(
                        f"choose_next_* calls {fn.display}() which mutates "
                        f"engine-owned job state: {mut}"
                    ),
                )


@default_registry.register(
    RuleInfo(
        rule_id="API002",
        title="scheduler entry point can raise undeclared exceptions",
        severity=Severity.WARNING,
        rationale=(
            "The engine invokes the scheduler contract (choose_next_*, "
            "priority_key, preemption_requests, on_job_*) on every valid "
            "trace; an exception escaping one of them aborts the whole "
            "replay mid-simulation.  A raise hidden in a transitive "
            "callee is invisible at the entry point unless its docstring "
            "declares it — so callers can neither handle nor rule it out."
        ),
        hint="document the exception in a 'Raises' docstring section of "
        "the entry point, or handle it inside; NotImplementedError / "
        "AssertionError are exempt",
    )
)
class UndeclaredRaiseRule(LintRule):
    def check_Call(self, node: ast.Call, ctx: FileContext) -> None:
        entry = ctx.in_contract_method()
        if entry is None:
            return
        doc = ast.get_docstring(entry.node)
        if doc is not None and "raise" in doc.lower():
            return  # declared
        for fn in _project_callees(node, ctx):
            hit = ctx.callgraph.witness(fn, "raise") if ctx.callgraph else None
            if hit is not None:
                chain, sink = hit
                ctx.report(
                    self.info, node,
                    message=(
                        f"{entry.name} can raise {sink.detail} via "
                        f"{' -> '.join(chain)} without declaring it"
                    ),
                )


# --------------------------------------------------------------------- #
# CONC/RES — whole-program families, replayed from the dataflow layer
# --------------------------------------------------------------------- #


class _ProgramRule(LintRule):
    """Shim replaying precomputed whole-program findings for one rule.

    The runner attaches this file's slice of the CONC/RES analysis
    output to the :class:`~repro.analysis.visitor.FileContext`; the
    shim routes each raw finding through ``ctx.report`` so rule
    selection and line suppression behave exactly like per-file rules.
    """

    def check_Module(self, node: ast.Module, ctx: FileContext) -> None:
        for raw in ctx.program_findings_for(self.info.rule_id):
            ctx.report(self.info, raw.anchor, message=raw.message)


@default_registry.register(
    RuleInfo(
        rule_id="CONC001",
        title="unsynchronized write to lock-guarded shared attribute",
        severity=Severity.ERROR,
        rationale=(
            "An attribute the class guards with a lock *somewhere* is "
            "declared shared state; writing it without that lock in a "
            "method reachable from two or more concurrent thread entry "
            "points (HTTP handlers, worker threads) is a data race that "
            "replays may or may not reproduce — the exact failure mode "
            "the paper's digest-identity guarantee exists to rule out."
        ),
        hint="wrap the write in 'with self._lock:' (the same lock that "
        "guards the attribute elsewhere), or stop sharing the attribute",
    )
)
class UnsyncSharedWriteRule(_ProgramRule):
    pass


@default_registry.register(
    RuleInfo(
        rule_id="CONC002",
        title="locks acquired in inconsistent order (potential deadlock)",
        severity=Severity.ERROR,
        rationale=(
            "Acquiring lock B while holding A on one path and A while "
            "holding B on another (directly or through a callee) can "
            "deadlock under concurrent load; a single test run will "
            "essentially never produce the interleaving, so only static "
            "ordering discipline catches it before production."
        ),
        hint="pick one global acquisition order and restructure the "
        "later acquisition (release first, or merge the critical "
        "sections under the outer lock)",
    )
)
class LockOrderRule(_ProgramRule):
    pass


@default_registry.register(
    RuleInfo(
        rule_id="CONC003",
        title="cross-thread sqlite use outside the sanctioned wrapper",
        severity=Severity.ERROR,
        rationale=(
            "sqlite3 connections are not thread-safe; a connection "
            "declared cross-thread (check_same_thread=False) or owned "
            "by a class whose methods run on multiple threads must have "
            "every use serialized behind one lock — the ResultCache "
            "idiom.  An unguarded execute corrupts state silently."
        ),
        hint="hold the class's guarding lock around every connection "
        "use, or keep the connection thread-local",
    )
)
class CrossThreadSqliteRule(_ProgramRule):
    pass


@default_registry.register(
    RuleInfo(
        rule_id="CONC004",
        title="manual lock acquire without guaranteed release",
        severity=Severity.WARNING,
        rationale=(
            "A bare lock.acquire() with any path (normal or "
            "exceptional) to function exit that skips release() leaves "
            "the lock held forever — every other thread then parks on "
            "it and the service wedges without crashing."
        ),
        hint="use 'with lock:' (or try/finally with release()) so every "
        "exit path releases",
    )
)
class ManualAcquireRule(_ProgramRule):
    pass


@default_registry.register(
    RuleInfo(
        rule_id="RES001",
        title="SharedMemory segment may leak on an exit path",
        severity=Severity.ERROR,
        rationale=(
            "A multiprocessing SharedMemory segment pins /dev/shm "
            "backing until unlink(); if an exception escapes between "
            "creation and registration with its cleanup owner, the "
            "segment outlives the process — a crashed sweep then leaks "
            "real memory until reboot."
        ),
        hint="register the segment with its cleanup owner before any "
        "fallible write, or close()/unlink() in a finally",
    )
)
class SharedMemoryLeakRule(_ProgramRule):
    pass


@default_registry.register(
    RuleInfo(
        rule_id="RES002",
        title="sqlite connection or cursor not closed on every path",
        severity=Severity.WARNING,
        rationale=(
            "Unclosed sqlite connections hold file locks and journal "
            "state; unclosed cursors pin result sets until GC runs.  "
            "Both are invisible in tests and surface as 'database is "
            "locked' under concurrent load."
        ),
        hint="use 'with contextlib.closing(...)' for connections and "
        "close cursors once the result is read",
    )
)
class SqliteLifetimeRule(_ProgramRule):
    pass


# --------------------------------------------------------------------- #
# POL001-POL005 / CERT001 — policy-tree and certification findings.
# Registered as meta entries (docs, config validation, --list-rules):
# these ids are produced by repro.policy.validate over *policy JSON
# documents* and by the service's inline-certification rejections, not
# by AST rule classes walking Python source.  The finding's path field
# carries a JSON pointer into the tree (label#/tree/then/...).
# --------------------------------------------------------------------- #

for _info in (
    RuleInfo(
        rule_id="POL001",
        title="malformed policy document (structure, keys, types, version)",
        severity=Severity.ERROR,
        rationale=(
            "The policy DSL is strict by construction: an unknown key or "
            "a tolerated type coercion would make two visually different "
            "documents compile to different schedulers while canonical- "
            "izing to the same identity, corrupting the result cache."
        ),
        hint="see docs/policies.md for the version-1 grammar",
    ),
    RuleInfo(
        rule_id="POL002",
        title="unknown feature, operator or pick rule in a policy tree",
        severity=Severity.ERROR,
        rationale=(
            "A policy referencing state outside the published vocabulary "
            "cannot be compiled; silently ignoring the term would replay "
            "a different policy than the one submitted."
        ),
        hint="the vocabulary is repro.policy.FEATURES; operators are "
        "<, <=, >, >=; picks are fifo, edf, sjf, least_slack",
    ),
    RuleInfo(
        rule_id="POL003",
        title="policy tree exceeds bounds or uses non-finite constants",
        severity=Severity.ERROR,
        rationale=(
            "Depth/size bounds keep validation and compilation O(small) "
            "on untrusted service input; non-finite thresholds and zero "
            "weights make score arithmetic produce nan, whose comparisons "
            "are order-dependent — a nondeterministic schedule."
        ),
        hint="stay within 16 levels / 128 nodes / 8 terms and use finite, "
        "non-zero constants",
    ),
    RuleInfo(
        rule_id="POL004",
        title="unreachable branch in a policy tree",
        severity=Severity.WARNING,
        rationale=(
            "A branch whose condition can never hold given the feature "
            "bounds established on the path above it is dead weight — "
            "usually a sign the comparison is inverted or the threshold "
            "is outside the feature's domain."
        ),
        hint="delete the dead branch or fix the comparison",
    ),
    RuleInfo(
        rule_id="POL005",
        title="policy declares 'static': true but reads dynamic state",
        severity=Severity.ERROR,
        rationale=(
            "The static claim routes the compiled policy onto the "
            "engine's heap fast path, which assumes priorities constant "
            "per job; a dynamic feature would be sampled once at heap "
            "insertion and replayed stale — a silently wrong, timing- "
            "dependent schedule."
        ),
        hint="drop the 'static' claim or the dynamic feature",
    ),
    RuleInfo(
        rule_id="CERT001",
        title="inline scheduler source failed effect-safety certification",
        severity=Severity.ERROR,
        rationale=(
            "The service executes submitted scheduler source only behind "
            "a passing certificate; a rejection names the witness chain "
            "from a scheduler method to the effectful sink."
        ),
        hint="see docs/service.md for the certification contract",
    ),
):
    default_registry.register_meta(_info)
del _info


@default_registry.register(
    RuleInfo(
        rule_id="RES003",
        title="tempfile created without cleanup on an exit path",
        severity=Severity.WARNING,
        rationale=(
            "mkstemp/mkdtemp/NamedTemporaryFile(delete=False) create "
            "durable filesystem artifacts; a path that exits without "
            "os.unlink/shutil.rmtree and without handing the path to a "
            "cleanup owner fills the spill directory across sweeps."
        ),
        hint="hand the path to its cleanup owner before fallible "
        "writes, or remove it in a finally",
    )
)
class TempfileLeakRule(_ProgramRule):
    pass
