"""Whole-program concurrency analysis: the CONC rule family.

The repo runs real concurrency — ``ThreadingHTTPServer`` handler
threads, the :class:`~repro.service.jobs.JobManager` worker pool, and a
``multiprocessing`` fleet — and a replay service is only as
deterministic as its synchronization discipline.  This module layers
four checks over the :mod:`repro.analysis.callgraph` index:

``CONC001``
    A write to ``self.<attr>`` that is lock-guarded somewhere in the
    class but *not* at this site, in a method reachable from concurrent
    thread entry points.  Inconsistent guarding is the classic
    race-detection signal (guarded-elsewhere means the author considers
    the attribute shared).
``CONC002``
    Lock acquisitions in inconsistent order across the program
    (``A`` then ``B`` here, ``B`` then ``A`` there) — a deadlock a
    single test run will essentially never produce.
``CONC003``
    A sqlite connection declared cross-thread
    (``check_same_thread=False``) or owned by a class in concurrent
    scope, dereferenced without the class's guarding lock held.  The
    sanctioned wrapper idiom (:class:`~repro.parallel.cache.ResultCache`)
    serializes *every* statement behind one lock and passes clean.
``CONC004``
    A manual ``lock.acquire()`` with a path (normal or exceptional) to
    function exit that never calls ``release()`` — use ``with`` or
    ``try/finally``.

**Thread entry points** are HTTP handler methods (``do_*`` on request
-handler classes), ``threading.Thread`` targets, and ``multiprocessing``
pool targets/initializers.  Thread/handler entries carry a concurrency
multiplicity (handlers and loop-spawned threads count twice — they run
concurrently with themselves); multiprocessing targets are indexed as
entry points but carry no *thread* weight, since pool worker processes
do not share Python memory.  Reachability is a forward BFS over the
call graph, remembering one breadcrumb step per function so findings
can print the taint-style witness chain (``do_POST -> _handle_simulate
-> submit``).

Methods named ``__init__``/``__post_init__``/``__new__`` are exempt
from CONC001/CONC003: the object is not yet shared while constructing.
Like the rest of simlint, every heuristic over-approximates toward
"no edge / no finding" when resolution is ambiguous.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from .callgraph import CallGraph, FuncNode, _ModuleIdx
from .cfg import build_cfg
from .config import LintConfig
from .dataflow import RawFinding, track_acquisition

__all__ = ["ConcurrencyAnalysis", "EntryPoint", "analyze_concurrency"]

FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Names that look like synchronization primitives.
_LOCKISH_RE = re.compile(r"lock|mutex|semaphore|condvar", re.IGNORECASE)

#: Constructors whose result is a lock attribute, alias-resolved.
_LOCK_FACTORIES = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
    "multiprocessing.Lock", "multiprocessing.RLock",
})

#: Base-class names marking an HTTP request-handler class; its ``do_*``
#: methods run on per-connection server threads.
_HANDLER_BASE_RE = re.compile(r"RequestHandler$")

#: Pool methods whose function argument runs in worker processes.
_POOL_METHODS = frozenset({
    "imap", "imap_unordered", "map", "map_async", "starmap",
    "starmap_async", "apply_async",
})

#: Constructor-family methods that run before the object is shared.
_INIT_EXEMPT = frozenset({"__init__", "__post_init__", "__new__"})

_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "pop", "remove", "clear", "add",
    "discard", "update", "setdefault", "popitem", "sort", "reverse",
    "move_to_end",
})


@dataclass(frozen=True)
class EntryPoint:
    """One function the runtime invokes on its own thread/process."""

    fn: FuncNode
    kind: str  # "thread" | "handler" | "mp"
    #: How many concurrent activations share memory (handlers and
    #: loop-spawned threads: 2; single threads: 1; processes: 0 —
    #: they do not share Python state).
    weight: int
    detail: str


@dataclass
class _AttrAccess:
    attr: str
    is_write: bool
    lineno: int
    col: int
    method: str
    locks_held: tuple[str, ...]

    @property
    def guarded(self) -> bool:
        return bool(self.locks_held)


@dataclass
class _LockOrderSite:
    held: str
    acquired: str
    path: str
    lineno: int
    col: int


@dataclass
class _ClassFacts:
    """Per-class aggregation feeding CONC001/CONC003."""

    module: str
    path: str
    name: str
    lock_attrs: set[str] = field(default_factory=set)
    #: sqlite connection attrs -> declared check_same_thread=False.
    conn_attrs: dict[str, bool] = field(default_factory=dict)
    conn_lineno: dict[str, int] = field(default_factory=dict)
    accesses: list[_AttrAccess] = field(default_factory=list)
    #: Unguarded dereferences of a connection attr: (attr, line, col, method).
    conn_uses: list[tuple[str, int, int, str, tuple[str, ...]]] = field(
        default_factory=list
    )


def _dotted(node: ast.AST, aliases: dict[str, str]) -> Optional[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id)
    if root is None:
        return None
    parts.append(root)
    return ".".join(reversed(parts))


def _local_aliases(mod: _ModuleIdx, fn: FuncDef) -> dict[str, str]:
    """Module aliases extended with the function's own imports."""
    aliases = dict(mod.aliases)
    for stmt in ast.walk(fn):
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                aliases[local] = (
                    alias.name if alias.asname else alias.name.split(".", 1)[0]
                )
        elif isinstance(stmt, ast.ImportFrom) and stmt.module and not stmt.level:
            for alias in stmt.names:
                aliases[alias.asname or alias.name] = f"{stmt.module}.{alias.name}"
    return aliases


def _self_attr(node: ast.AST) -> Optional[str]:
    """First-level attribute name of a ``self.<attr>...`` chain root."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        parent = node
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self":
        if isinstance(parent, ast.Attribute):
            return parent.attr
    return None


def _callee_descriptor(
    node: ast.AST, aliases: dict[str, str], cls_name: Optional[str]
) -> Optional[tuple]:
    """A callgraph-style descriptor for a function reference expression."""
    if isinstance(node, ast.Name):
        dotted = aliases.get(node.id)
        return ("dotted", dotted) if dotted is not None else ("name", node.id)
    if isinstance(node, ast.Attribute):
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and cls_name is not None
        ):
            return ("self", cls_name, node.attr)
        dotted = _dotted(node, aliases)
        if dotted is not None:
            return ("dotted", dotted)
    return None


class _MethodScanner(ast.NodeVisitor):
    """One pass over a method body: lock scopes, attr accesses, calls.

    Tracks the ``with``-lock stack while visiting, so every recorded
    access/call/dereference knows which locks were held at that point.
    """

    def __init__(
        self,
        analysis: "ConcurrencyAnalysis",
        mod: _ModuleIdx,
        fn: FuncNode,
        facts: Optional[_ClassFacts],
    ) -> None:
        self.analysis = analysis
        self.mod = mod
        self.fn = fn
        self.facts = facts
        self.aliases = _local_aliases(mod, fn.node) if fn.node else dict(mod.aliases)
        self.held: list[str] = []
        #: Locks this function acquires directly (for the order closure).
        self.acquired: set[str] = set()
        self.method_name = fn.qname.rpartition(".")[2]

    # -- lock identity -------------------------------------------------- #

    def lock_id(self, expr: ast.AST) -> Optional[str]:
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            if expr.value.id == "self" and self.facts is not None:
                if expr.attr in self.facts.lock_attrs or _LOCKISH_RE.search(expr.attr):
                    return f"{self.facts.name}.{expr.attr}"
                return None
            if _LOCKISH_RE.search(expr.attr):
                return f"*.{expr.attr}"
            return None
        if isinstance(expr, ast.Name) and _LOCKISH_RE.search(expr.id):
            return f"{self.mod.name}:{expr.id}"
        if isinstance(expr, ast.Attribute) and _LOCKISH_RE.search(expr.attr):
            return f"*.{expr.attr}"
        return None

    # -- visits --------------------------------------------------------- #

    def _visit_with(self, node: Union[ast.With, ast.AsyncWith]) -> None:
        pushed = 0
        for item in node.items:
            lock = self.lock_id(item.context_expr)
            self.visit(item.context_expr)
            if lock is not None:
                for held in self.held:
                    if held != lock:
                        self.analysis.order_sites.append(_LockOrderSite(
                            held=held,
                            acquired=lock,
                            path=self.fn.path,
                            lineno=item.context_expr.lineno,
                            col=item.context_expr.col_offset + 1,
                        ))
                self.held.append(lock)
                self.acquired.add(lock)
                pushed += 1
        for stmt in node.body:
            self.visit(stmt)
        for _ in range(pushed):
            self.held.pop()

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def visit_Call(self, node: ast.Call) -> None:
        # Cross-function lock ordering: calling under a held lock pulls
        # in every lock the callee (transitively) acquires.
        if self.held:
            self.analysis.held_calls.append(
                (self.fn, node, tuple(self.held))
            )
        # Mutator-method write on a self attribute (self.x.append(...)).
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATOR_METHODS:
            attr = _self_attr(func.value)
            if attr is not None:
                self._record_access(attr, True, node)
        self.generic_visit(node)

    def _record_access(self, attr: str, is_write: bool, node: ast.AST) -> None:
        if self.facts is None:
            return
        self.facts.accesses.append(_AttrAccess(
            attr=attr,
            is_write=is_write,
            lineno=getattr(node, "lineno", self.fn.lineno),
            col=getattr(node, "col_offset", 0) + 1,
            method=self.method_name,
            locks_held=tuple(self.held),
        ))

    def _record_write_target(self, target: ast.AST, node: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_write_target(elt, node)
            return
        attr = _self_attr(target)
        if attr is not None:
            self._record_access(attr, True, target)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_write_target(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_write_target(node.target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_write_target(node.target, node)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # Reads of self.<attr> (writes were recorded by the assign hooks;
        # recording the read side too only adds guard examples).
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and isinstance(node.ctx, ast.Load)
        ):
            self._record_access(node.attr, False, node)
            if self.facts is not None and node.attr in self.facts.conn_attrs:
                self.facts.conn_uses.append((
                    node.attr, node.lineno, node.col_offset + 1,
                    self.method_name, tuple(self.held),
                ))
        self.generic_visit(node)

    # Nested defs: their bodies run later on unknown threads; scanning
    # them with the enclosing lock stack would fabricate guarantees.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return


class _EntryScanner(ast.NodeVisitor):
    """Find thread/process entry-point registrations in one function."""

    def __init__(
        self, analysis: "ConcurrencyAnalysis", mod: _ModuleIdx, fn: FuncNode
    ) -> None:
        self.analysis = analysis
        self.mod = mod
        self.fn = fn
        self.aliases = _local_aliases(mod, fn.node) if fn.node else dict(mod.aliases)
        self.loop_depth = 0

    def _add(self, ref: Optional[tuple], kind: str, detail: str) -> None:
        if ref is None:
            return
        target = self.analysis.graph.resolve_ref(self.fn.module, ref)
        if target is None:
            return
        if kind == "mp":
            weight = 0
        else:
            weight = 2 if self.loop_depth > 0 else 1
        self.analysis.add_entry(EntryPoint(target, kind, weight, detail))

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func, self.aliases) or ""
        target_kw = next(
            (kw.value for kw in node.keywords if kw.arg == "target"), None
        )
        init_kw = next(
            (kw.value for kw in node.keywords if kw.arg == "initializer"), None
        )
        cls = self.fn.cls_name
        if target_kw is not None:
            kind = "mp" if dotted.endswith("multiprocessing.Process") else "thread"
            self._add(
                _callee_descriptor(target_kw, self.aliases, cls),
                kind,
                "threading.Thread target" if kind == "thread"
                else "multiprocessing.Process target",
            )
        if init_kw is not None:
            self._add(
                _callee_descriptor(init_kw, self.aliases, cls),
                "mp", "pool initializer",
            )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _POOL_METHODS
            and node.args
        ):
            self._add(
                _callee_descriptor(node.args[0], self.aliases, cls),
                "mp", f"pool.{node.func.attr} function",
            )
        self.generic_visit(node)

    def _loopish(self, node: ast.AST) -> None:
        self.loop_depth += 1
        self.generic_visit(node)
        self.loop_depth -= 1

    def visit_For(self, node: ast.For) -> None:
        self._loopish(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._loopish(node)

    def visit_While(self, node: ast.While) -> None:
        self._loopish(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._loopish(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._loopish(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._loopish(node)


class ConcurrencyAnalysis:
    """Runs the CONC001–004 checks over a finalized call graph."""

    def __init__(self, graph: CallGraph, config: LintConfig) -> None:
        self.graph = graph
        self.config = config
        self.entries: list[EntryPoint] = []
        self.order_sites: list[_LockOrderSite] = []
        self.held_calls: list[tuple[FuncNode, ast.Call, tuple[str, ...]]] = []
        self._weights: dict[int, int] = {}
        #: id(fn) -> {entry-id: breadcrumb caller FuncNode or None}.
        self._parents: dict[int, dict[int, Optional[FuncNode]]] = {}
        self._entry_by_id: dict[int, EntryPoint] = {}
        self._direct_locks: dict[int, set[str]] = {}
        self._class_facts: dict[tuple[str, str], _ClassFacts] = {}
        self.findings: list[RawFinding] = []

    # -- public API ----------------------------------------------------- #

    def run(self) -> list[RawFinding]:
        self._collect_class_facts()
        self._collect_entries()
        self._propagate_reachability()
        self._scan_methods()
        self._check_conc001()
        self._check_conc002()
        self._check_conc003()
        self._check_conc004()
        self.findings.sort(key=lambda f: f.sort_key)
        return self.findings

    def add_entry(self, entry: EntryPoint) -> None:
        self.entries.append(entry)

    def thread_weight(self, fn: FuncNode) -> int:
        """Concurrent thread activations that can reach ``fn``."""
        return self._weights.get(id(fn), 0)

    # -- construction passes -------------------------------------------- #

    def _iter_functions(self) -> Iterable[tuple[_ModuleIdx, FuncNode]]:
        for mod in self.graph.iter_module_indexes():
            if self.config.is_test_path(mod.path):
                continue
            for qname in sorted(mod.functions):
                fn = mod.functions[qname]
                if fn.node is not None:
                    yield mod, fn

    def _collect_class_facts(self) -> None:
        """Lock attributes and sqlite connection attributes per class."""
        for mod, fn in self._iter_functions():
            if fn.cls_name is None:
                continue
            key = (mod.name, fn.cls_name)
            facts = self._class_facts.get(key)
            if facts is None:
                facts = _ClassFacts(module=mod.name, path=fn.path, name=fn.cls_name)
                self._class_facts[key] = facts
            aliases = _local_aliases(mod, fn.node) if fn.node else dict(mod.aliases)
            assert fn.node is not None
            for stmt in ast.walk(fn.node):
                if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                    continue
                target = stmt.targets[0]
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                if not isinstance(stmt.value, ast.Call):
                    continue
                dotted = _dotted(stmt.value.func, aliases)
                if dotted in _LOCK_FACTORIES:
                    facts.lock_attrs.add(target.attr)
                elif dotted == "sqlite3.connect":
                    declared = any(
                        kw.arg == "check_same_thread"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is False
                        for kw in stmt.value.keywords
                    )
                    facts.conn_attrs[target.attr] = declared
                    facts.conn_lineno[target.attr] = stmt.lineno

    def _collect_entries(self) -> None:
        for mod, fn in self._iter_functions():
            _EntryScanner(self, mod, fn).visit(fn.node)  # type: ignore[arg-type]
        # HTTP handler methods: do_* on request-handler classes.
        for mod in self.graph.iter_module_indexes():
            if self.config.is_test_path(mod.path):
                continue
            for cls_name in sorted(mod.classes):
                cls = mod.classes[cls_name]
                if not any(
                    _HANDLER_BASE_RE.search(base.rpartition(".")[2])
                    for base in cls.base_refs
                ):
                    continue
                for method_name in sorted(cls.methods):
                    if method_name.startswith("do_"):
                        self.add_entry(EntryPoint(
                            cls.methods[method_name], "handler", 2,
                            "HTTP handler method",
                        ))

    def _propagate_reachability(self) -> None:
        seen_entries: set[tuple[int, str]] = set()
        for entry in self.entries:
            key = (id(entry.fn), entry.kind)
            if key in seen_entries:
                continue  # the same target registered twice adds no facts
            seen_entries.add(key)
            self._entry_by_id[id(entry.fn)] = entry
            parents: dict[int, Optional[FuncNode]] = {id(entry.fn): None}
            order = [entry.fn]
            frontier = [entry.fn]
            while frontier:
                nxt: list[FuncNode] = []
                for fn in frontier:
                    for callee in fn.callees:
                        if id(callee) not in parents:
                            parents[id(callee)] = fn
                            order.append(callee)
                            nxt.append(callee)
                frontier = nxt
            for fn in order:
                self._parents.setdefault(id(fn), {})[id(entry.fn)] = parents[id(fn)]
                if entry.weight:
                    self._weights[id(fn)] = self._weights.get(id(fn), 0) + entry.weight

    def _scan_methods(self) -> None:
        for mod, fn in self._iter_functions():
            facts = (
                self._class_facts.get((mod.name, fn.cls_name))
                if fn.cls_name is not None
                else None
            )
            method = fn.qname.rpartition(".")[2]
            if method in _INIT_EXEMPT:
                # Constructors still contribute lock-order facts, but
                # their attr writes happen before the object is shared.
                facts = None
            scanner = _MethodScanner(self, mod, fn, facts)
            assert fn.node is not None
            for stmt in fn.node.body:
                scanner.visit(stmt)
            self._direct_locks[id(fn)] = scanner.acquired

    # -- breadcrumbs ----------------------------------------------------- #

    def entry_chain(self, fn: FuncNode, entry_fn_id: int) -> list[str]:
        """Display-name chain from the entry point down to ``fn``."""
        chain: list[str] = []
        cursor: Optional[FuncNode] = fn
        guard = 0
        while cursor is not None and guard < 32:
            chain.append(cursor.display)
            cursor = self._parents.get(id(cursor), {}).get(entry_fn_id)
            guard += 1
        return list(reversed(chain))

    def _chains_for(self, fn: FuncNode, limit: int = 2) -> str:
        parts: list[str] = []
        entry_ids = sorted(
            self._parents.get(id(fn), {}),
            key=lambda eid: self._entry_by_id[eid].fn.display,
        )
        for entry_id in entry_ids:
            entry = self._entry_by_id[entry_id]
            if entry.weight == 0:
                continue
            chain = self.entry_chain(fn, entry_id)
            label = " -> ".join(chain)
            parts.append(f"{label} [{entry.detail} x{entry.weight}]")
            if len(parts) >= limit:
                break
        return "; ".join(parts)

    # -- the checks ------------------------------------------------------ #

    def _method_node(self, facts: _ClassFacts, method: str) -> Optional[FuncNode]:
        mod = self.graph.module_index(facts.module)
        if mod is None:
            return None
        return mod.functions.get(f"{facts.name}.{method}")

    def _check_conc001(self) -> None:
        for key in sorted(self._class_facts):
            facts = self._class_facts[key]
            by_attr: dict[str, list[_AttrAccess]] = {}
            for access in facts.accesses:
                if access.attr in facts.lock_attrs or _LOCKISH_RE.search(access.attr):
                    continue
                by_attr.setdefault(access.attr, []).append(access)
            for attr in sorted(by_attr):
                accesses = by_attr[attr]
                guard = next((a for a in accesses if a.guarded), None)
                if guard is None:
                    continue  # never guarded: no declared discipline to break
                for access in accesses:
                    if not access.is_write or access.guarded:
                        continue
                    fn = self._method_node(facts, access.method)
                    if fn is None:
                        continue
                    weight = self.thread_weight(fn)
                    if weight < 2:
                        continue
                    self.findings.append(RawFinding(
                        rule_id="CONC001",
                        path=facts.path,
                        line=access.lineno,
                        col=access.col,
                        message=(
                            f"unsynchronized write to self.{attr} can race: "
                            f"guarded by {guard.locks_held[0]} at "
                            f"{facts.path}:{guard.lineno} but not here; "
                            f"reachable from {weight} concurrent thread(s) "
                            f"({self._chains_for(fn)})"
                        ),
                    ))

    def _lock_closure(self, fn: FuncNode) -> set[str]:
        out: set[str] = set()
        frontier = [fn]
        seen = {id(fn)}
        depth = 0
        while frontier and depth < 12:
            nxt: list[FuncNode] = []
            for node in frontier:
                out |= self._direct_locks.get(id(node), set())
                for callee in node.callees:
                    if id(callee) not in seen:
                        seen.add(id(callee))
                        nxt.append(callee)
            frontier = nxt
            depth += 1
        return out

    def _check_conc002(self) -> None:
        # Cross-function pairs: a call made while holding H acquires
        # (transitively) every lock in the callee's closure.
        sites = list(self.order_sites)
        for fn, call, held in self.held_calls:
            for callee in self.graph.callees_at(call):
                for lock in sorted(self._lock_closure(callee)):
                    for h in held:
                        if h != lock:
                            sites.append(_LockOrderSite(
                                held=h, acquired=lock, path=fn.path,
                                lineno=call.lineno, col=call.col_offset + 1,
                            ))
        edges: dict[tuple[str, str], _LockOrderSite] = {}
        for site in sites:
            edges.setdefault((site.held, site.acquired), site)
        # An ordered pair is a deadlock candidate when the opposite
        # order is also reachable (mutual reachability in the edge graph).
        succs: dict[str, set[str]] = {}
        for (a, b) in edges:
            succs.setdefault(a, set()).add(b)

        def reaches(src: str, dst: str) -> bool:
            frontier, seen = [src], {src}
            while frontier:
                nxt: list[str] = []
                for node in frontier:
                    for succ in succs.get(node, ()):
                        if succ == dst:
                            return True
                        if succ not in seen:
                            seen.add(succ)
                            nxt.append(succ)
                frontier = nxt
            return False

        for (a, b) in sorted(edges):
            if not reaches(b, a):
                continue
            site = edges[(a, b)]
            reverse = edges.get((b, a))
            if reverse is not None:
                counter = f"the opposite order is at {reverse.path}:{reverse.lineno}"
            else:
                counter = f"a cycle back through {a} exists"
            self.findings.append(RawFinding(
                rule_id="CONC002",
                path=site.path,
                line=site.lineno,
                col=site.col,
                message=(
                    f"lock order inversion: {b} acquired while holding {a}, "
                    f"but {counter}; concurrent callers can deadlock"
                ),
            ))

    def _check_conc003(self) -> None:
        for key in sorted(self._class_facts):
            facts = self._class_facts[key]
            if not facts.conn_attrs:
                continue
            concurrent = any(
                (fn := self._method_node(facts, m)) is not None
                and self.thread_weight(fn) >= 2
                for m in {u[3] for u in facts.conn_uses}
            )
            for attr in sorted(facts.conn_attrs):
                declared = facts.conn_attrs[attr]
                if not declared and not concurrent:
                    continue  # single-threaded store: nothing to enforce
                reason = (
                    "declared cross-thread via check_same_thread=False"
                    if declared else "owned by a class in concurrent scope"
                )
                if not facts.lock_attrs:
                    self.findings.append(RawFinding(
                        rule_id="CONC003",
                        path=facts.path,
                        line=facts.conn_lineno.get(attr, 1),
                        col=1,
                        message=(
                            f"sqlite connection self.{attr} is {reason} but "
                            f"{facts.name} has no guarding lock; serialize "
                            f"every use behind one lock (the ResultCache idiom)"
                        ),
                    ))
                    continue
                for use_attr, lineno, col, method, held in facts.conn_uses:
                    if use_attr != attr or held or method in _INIT_EXEMPT:
                        continue
                    self.findings.append(RawFinding(
                        rule_id="CONC003",
                        path=facts.path,
                        line=lineno,
                        col=col,
                        message=(
                            f"sqlite connection self.{attr} ({reason}) used "
                            f"without holding {facts.name}'s guarding lock"
                        ),
                    ))

    def _check_conc004(self) -> None:
        for mod, fn in self._iter_functions():
            assert fn.node is not None
            acquires: list[tuple[ast.Call, str]] = []
            for node in ast.walk(fn.node):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "acquire"
                ):
                    recv = self._receiver_key(node.func.value, fn)
                    if recv is not None:
                        acquires.append((node, recv))
            if not acquires:
                continue
            cfg = build_cfg(fn.node)
            for call, recv in acquires:
                acquire_idx = _node_scanning(cfg, call)
                if acquire_idx is None:
                    continue
                kills = {
                    n.index
                    for n in cfg.nodes
                    if any(
                        self._is_release(sub, recv, fn)
                        for root in n.scan
                        for sub in ast.walk(root)
                    )
                }
                report = track_acquisition(
                    cfg, acquire_idx, lambda i, k=frozenset(kills): i in k
                )
                if report.held_at_exit:
                    detail = "no release() on some path to return"
                elif report.held_at_raise:
                    detail = (
                        "an exception"
                        + (f" at line {report.raise_line}" if report.raise_line else "")
                        + " can exit before release()"
                    )
                else:
                    continue
                self.findings.append(RawFinding(
                    rule_id="CONC004",
                    path=fn.path,
                    line=call.lineno,
                    col=call.col_offset + 1,
                    message=(
                        f"manual {recv}.acquire() without a guaranteed "
                        f"release: {detail}; use 'with {recv}:' or try/finally"
                    ),
                ))

    def _receiver_key(self, expr: ast.AST, fn: FuncNode) -> Optional[str]:
        """Lock-ish receiver of an ``acquire``/``release`` call."""
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            if expr.value.id == "self":
                facts = (
                    self._class_facts.get((fn.module, fn.cls_name))
                    if fn.cls_name is not None else None
                )
                lockish = _LOCKISH_RE.search(expr.attr) or (
                    facts is not None and expr.attr in facts.lock_attrs
                )
                return f"self.{expr.attr}" if lockish else None
        if isinstance(expr, ast.Name) and _LOCKISH_RE.search(expr.id):
            return expr.id
        return None

    def _is_release(self, node: ast.AST, recv: str, fn: FuncNode) -> bool:
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "release"
        ):
            return False
        return self._receiver_key(node.func.value, fn) == recv


def _node_scanning(cfg: "object", target: ast.AST) -> Optional[int]:
    """Index of the CFG node whose scan region contains ``target``."""
    from .cfg import CFG

    assert isinstance(cfg, CFG)
    for node in cfg.nodes:
        for root in node.scan:
            for sub in ast.walk(root):
                if sub is target:
                    return node.index
    return None


def analyze_concurrency(graph: CallGraph, config: LintConfig) -> list[RawFinding]:
    """Run the CONC family over a finalized call graph."""
    return ConcurrencyAnalysis(graph, config).run()
