"""Simulation-as-a-service: SimMR replays behind a long-lived HTTP API.

Every other entry point in this repo pays full process startup per
campaign; this package keeps a simulator resident and shareable.  A
stdlib :class:`ThreadingHTTPServer` front end (:mod:`.server`) validates
requests (:mod:`.protocol`), a bounded job queue with a persistent
worker pool executes them through the same
:func:`~repro.parallel.executor.simulate_many` machinery as local runs
(:mod:`.jobs`), the content-addressed
:class:`~repro.parallel.cache.ResultCache` fronts the queue so repeated
requests never re-simulate, and ``/metrics`` exposes live Prometheus
counters (:mod:`.metrics`).  The thin client (:mod:`.client`) returns
each run's BLAKE2b ``event_digest`` so callers can verify a service
result is byte-identical to a local replay.

CLI: ``simmr serve`` / ``simmr submit``.  Guide: ``docs/service.md``.
"""

from .client import ServiceClient, ServiceError, ServiceRejected, ServiceReply
from .jobs import JobManager, JobTicket, QueueFullError, ServiceClosedError
from .metrics import ServiceMetrics
from .protocol import ProtocolError, ReplayRequest, parse_request, request_document
from .server import ServiceConfig, SimulationServer, install_signal_handlers
from .tracecache import TraceCache, TraceCacheStats

__all__ = [
    "JobManager",
    "JobTicket",
    "ProtocolError",
    "QueueFullError",
    "ReplayRequest",
    "ServiceClient",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceError",
    "ServiceMetrics",
    "ServiceRejected",
    "ServiceReply",
    "SimulationServer",
    "TraceCache",
    "TraceCacheStats",
    "install_signal_handlers",
    "parse_request",
    "request_document",
]
