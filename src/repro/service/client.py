"""Thin stdlib client for the simulation service.

``urllib``-only, so importing it costs nothing the repo does not
already have.  The client's job is fidelity, not convenience magic: it
sends the exact :func:`~repro.service.protocol.request_document` the
server validates, and hands back the run's ``event_digest`` alongside
the rebuilt :class:`~repro.core.results.SimulationResult` so the caller
can assert the service result is byte-identical to a local replay —
the service's core promise.

Backpressure is first-class: a 503 raises :class:`ServiceRejected`
carrying the server's ``Retry-After``; pass ``max_retries`` to have
:meth:`ServiceClient.replay` honour it with bounded retries instead.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from ..core.cluster import ClusterConfig
from ..core.job import TraceJob
from ..core.results import SimulationResult
from ..core.results_io import result_from_dict
from ..parallel.executor import SchedulerSpec
from .protocol import request_document

__all__ = ["ServiceClient", "ServiceError", "ServiceRejected", "ServiceReply"]


class ServiceError(Exception):
    """Any non-2xx answer from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceRejected(ServiceError):
    """503 — the bounded queue is full; wait ``retry_after`` seconds."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(503, message)
        self.retry_after = retry_after


@dataclass(frozen=True)
class ServiceReply:
    """One accepted replay: the result plus its service provenance."""

    result: SimulationResult
    #: True when the service answered from its result cache.
    cached: bool
    #: BLAKE2b event-stream digest — compare with a local replay's.
    event_digest: Optional[str]
    #: Content address of the run on the server (None when uncached).
    key: Optional[str]
    request_id: str
    #: Seconds the job spent queued on the server.
    queue_seconds: float
    #: Server-side wall-clock total for the request.
    server_seconds: float


class ServiceClient:
    """Talks to one ``simmr serve`` instance.

    ``sleep`` is injectable (tests); it is only used between 503
    retries, never on the success path.
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 300.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self._sleep = sleep

    # -- transport ---------------------------------------------------------

    def _request(
        self, path: str, body: Optional[dict[str, Any]] = None
    ) -> tuple[int, dict[str, str], bytes]:
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=json.dumps(body).encode() if body is not None else None,
            headers={"Content-Type": "application/json"} if body is not None else {},
            method="POST" if body is not None else "GET",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.status, dict(response.headers), response.read()
        except urllib.error.HTTPError as err:
            return err.code, dict(err.headers or {}), err.read()

    @staticmethod
    def _error_message(payload: bytes) -> str:
        try:
            return json.loads(payload)["error"]
        except (ValueError, KeyError, TypeError):
            return payload.decode(errors="replace") or "<empty error body>"

    # -- API ---------------------------------------------------------------

    def replay(
        self,
        trace: Optional[Sequence[TraceJob]] = None,
        *,
        trace_path: Optional[str] = None,
        scheduler: "str | SchedulerSpec" = "fifo",
        cluster: Optional[ClusterConfig] = None,
        slowstart: float = 0.05,
        preemption: bool = False,
        timeout: Optional[float] = None,
        max_retries: int = 0,
    ) -> ServiceReply:
        """Submit one replay; block until its result (or an error) arrives.

        ``max_retries`` bounds how many 503 rejections are absorbed by
        sleeping the server's ``Retry-After`` and resubmitting; the
        default 0 surfaces backpressure to the caller as
        :class:`ServiceRejected`.
        """
        doc = request_document(
            trace=trace,
            trace_path=trace_path,
            scheduler=scheduler,
            cluster=cluster,
            slowstart=slowstart,
            preemption=preemption,
            timeout=timeout,
        )
        attempts = max(0, max_retries) + 1
        for attempt in range(attempts):
            status, headers, payload = self._request("/simulate", doc)
            if status == 503:
                retry_after = float(headers.get("Retry-After", 1) or 1)
                if attempt + 1 < attempts:
                    self._sleep(retry_after)
                    continue
                raise ServiceRejected(self._error_message(payload), retry_after)
            if status != 200:
                raise ServiceError(status, self._error_message(payload))
            reply = json.loads(payload)
            seconds = reply.get("seconds", {})
            return ServiceReply(
                result=result_from_dict(reply["result"]),
                cached=bool(reply["cached"]),
                event_digest=reply.get("event_digest"),
                key=reply.get("key"),
                request_id=reply.get("request_id", ""),
                queue_seconds=float(seconds.get("queue", 0.0)),
                server_seconds=float(seconds.get("total", 0.0)),
            )
        raise AssertionError("unreachable")  # pragma: no cover

    def metrics(self) -> str:
        """The raw ``/metrics`` page (Prometheus text format)."""
        status, _, payload = self._request("/metrics")
        if status != 200:
            raise ServiceError(status, self._error_message(payload))
        return payload.decode()

    def health(self) -> dict[str, Any]:
        status, _, payload = self._request("/healthz")
        if status != 200:
            raise ServiceError(status, self._error_message(payload))
        return json.loads(payload)
