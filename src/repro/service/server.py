"""The simulation-as-a-service HTTP front end.

A stdlib :class:`~http.server.ThreadingHTTPServer` wrapping the
:class:`~repro.service.jobs.JobManager`: each connection gets a handler
thread that validates the request (:mod:`repro.service.protocol`),
submits it, and blocks on the ticket with the request's timeout — so a
slow simulation never stalls the accept loop, and a saturated queue is
answered immediately with ``503`` + ``Retry-After`` instead of letting
connections pile up.

Endpoints::

    POST /simulate   run (or cache-serve) one replay; JSON in, JSON out
    GET  /metrics    Prometheus text format (repro.service.metrics)
    GET  /healthz    liveness + queue depth

Operational behaviour is part of the contract: every request gets an
``X-Request-Id`` echoed in a structured (JSON-line) log record, and
:func:`install_signal_handlers` arranges SIGTERM/SIGINT to stop the
accept loop, drain the queue, and complete in-flight responses before
the process exits.

The server binds in the constructor, so ``port=0`` (an ephemeral port)
is usable for tests and CI: read the actual port from ``.address``
before starting the loop.
"""

from __future__ import annotations

import json
import logging
import signal
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Optional

from ..core.results_io import result_to_dict
from ..core.walltime import elapsed_since, perf_seconds
from ..parallel.cache import ResultCache, default_cache_path
from .jobs import JobManager, QueueFullError, ServiceClosedError
from .metrics import PROMETHEUS_CONTENT_TYPE, ServiceMetrics
from .protocol import ProtocolError, parse_request
from .tracecache import TraceCache

__all__ = ["ServiceConfig", "SimulationServer", "install_signal_handlers"]

logger = logging.getLogger("simmr.service")

#: Largest accepted request body (a trace inline in JSON); a guard
#: against a single request exhausting server memory.
MAX_BODY_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class ServiceConfig:
    """Everything `simmr serve` can tune."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (read it back from ``server.address``).
    port: int = 8642
    #: Persistent worker threads draining the job queue.
    workers: int = 2
    #: Bounded queue length; beyond it requests get 503 + Retry-After.
    queue_size: int = 16
    #: Result cache: ``True`` = the default cache file, a path = that
    #: file, ``None``/``False`` = no cache (every request simulates).
    cache: "bool | str | Path | None" = True
    #: Directory ``trace_path`` requests resolve under; None disables
    #: by-path traces entirely (inline traces only).
    trace_root: Optional[Path] = None
    #: Server-side cap on one request's wall-clock budget (seconds).
    request_timeout: float = 120.0
    #: Parsed-trace LRU capacity (distinct ``trace_path`` files held in
    #: memory); 0 disables the trace cache.
    trace_cache_size: int = 8


def _json_bytes(doc: Any) -> bytes:
    return json.dumps(doc).encode()


class _ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    service: "SimulationServer"


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: _ServiceHTTPServer  # type: ignore[assignment]

    # -- plumbing ----------------------------------------------------------

    @property
    def service(self) -> "SimulationServer":
        return self.server.service

    def log_message(self, format: str, *args: Any) -> None:
        # Raw socket-level lines go to debug; the service emits its own
        # structured per-request records instead.
        logger.debug("%s %s", self.address_string(), format % args)

    def _respond(
        self,
        status: int,
        body: bytes,
        *,
        content_type: str = "application/json",
        headers: Optional[dict[str, str]] = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _respond_json(
        self,
        status: int,
        doc: Any,
        *,
        request_id: Optional[str] = None,
        headers: Optional[dict[str, str]] = None,
    ) -> None:
        headers = dict(headers or {})
        if request_id is not None:
            headers["X-Request-Id"] = request_id
        self._respond(status, _json_bytes(doc), headers=headers)

    # -- GET: metrics / health --------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path == "/metrics":
            self._respond(
                200,
                self.service.render_metrics().encode(),
                content_type=PROMETHEUS_CONTENT_TYPE,
            )
        elif self.path == "/healthz":
            manager = self.service.manager
            self._respond_json(
                200,
                {
                    "status": "ok",
                    "queue_depth": manager.depth,
                    "in_flight": manager.in_flight,
                },
            )
        else:
            self._respond_json(404, {"error": f"no such endpoint: {self.path}"})

    # -- POST: simulate ----------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path != "/simulate":
            self._respond_json(404, {"error": f"no such endpoint: {self.path}"})
            return
        service = self.service
        request_id = service.next_request_id()
        start = perf_seconds()
        status, http_status, doc, headers = self._handle_simulate(
            service, request_id, start
        )
        # Account *before* responding: a client that has our reply in
        # hand must see it reflected in an immediate /metrics scrape.
        seconds = elapsed_since(start)
        service.metrics.count_request(status)
        service.metrics.observe_latency(seconds)
        logger.info(
            "%s",
            json.dumps(
                {
                    "request_id": request_id,
                    "method": "POST",
                    "path": self.path,
                    "status": http_status,
                    "outcome": status,
                    "seconds": round(seconds, 6),
                    "queue_depth": service.manager.depth,
                },
                sort_keys=True,
            ),
        )
        try:
            self._respond_json(
                http_status, doc, request_id=request_id, headers=headers
            )
        except BrokenPipeError:
            pass  # client went away mid-response; the work still counted

    def _handle_simulate(
        self, service: "SimulationServer", request_id: str, start: float
    ) -> tuple[str, int, Any, Optional[dict[str, str]]]:
        """Run one /simulate request; returns (outcome, status, doc, headers).

        Pure computation — no bytes hit the socket here, so the caller
        can publish metrics before the client can observe the response.
        """
        try:
            try:
                length = int(self.headers.get("Content-Length", "0"))
            except ValueError:
                raise ProtocolError("bad Content-Length header") from None
            if length <= 0:
                raise ProtocolError("request body required")
            if length > MAX_BODY_BYTES:
                raise ProtocolError(
                    f"request body larger than {MAX_BODY_BYTES} bytes", status=413
                )
            try:
                doc = json.loads(self.rfile.read(length))
            except (ValueError, UnicodeDecodeError) as exc:
                raise ProtocolError(f"request body is not valid JSON: {exc}") from None

            request = parse_request(
                doc,
                trace_root=service.config.trace_root,
                trace_cache=service.trace_cache,
            )
            timeout = min(
                request.timeout or service.config.request_timeout,
                service.config.request_timeout,
            )

            try:
                ticket = service.manager.submit(request)
            except QueueFullError as exc:
                return (
                    "rejected",
                    503,
                    {
                        "error": str(exc),
                        "request_id": request_id,
                        "retry_after": exc.retry_after,
                    },
                    {"Retry-After": str(int(exc.retry_after))},
                )
            except ServiceClosedError as exc:
                return (
                    "rejected",
                    503,
                    {"error": str(exc), "request_id": request_id},
                    {"Retry-After": "1"},
                )

            if not ticket.wait(timeout):
                # The job keeps running and will still populate the
                # cache; only this response gives up on it.
                return (
                    "timeout",
                    504,
                    {
                        "error": f"simulation exceeded the {timeout:g}s budget",
                        "request_id": request_id,
                    },
                    None,
                )
            if ticket.error is not None:
                raise ticket.error

            outcome = ticket.outcome
            assert outcome is not None
            return (
                "cached" if outcome.cached else "ok",
                200,
                {
                    "request_id": request_id,
                    "cached": outcome.cached,
                    "key": outcome.key,
                    "event_digest": outcome.result.event_digest,
                    "seconds": {
                        "queue": round(ticket.queue_seconds, 6),
                        "total": round(elapsed_since(start), 6),
                    },
                    "result": result_to_dict(outcome.result),
                },
                None,
            )
        except ProtocolError as exc:
            body: dict[str, Any] = {"error": str(exc), "request_id": request_id}
            if exc.findings:
                # Structured rejection detail for policy / inline-certified
                # submissions: rule id, message, path into the tree or
                # line into the source — not just the flattened string.
                body["findings"] = list(exc.findings)
            return ("invalid", exc.status, body, None)
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            logger.exception("request %s failed", request_id)
            return (
                "error",
                500,
                {"error": f"internal error: {exc}", "request_id": request_id},
                None,
            )


@dataclass
class SimulationServer:
    """The assembled service: HTTP front end + job manager + metrics.

    Binds its socket on construction; run with :meth:`serve_forever`
    (blocking; the CLI path) or :meth:`start` (background thread; tests
    and embedding).  Always :meth:`shutdown` — or use it as a context
    manager — so the queue drains and an owned cache closes.
    """

    config: ServiceConfig = field(default_factory=ServiceConfig)
    manager: Optional[JobManager] = None

    def __post_init__(self) -> None:
        self.metrics = ServiceMetrics()
        self.trace_cache: Optional[TraceCache] = (
            TraceCache(self.config.trace_cache_size)
            if self.config.trace_cache_size > 0
            else None
        )
        self._own_cache: Optional[ResultCache] = None
        if self.manager is None:
            cache_opt = self.config.cache
            cache: Optional[ResultCache] = None
            if cache_opt is True:
                cache = self._own_cache = ResultCache(default_cache_path())
            elif isinstance(cache_opt, (str, Path)):
                cache = self._own_cache = ResultCache(cache_opt)
            elif isinstance(cache_opt, ResultCache):
                cache = cache_opt
            self.manager = JobManager(
                workers=self.config.workers,
                queue_size=self.config.queue_size,
                cache=cache,
            )
        self._httpd = _ServiceHTTPServer(
            (self.config.host, self.config.port), _Handler
        )
        self._httpd.service = self
        self._request_counter = 0
        self._counter_lock = threading.Lock()
        self._shutdown_lock = threading.Lock()
        self._shut_down = False
        self._thread: Optional[threading.Thread] = None

    # -- identity ----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — the real port even with ``port=0``."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def next_request_id(self) -> str:
        with self._counter_lock:
            self._request_counter += 1
            return f"req-{self._request_counter:06d}"

    # -- metrics -----------------------------------------------------------

    def render_metrics(self) -> str:
        assert self.manager is not None
        cache = self.manager.cache
        stats = cache.stats if cache is not None else None
        trace_stats = (
            self.trace_cache.stats() if self.trace_cache is not None else None
        )
        return self.metrics.render(
            queue_depth=self.manager.depth,
            in_flight=self.manager.in_flight,
            workers=self.manager.workers,
            cache_hits=stats.hits if stats else 0,
            cache_misses=stats.misses if stats else 0,
            trace_cache_hits=trace_stats.hits if trace_stats else 0,
            trace_cache_misses=trace_stats.misses if trace_stats else 0,
            trace_cache_entries=trace_stats.entries if trace_stats else 0,
        )

    # -- lifecycle ---------------------------------------------------------

    def serve_forever(self) -> None:
        """Run the accept loop in this thread until :meth:`shutdown`."""
        self._httpd.serve_forever(poll_interval=0.1)

    def start(self) -> "SimulationServer":
        """Run the accept loop in a background thread (tests/embedding)."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="simmr-service", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self, *, drain: bool = True) -> None:
        """Stop accepting, drain the queue, finish in-flight responses.

        Safe to call from any thread except the one inside
        :meth:`serve_forever` (signal handlers hop threads via
        :func:`install_signal_handlers`).  Idempotent.
        """
        with self._shutdown_lock:
            if self._shut_down:
                return
            self._shut_down = True
        assert self.manager is not None
        self._httpd.shutdown()  # stop the accept loop
        self.manager.close(drain=drain)
        self._httpd.server_close()  # joins outstanding handler threads
        if self._thread is not None:
            self._thread.join(timeout=10)
        if self._own_cache is not None:
            self._own_cache.close()

    def __enter__(self) -> "SimulationServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


def install_signal_handlers(server: SimulationServer) -> None:
    """Arrange SIGTERM/SIGINT to drain ``server`` gracefully.

    The handler only *starts* the shutdown (on a fresh thread —
    :meth:`SimulationServer.shutdown` must not run on the accept-loop
    thread the signal interrupts); ``serve_forever`` then returns once
    the accept loop stops, and the caller finishes its teardown.
    Main-thread only, like any :func:`signal.signal` call.
    """

    def _on_signal(signum: int, frame: object) -> None:
        logger.info("signal %d: draining", signum)
        threading.Thread(
            target=server.shutdown, name="simmr-drain", daemon=True
        ).start()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
