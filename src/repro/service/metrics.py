"""Live service metrics, rendered in Prometheus text format.

Counters, gauges and a bounded latency reservoir for the simulation
service.  Everything is stdlib: a scrape of ``/metrics`` renders the
exposition-format text (``# HELP`` / ``# TYPE`` + samples) directly, so
any Prometheus-compatible collector — or ``curl`` — can watch queue
depth, cache effectiveness and request latency quantiles without the
service growing a dependency.

Latency quantiles are computed over a fixed-size reservoir of the most
recent observations (default 1024): exact enough for p50/p95 dashboards,
O(1) memory however long the service runs.
"""

from __future__ import annotations

import threading
from bisect import insort
from collections import deque
from typing import Optional

__all__ = ["ServiceMetrics", "PROMETHEUS_CONTENT_TYPE"]

#: The exposition-format content type ``/metrics`` responds with.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: ``simmr_requests_total`` statuses, pre-declared so every series shows
#: up (as 0) from the first scrape — absent series confuse rate() queries.
REQUEST_STATUSES = ("ok", "cached", "rejected", "invalid", "timeout", "error")


def _quantile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolated quantile of an ascending-sorted sample."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return sorted_values[low] * (1.0 - fraction) + sorted_values[high] * fraction


class ServiceMetrics:
    """Thread-safe counters + latency reservoir for one service process."""

    def __init__(self, *, reservoir_size: int = 1024) -> None:
        self._lock = threading.Lock()
        self._requests: dict[str, int] = {status: 0 for status in REQUEST_STATUSES}
        self._latencies: deque[float] = deque(maxlen=reservoir_size)
        self._latency_count = 0
        self._latency_sum = 0.0

    # -- recording ---------------------------------------------------------

    def count_request(self, status: str) -> None:
        """Count one finished request under a ``REQUEST_STATUSES`` label."""
        with self._lock:
            self._requests[status] = self._requests.get(status, 0) + 1

    def observe_latency(self, seconds: float) -> None:
        """Record one request's wall-clock latency."""
        with self._lock:
            self._latencies.append(seconds)
            self._latency_count += 1
            self._latency_sum += seconds

    # -- reading -----------------------------------------------------------

    def request_count(self, status: Optional[str] = None) -> int:
        with self._lock:
            if status is not None:
                return self._requests.get(status, 0)
            return sum(self._requests.values())

    def latency_quantiles(self, *qs: float) -> list[float]:
        """Quantiles over the recent-latency reservoir."""
        with self._lock:
            ordered: list[float] = []
            for value in self._latencies:
                insort(ordered, value)
        return [_quantile(ordered, q) for q in qs]

    # -- exposition --------------------------------------------------------

    def render(
        self,
        *,
        queue_depth: int = 0,
        in_flight: int = 0,
        workers: int = 0,
        cache_hits: int = 0,
        cache_misses: int = 0,
        trace_cache_hits: int = 0,
        trace_cache_misses: int = 0,
        trace_cache_entries: int = 0,
    ) -> str:
        """The full ``/metrics`` page, Prometheus text format."""
        with self._lock:
            requests = dict(self._requests)
            count = self._latency_count
            total = self._latency_sum
            ordered: list[float] = []
            for value in self._latencies:
                insort(ordered, value)
        p50 = _quantile(ordered, 0.50)
        p95 = _quantile(ordered, 0.95)
        lookups = cache_hits + cache_misses
        hit_rate = cache_hits / lookups if lookups else 0.0

        lines = [
            "# HELP simmr_requests_total Finished simulation requests by outcome.",
            "# TYPE simmr_requests_total counter",
        ]
        for status in sorted(requests):
            lines.append(f'simmr_requests_total{{status="{status}"}} {requests[status]}')
        lines += [
            "# HELP simmr_queue_depth Jobs waiting in the bounded queue.",
            "# TYPE simmr_queue_depth gauge",
            f"simmr_queue_depth {queue_depth}",
            "# HELP simmr_jobs_in_flight Jobs currently executing on a worker.",
            "# TYPE simmr_jobs_in_flight gauge",
            f"simmr_jobs_in_flight {in_flight}",
            "# HELP simmr_workers Size of the persistent worker pool.",
            "# TYPE simmr_workers gauge",
            f"simmr_workers {workers}",
            "# HELP simmr_cache_lookups_total Result-cache lookups by outcome.",
            "# TYPE simmr_cache_lookups_total counter",
            f'simmr_cache_lookups_total{{outcome="hit"}} {cache_hits}',
            f'simmr_cache_lookups_total{{outcome="miss"}} {cache_misses}',
            "# HELP simmr_cache_hit_rate Fraction of cache lookups that hit.",
            "# TYPE simmr_cache_hit_rate gauge",
            f"simmr_cache_hit_rate {hit_rate:.6f}",
            "# HELP simmr_trace_cache_lookups_total Parsed-trace LRU lookups "
            "by outcome.",
            "# TYPE simmr_trace_cache_lookups_total counter",
            f'simmr_trace_cache_lookups_total{{outcome="hit"}} {trace_cache_hits}',
            f'simmr_trace_cache_lookups_total{{outcome="miss"}} {trace_cache_misses}',
            "# HELP simmr_trace_cache_entries Parsed traces currently held.",
            "# TYPE simmr_trace_cache_entries gauge",
            f"simmr_trace_cache_entries {trace_cache_entries}",
            "# HELP simmr_request_latency_seconds Request latency "
            "(recent-sample quantiles).",
            "# TYPE simmr_request_latency_seconds summary",
            f'simmr_request_latency_seconds{{quantile="0.5"}} {p50:.6f}',
            f'simmr_request_latency_seconds{{quantile="0.95"}} {p95:.6f}',
            f"simmr_request_latency_seconds_sum {total:.6f}",
            f"simmr_request_latency_seconds_count {count}",
        ]
        return "\n".join(lines) + "\n"
