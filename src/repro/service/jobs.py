"""The service's job queue: bounded admission, persistent workers, cache front.

The middle layer between the HTTP handlers and the simulation engine.
Three responsibilities, in request order:

1. **Cache front.**  ``submit`` computes the request's content address
   (the same :func:`~repro.parallel.cache.cache_key` the sweep executor
   uses) and serves a stored result immediately — a repeated request
   never touches the queue, let alone the engine.
2. **Bounded admission.**  Misses go into a bounded queue; when it is
   full, ``submit`` raises :class:`QueueFullError` carrying a
   ``retry_after`` estimate instead of blocking, so the server can
   answer 503 + ``Retry-After`` and the caller's thread is never parked
   on a saturated service (backpressure, not buffering).
3. **Persistent workers.**  A fixed pool of worker threads drains the
   queue, each job executing through the same
   :func:`~repro.parallel.executor.simulate_many` machinery as a local
   run — deterministic seeds, BLAKE2b event digests, cache stores — so
   a service result is verifiably byte-identical to a local replay.

Shutdown is a drain: ``close()`` stops admission, lets the workers
finish everything already queued (or cancels the backlog with
``drain=False``), and joins the pool.  Every waiting ticket is always
completed — with an outcome or an error — so no caller deadlocks on a
dying service.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from math import ceil
from typing import Callable, Optional

from ..core.walltime import elapsed_since, perf_seconds
from ..parallel.cache import ResultCache, cache_key
from ..parallel.executor import SimOutcome, simulate_many
from .protocol import ReplayRequest

__all__ = ["JobManager", "JobTicket", "QueueFullError", "ServiceClosedError"]

ExecuteFn = Callable[[ReplayRequest], SimOutcome]


class QueueFullError(Exception):
    """The bounded queue rejected a job (backpressure, answer 503)."""

    def __init__(self, depth: int, retry_after: float) -> None:
        super().__init__(f"job queue full ({depth} queued); retry in {retry_after:g}s")
        self.depth = depth
        #: Suggested client wait before retrying (the 503 Retry-After).
        self.retry_after = retry_after


class ServiceClosedError(Exception):
    """The manager is shutting down and no longer accepts jobs."""


@dataclass
class JobTicket:
    """One submitted job's completion handle.

    The HTTP handler blocks on :meth:`wait` (with the request's
    timeout); a worker fills in exactly one of ``outcome`` / ``error``
    and sets the event.  Cache-front hits come back already completed.
    """

    request: ReplayRequest
    outcome: Optional[SimOutcome] = None
    error: Optional[BaseException] = None
    #: Seconds the job waited in the queue before a worker picked it up
    #: (0 for cache-front hits).
    queue_seconds: float = 0.0
    _done: threading.Event = field(default_factory=threading.Event, repr=False)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job finishes; False if ``timeout`` elapsed first."""
        return self._done.wait(timeout)

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def _finish(
        self,
        outcome: Optional[SimOutcome] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        self.outcome = outcome
        self.error = error
        self._done.set()


_SENTINEL = object()


class JobManager:
    """Bounded job queue drained by a persistent worker pool.

    ``execute_fn`` is the single seam: it maps a validated request to a
    :class:`SimOutcome` and defaults to the real engine path (a
    one-task :func:`simulate_many` sharing this manager's result
    cache).  Tests inject a blocking stand-in to pin queue-overflow and
    drain behaviour deterministically.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        queue_size: int = 16,
        cache: Optional[ResultCache] = None,
        execute_fn: Optional[ExecuteFn] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        self.workers = workers
        self.queue_size = queue_size
        self.cache = cache
        self._execute: ExecuteFn = execute_fn if execute_fn is not None else self._simulate
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize=queue_size)
        self._lock = threading.Lock()
        self._accepting = True
        self._cancelled = False
        self._in_flight = 0
        #: Jobs that ran on a worker (cache-front hits excluded).
        self.executed = 0
        #: Jobs answered straight from the cache front.
        self.front_hits = 0
        # EWMA of recent execution seconds; seeds the Retry-After estimate.
        self._ewma_seconds = 0.5
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"simmr-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- the engine seam ---------------------------------------------------

    def _simulate(self, request: ReplayRequest) -> SimOutcome:
        [outcome] = simulate_many(
            {request.digest: request.trace},
            [request.task()],
            workers=0,
            cache=self.cache,
            digest=True,
        )
        return outcome

    # -- submission --------------------------------------------------------

    def request_key(self, request: ReplayRequest) -> str:
        """The content address this request's result is cached under."""
        task = request.task()
        return cache_key(request.digest, request.scheduler.identity(), task.engine_config())

    def submit(self, request: ReplayRequest) -> JobTicket:
        """Admit one job: cache front, then the bounded queue.

        Raises :class:`QueueFullError` when the queue is saturated and
        :class:`ServiceClosedError` after :meth:`close` began.
        """
        with self._lock:
            if not self._accepting:
                raise ServiceClosedError("service is shutting down")
        ticket = JobTicket(request=request)
        if self.cache is not None:
            hit = self.cache.get(self.request_key(request))
            if hit is not None:
                with self._lock:
                    self.front_hits += 1
                ticket._finish(
                    SimOutcome(
                        task=request.task(),
                        result=hit,
                        cached=True,
                        key=self.request_key(request),
                        seed=0,
                    )
                )
                return ticket
        ticket.queue_seconds = perf_seconds()  # re-based when a worker dequeues
        try:
            self._queue.put_nowait(ticket)
        except queue.Full:
            raise QueueFullError(self._queue.qsize(), self.retry_after()) from None
        return ticket

    def retry_after(self) -> float:
        """Seconds a rejected caller should wait before retrying.

        The backlog ahead of a new job, paced at the recent per-job
        execution rate, clamped to [1, 60] so a misestimate never turns
        into a zero-sleep retry storm or an hour-long backoff.
        """
        with self._lock:
            backlog = self._queue.qsize() + self._in_flight
            pace = self._ewma_seconds
        estimate = ceil(backlog * pace / self.workers) if backlog else 1
        return float(min(60, max(1, estimate)))

    # -- introspection -----------------------------------------------------

    @property
    def depth(self) -> int:
        """Jobs waiting in the queue (excludes in-flight)."""
        return self._queue.qsize()

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    # -- the pool ----------------------------------------------------------

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SENTINEL:
                self._queue.task_done()
                return
            ticket = item  # type: ignore[assignment]
            assert isinstance(ticket, JobTicket)
            ticket.queue_seconds = elapsed_since(ticket.queue_seconds)
            if self._cancelled:
                ticket._finish(error=ServiceClosedError("service shut down before "
                                                        "this job ran"))
                self._queue.task_done()
                continue
            with self._lock:
                self._in_flight += 1
            start = perf_seconds()
            try:
                outcome = self._execute(ticket.request)
            except BaseException as exc:  # noqa: B036 - must complete the ticket
                ticket._finish(error=exc)
            else:
                ticket._finish(outcome=outcome)
            finally:
                seconds = elapsed_since(start)
                with self._lock:
                    self._in_flight -= 1
                    self.executed += 1
                    self._ewma_seconds = 0.7 * self._ewma_seconds + 0.3 * seconds
                self._queue.task_done()

    # -- shutdown ----------------------------------------------------------

    def close(self, *, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop admission and wind the pool down.

        ``drain=True`` (the default) finishes every queued job first;
        ``drain=False`` fails queued-but-unstarted jobs with
        :class:`ServiceClosedError` (their tickets still complete, so
        no waiter hangs).  In-flight jobs always run to completion —
        the engine has no preemption point.  Idempotent.
        """
        with self._lock:
            if not self._accepting:
                return
            self._accepting = False
            if not drain:
                self._cancelled = True
        for _ in self._threads:
            self._queue.put(_SENTINEL)
        for thread in self._threads:
            thread.join(timeout)

    def __enter__(self) -> "JobManager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
