"""Request/response schema of the simulation service.

One wire format, validated in one place: a JSON document describing a
replay — the trace (inline, or a path the *server* resolves inside its
configured trace root), the scheduler as a symbolic
:class:`~repro.parallel.executor.SchedulerSpec`, and the engine
configuration.  :func:`parse_request` turns the untrusted document into
a typed :class:`ReplayRequest` or raises :class:`ProtocolError` with the
HTTP status the server should answer; nothing downstream of it touches
raw JSON.  The same module builds the documents the client sends
(:func:`request_document`), so client and server cannot drift apart.

Validation is strict — unknown top-level or config keys are rejected —
because a silently ignored misspelled knob (``"slowstrat"``) would
return a *wrong simulation* with a 200 status, the worst possible
failure mode for a service whose pitch is verifiable replays.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .tracecache import TraceCache

from ..core.cluster import ClusterConfig
from ..core.job import TraceJob
from ..parallel.executor import SchedulerSpec, SimTask, spec_kinds
from ..sanitize.digest import trace_digest
from ..trace.schema import trace_from_dict, trace_to_dict

__all__ = [
    "ProtocolError",
    "ReplayRequest",
    "parse_request",
    "request_document",
]

#: Engine knobs a request may set, with their defaults.
_CONFIG_DEFAULTS: dict[str, Any] = {
    "map_slots": 64,
    "reduce_slots": 64,
    "slowstart": 0.05,
    "preemption": False,
    "engine": "columnar",
}

_TOP_LEVEL_KEYS = frozenset({"trace", "trace_path", "scheduler", "config", "timeout"})
_SCHEDULER_KEYS = frozenset({"kind", "name", "kwargs", "seeded"})


class ProtocolError(Exception):
    """A request the service must refuse, with the HTTP status to use.

    ``findings`` (optional) carries structured rejection detail — one
    dict per finding in the :class:`~repro.analysis.findings.Finding`
    wire shape (``rule_id``, ``severity``, ``message``, ``path``/
    ``line`` into the submission) — so a rejected ``policy`` or
    ``inline-certified`` scheduler gets machine-readable diagnostics in
    the 4xx body, not just a flattened reason string.
    """

    def __init__(
        self,
        message: str,
        status: int = 400,
        findings: Sequence[Mapping[str, Any]] = (),
    ) -> None:
        super().__init__(message)
        self.status = status
        self.findings: tuple[dict[str, Any], ...] = tuple(
            dict(f) for f in findings
        )


@dataclass(frozen=True)
class ReplayRequest:
    """A validated replay: everything :func:`simulate_many` needs."""

    trace: tuple[TraceJob, ...]
    #: Content digest of ``trace`` — the executor's trace_id and the
    #: first component of the result-cache key.
    digest: str
    scheduler: SchedulerSpec
    cluster: ClusterConfig
    slowstart: float
    preemption: bool
    #: Execution path: "columnar" (default) or "object".
    engine: str = "columnar"
    #: Client-requested wall-clock budget (seconds); None = server default.
    timeout: Optional[float] = None

    def task(self) -> SimTask:
        """The executor task this request resolves to."""
        return SimTask(
            trace_id=self.digest,
            scheduler=self.scheduler,
            cluster=self.cluster,
            slowstart=self.slowstart,
            preemption=self.preemption,
            engine=self.engine,
        )


def _require(condition: bool, message: str, status: int = 400) -> None:
    if not condition:
        raise ProtocolError(message, status=status)


def _certification_finding(
    name: str, message: str, line: int = 0, hint: str = ""
) -> dict[str, Any]:
    """One CERT001 finding dict for a rejected inline submission.

    Shaped like :meth:`repro.analysis.findings.Finding.to_dict` so
    policy (POL00x) and certification (CERT001) rejections present one
    uniform findings schema to clients.
    """
    from ..analysis.findings import Finding, Severity

    return Finding(
        path=f"<inline:{name}>", line=line, col=0,
        rule_id="CERT001", severity=Severity.ERROR,
        message=message, hint=hint,
    ).to_dict()


def _parse_scheduler(raw: Any) -> SchedulerSpec:
    if raw is None:
        raw = "fifo"
    if isinstance(raw, str):
        raw = {"kind": "registry", "name": raw}
    _require(isinstance(raw, dict), "'scheduler' must be a name or an object")
    unknown = set(raw) - _SCHEDULER_KEYS
    _require(not unknown, f"unknown scheduler key(s): {sorted(unknown)}")
    kind = raw.get("kind", "registry")
    name = raw.get("name")
    kwargs = raw.get("kwargs", {})
    seeded = raw.get("seeded", False)
    _require(isinstance(kind, str) and kind in spec_kinds(),
             f"unknown scheduler kind {kind!r}; known: {list(spec_kinds())}")
    _require(isinstance(name, str) and bool(name), "'scheduler.name' must be a string")
    _require(isinstance(kwargs, dict) and all(isinstance(k, str) for k in kwargs),
             "'scheduler.kwargs' must be an object with string keys")
    _require(isinstance(seeded, bool), "'scheduler.seeded' must be a boolean")
    if kind == "inline-certified":
        # Inline scheduler source is accepted over the wire ONLY with a
        # passing effect-safety certificate; a rejected submission gets
        # 422 (well-formed request, unacceptable content) carrying the
        # witness chain so the submitter can see *which* call reaches
        # *which* effectful sink.
        source = kwargs.get("source")
        _require(isinstance(source, str) and bool(source.strip()),
                 "'scheduler.kwargs.source' must be the scheduler module "
                 "source text for kind 'inline-certified'")
        from ..analysis.certify import (
            MAX_INLINE_SOURCE,
            CertificationError,
            certify_inline,
            failure_message,
        )

        # Certification runs whole-program analysis at request-parse
        # time on unauthenticated input; cap the source size so unique
        # oversized submissions cannot be used as a CPU DoS vector.
        _require(len(source) <= MAX_INLINE_SOURCE,
                 f"inline scheduler source exceeds {MAX_INLINE_SOURCE} "
                 f"bytes", status=413)

        try:
            certificate = certify_inline(source, name)
        except CertificationError as exc:
            raise ProtocolError(
                f"scheduler certification failed: {exc}", status=422,
                findings=[_certification_finding(name, str(exc))],
            ) from None
        if not certificate["service_safe"]:
            witness = certificate.get("witness") or {}
            raise ProtocolError(
                f"scheduler rejected: {failure_message(certificate)}",
                status=422,
                findings=[_certification_finding(
                    name,
                    failure_message(certificate),
                    line=int(witness.get("line") or 0),
                    hint=" -> ".join(witness.get("chain") or ()),
                )],
            )
    if kind == "policy":
        # A policy tree is accepted only when the POL00x validation pass
        # certifies it (no ERROR findings); rejections carry the full
        # finding list with JSON paths into the tree.  The accepted tree
        # is re-serialized canonically so equal policies share one
        # content identity (= one result-cache key) regardless of the
        # submitted formatting.
        tree = kwargs.get("tree")
        _require(isinstance(tree, (str, dict)),
                 "'scheduler.kwargs.tree' must be the policy document "
                 "(object, or canonical JSON text) for kind 'policy'")
        from ..policy import MAX_POLICY_TEXT, canonical_policy_json, validate_policy

        if isinstance(tree, str):
            _require(len(tree) <= MAX_POLICY_TEXT,
                     f"policy text exceeds {MAX_POLICY_TEXT} bytes",
                     status=413)
        report = validate_policy(tree, label=f"policy:{name}")
        if not report.ok:
            first = report.errors[0] if report.errors else report.findings[0]
            raise ProtocolError(
                f"policy rejected: {first.rule_id} at {first.path}: "
                f"{first.message}",
                status=422,
                findings=[f.to_dict() for f in report.findings],
            )
        assert report.doc is not None
        kwargs = {**kwargs, "tree": canonical_policy_json(report.doc)}
    spec = SchedulerSpec(
        kind=kind, name=name, kwargs=tuple(sorted(kwargs.items())), seeded=seeded
    )
    # Build (and discard) one instance now so an unknown policy name or a
    # bad constructor argument is a 400 at submit time, not a 500 when a
    # worker finally dequeues the job.
    try:
        spec.build(seed=0)
    except (ValueError, TypeError) as exc:
        raise ProtocolError(f"cannot build scheduler: {exc}") from None
    return spec


def _parse_config(raw: Any) -> dict[str, Any]:
    if raw is None:
        raw = {}
    _require(isinstance(raw, dict), "'config' must be an object")
    unknown = set(raw) - set(_CONFIG_DEFAULTS)
    _require(not unknown, f"unknown config key(s): {sorted(unknown)}; "
             f"known: {sorted(_CONFIG_DEFAULTS)}")
    config = {**_CONFIG_DEFAULTS, **raw}
    for slots_key in ("map_slots", "reduce_slots"):
        value = config[slots_key]
        _require(isinstance(value, int) and not isinstance(value, bool) and value > 0,
                 f"'config.{slots_key}' must be a positive integer")
    slowstart = config["slowstart"]
    _require(isinstance(slowstart, (int, float)) and not isinstance(slowstart, bool)
             and 0.0 <= float(slowstart) <= 1.0,
             "'config.slowstart' must be a number in [0, 1]")
    config["slowstart"] = float(slowstart)
    _require(isinstance(config["preemption"], bool),
             "'config.preemption' must be a boolean")
    _require(config["engine"] in ("object", "columnar"),
             "'config.engine' must be 'object' or 'columnar'")
    return config


def _load_trace(
    doc: Mapping[str, Any],
    trace_root: Optional[Path],
    trace_cache: "Optional[TraceCache]" = None,
) -> tuple[Sequence[TraceJob], Optional[str]]:
    """The request's trace and, when already known, its content digest.

    Inline traces always parse fresh (their digest is computed by the
    caller).  Server-side ``trace_path`` traces go through the service's
    :class:`~repro.service.tracecache.TraceCache` when one is
    configured, which also pins the digest — a cache hit costs one
    ``stat``, no I/O and no parsing.
    """
    inline = doc.get("trace")
    by_path = doc.get("trace_path")
    _require((inline is None) != (by_path is None),
             "exactly one of 'trace' (inline document) or 'trace_path' "
             "(server-side file) is required")
    if inline is not None:
        _require(isinstance(inline, dict), "'trace' must be a trace document object")
        try:
            return trace_from_dict(inline), None
        except (ValueError, KeyError, TypeError) as exc:
            raise ProtocolError(f"bad trace document: {exc}") from None
    _require(isinstance(by_path, str) and bool(by_path),
             "'trace_path' must be a non-empty string")
    _require(trace_root is not None,
             "this server does not serve traces by path (no trace root configured)",
             status=403)
    assert trace_root is not None
    _require(not Path(by_path).is_absolute(), "'trace_path' must be relative")
    resolved = (trace_root / by_path).resolve()
    root = trace_root.resolve()
    _require(resolved == root or root in resolved.parents,
             "'trace_path' escapes the server trace root", status=403)
    if not resolved.is_file():
        raise ProtocolError(f"no such trace on the server: {by_path}", status=404)
    from .tracecache import load_trace_cached

    try:
        return load_trace_cached(resolved, trace_cache)
    except (ValueError, KeyError, TypeError, OSError) as exc:
        raise ProtocolError(f"unreadable trace file {by_path}: {exc}") from None


def parse_request(
    doc: Any,
    *,
    trace_root: Optional[Path] = None,
    trace_cache: "Optional[TraceCache]" = None,
) -> ReplayRequest:
    """Validate one ``POST /simulate`` body into a :class:`ReplayRequest`.

    Raises :class:`ProtocolError` carrying the HTTP status: 400 for
    malformed documents, 403 for trace paths outside the configured
    root, 404 for a missing server-side trace file, 422 for an
    ``inline-certified`` scheduler whose source fails effect-safety
    certification or a ``policy`` tree failing POL00x validation — both
    with the structured finding list on ``exc.findings`` (rule id,
    message, line/path into the submission), which the server forwards
    in the response body.  ``trace_cache`` (optional) serves repeated
    ``trace_path`` requests from memory.
    """
    _require(isinstance(doc, dict), "request body must be a JSON object")
    unknown = set(doc) - _TOP_LEVEL_KEYS
    _require(not unknown, f"unknown request key(s): {sorted(unknown)}; "
             f"known: {sorted(_TOP_LEVEL_KEYS)}")

    trace, known_digest = _load_trace(doc, trace_root, trace_cache)
    _require(len(trace) > 0, "trace has no jobs")
    scheduler = _parse_scheduler(doc.get("scheduler"))
    config = _parse_config(doc.get("config"))

    timeout = doc.get("timeout")
    if timeout is not None:
        _require(isinstance(timeout, (int, float)) and not isinstance(timeout, bool)
                 and float(timeout) > 0.0,
                 "'timeout' must be a positive number of seconds")
        timeout = float(timeout)

    return ReplayRequest(
        trace=tuple(trace),
        digest=known_digest if known_digest is not None else trace_digest(trace),
        scheduler=scheduler,
        cluster=ClusterConfig(config["map_slots"], config["reduce_slots"]),
        slowstart=config["slowstart"],
        preemption=config["preemption"],
        engine=config["engine"],
        timeout=timeout,
    )


def request_document(
    *,
    trace: Optional[Sequence[TraceJob]] = None,
    trace_path: Optional[str] = None,
    scheduler: "str | SchedulerSpec" = "fifo",
    cluster: Optional[ClusterConfig] = None,
    slowstart: float = 0.05,
    preemption: bool = False,
    engine: str = "columnar",
    timeout: Optional[float] = None,
) -> dict[str, Any]:
    """The JSON document for one replay request (the client's half)."""
    if (trace is None) == (trace_path is None):
        raise ValueError("pass exactly one of trace= or trace_path=")
    if isinstance(scheduler, SchedulerSpec):
        if not scheduler.cacheable:
            raise ValueError("inline scheduler specs cannot be sent over the wire")
        scheduler_doc: Any = {
            "kind": scheduler.kind,
            "name": scheduler.name,
            "kwargs": dict(scheduler.kwargs),
            "seeded": scheduler.seeded,
        }
    else:
        scheduler_doc = scheduler
    cluster = cluster if cluster is not None else ClusterConfig(64, 64)
    doc: dict[str, Any] = {
        "scheduler": scheduler_doc,
        "config": {
            "map_slots": cluster.map_slots,
            "reduce_slots": cluster.reduce_slots,
            "slowstart": slowstart,
            "preemption": preemption,
            "engine": engine,
        },
    }
    if trace is not None:
        doc["trace"] = trace_to_dict(trace)
    else:
        doc["trace_path"] = trace_path
    if timeout is not None:
        doc["timeout"] = timeout
    return doc
