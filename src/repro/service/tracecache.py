"""In-service LRU of parsed traces: stat, don't re-parse.

Every ``/simulate`` request naming a server-side ``trace_path`` used to
re-read and re-parse the trace file, even though a replay service sees
the same handful of traces over and over.  :class:`TraceCache` keeps the
most recently used parsed traces in memory, keyed by resolved path and
validated by the file's identity ``(mtime_ns, size)`` — so an entry is
served only while the bytes on disk are provably the ones that were
parsed, and editing or replacing a trace file invalidates its entry on
the very next request.  Each entry also pins the trace's canonical
content digest (:func:`~repro.sanitize.digest.trace_digest`), so a
cache hit skips digest recomputation too and the executor/result-cache
keys stay byte-identical to a cold load.

Binary traces (:mod:`repro.trace.binfmt`) get a second win on the cold
path: their header already records the canonical digest, so loading one
costs an ``mmap`` plus an O(jobs) header walk — no JSON parse and no
canonical re-serialization.  Trace files live under the operator's
configured trace root, so the header digest is trusted here; clients
that must not trust a file can always recompute via
:func:`~repro.sanitize.digest.trace_digest`.

The cache is shared across the service's request threads; a plain lock
guards the LRU order book-keeping.  Loads happen outside the lock, so a
slow parse never blocks hits on other traces (two threads may race to
load the same cold trace; both produce identical entries, the second
insert wins harmlessly).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from ..core.job import TraceJob

__all__ = ["TraceCache", "TraceCacheStats"]


@dataclass(frozen=True)
class TraceCacheStats:
    """Counters of one :class:`TraceCache` (for ``/metrics``)."""

    hits: int
    misses: int
    evictions: int
    entries: int
    capacity: int


@dataclass(frozen=True)
class _Entry:
    mtime_ns: int
    size: int
    trace: tuple[TraceJob, ...]
    digest: str


class TraceCache:
    """LRU of parsed traces keyed by ``(path, mtime, trace_digest)``.

    ``capacity`` bounds the number of distinct trace files held; 0
    disables caching entirely (every :meth:`load` parses).  Entries are
    validated against the file's current ``(st_mtime_ns, st_size)`` on
    every hit, so staleness is bounded by one ``stat`` call, not by a
    TTL.
    """

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 0:
            raise ValueError("trace cache capacity must be >= 0")
        self.capacity = capacity
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- the one entry point ------------------------------------------------

    def load(self, path: Path) -> tuple[tuple[TraceJob, ...], str]:
        """The parsed trace and its canonical digest for ``path``.

        Served from memory when the file is unchanged since it was
        parsed; otherwise (re-)loaded — binary traces via the zero-copy
        ``mmap`` path, JSON traces via the schema loader — and cached.
        Propagates ``OSError`` for unreadable files and ``ValueError``
        for undecodable ones; failures are never cached.
        """
        stat = path.stat()
        key = str(path)
        with self._lock:
            entry = self._entries.get(key)
            if (
                entry is not None
                and entry.mtime_ns == stat.st_mtime_ns
                and entry.size == stat.st_size
            ):
                self._entries.move_to_end(key)
                self._hits += 1
                return entry.trace, entry.digest
            self._misses += 1
        trace, digest = _parse_trace_file(path)
        if self.capacity > 0:
            with self._lock:
                self._entries[key] = _Entry(
                    mtime_ns=stat.st_mtime_ns,
                    size=stat.st_size,
                    trace=trace,
                    digest=digest,
                )
                self._entries.move_to_end(key)
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self._evictions += 1
        return trace, digest

    # -- maintenance / introspection ---------------------------------------

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> TraceCacheStats:
        with self._lock:
            return TraceCacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
                capacity=self.capacity,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, path: "str | Path") -> bool:
        with self._lock:
            return str(path) in self._entries


def _parse_trace_file(path: Path) -> tuple[tuple[TraceJob, ...], str]:
    """Cold-load one trace file in whichever format it is on disk."""
    from ..trace.binfmt import is_binary_trace_file, load_columns

    if is_binary_trace_file(path):
        columns, digest = load_columns(path)
        return tuple(columns.jobs()), digest
    from ..sanitize.digest import trace_digest
    from ..trace.schema import load_trace

    trace = tuple(load_trace(path))
    return trace, trace_digest(trace)


def load_trace_cached(
    path: Path, cache: Optional[TraceCache]
) -> tuple[tuple[TraceJob, ...], str]:
    """Load through ``cache`` when one is configured, directly otherwise."""
    if cache is not None:
        return cache.load(path)
    return _parse_trace_file(path)


__all__ += ["load_trace_cached"]
