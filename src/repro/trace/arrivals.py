"""Job arrival processes for synthetic workload generation.

The paper's scheduler case study "assume[s] that the inter-arrival time of
the jobs is exponential" (Section V-B) and sweeps the mean inter-arrival
time over 1..100000 s (Figures 7-8).  :class:`ExponentialArrivals` is that
process; the other processes support what-if studies (bursty periods,
back-to-back batch submission, replaying recorded submission times).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

__all__ = [
    "ArrivalProcess",
    "ExponentialArrivals",
    "PeriodicArrivals",
    "BatchArrivals",
    "RecordedArrivals",
]


class ArrivalProcess(ABC):
    """Generates monotonically non-decreasing submission times."""

    @abstractmethod
    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """``n`` submission times starting at (or after) time 0."""


class ExponentialArrivals(ArrivalProcess):
    """Poisson arrivals: i.i.d. exponential inter-arrival times.

    The first job arrives at time 0 (as when replaying a recorded trace
    whose clock starts at the first submission).
    """

    def __init__(self, mean_interarrival: float) -> None:
        if mean_interarrival <= 0:
            raise ValueError(
                f"mean inter-arrival time must be > 0, got {mean_interarrival}"
            )
        self.mean_interarrival = float(mean_interarrival)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        if n == 0:
            return np.empty(0)
        gaps = rng.exponential(self.mean_interarrival, n)
        gaps[0] = 0.0
        return np.cumsum(gaps)


class PeriodicArrivals(ArrivalProcess):
    """Fixed-interval submissions: 0, T, 2T, ..."""

    def __init__(self, period: float) -> None:
        if period < 0:
            raise ValueError(f"period must be >= 0, got {period}")
        self.period = float(period)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return np.arange(n, dtype=np.float64) * self.period


class BatchArrivals(ArrivalProcess):
    """All jobs submitted simultaneously at time 0 (a batch drop)."""

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return np.zeros(n)


class RecordedArrivals(ArrivalProcess):
    """Replays recorded submission times, normalized to start at 0.

    If more jobs are requested than recorded times, the recorded gaps are
    tiled forward ("play it again").
    """

    def __init__(self, times: Sequence[float]) -> None:
        arr = np.asarray(sorted(times), dtype=np.float64)
        if arr.size == 0:
            raise ValueError("at least one recorded arrival time is required")
        if not np.all(np.isfinite(arr)):
            raise ValueError("recorded arrival times must be finite")
        self.times = arr - arr[0]

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n <= self.times.size:
            return self.times[:n].copy()
        out = list(self.times)
        span = self.times[-1]
        gaps = np.diff(self.times) if self.times.size > 1 else np.array([1.0])
        i = 0
        while len(out) < n:
            span += gaps[i % gaps.size]
            out.append(span)
            i += 1
        return np.asarray(out)
