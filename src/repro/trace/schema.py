"""JSON serialization of job profiles and traces.

The trace format is deliberately plain: a versioned JSON document a user
can inspect, diff, and hand-edit for what-if studies.  The same dicts are
what :class:`~repro.trace.database.TraceDatabase` persists.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from ..core.job import JobProfile, TraceJob

__all__ = [
    "SCHEMA_VERSION",
    "profile_to_dict",
    "profile_from_dict",
    "trace_to_dict",
    "trace_from_dict",
    "save_trace",
    "load_trace",
]

SCHEMA_VERSION = 1


def profile_to_dict(profile: JobProfile) -> dict[str, Any]:
    """JSON-serializable dict of a job template."""
    return {
        "name": profile.name,
        "num_maps": profile.num_maps,
        "num_reduces": profile.num_reduces,
        "map_durations": profile.map_durations.tolist(),
        "first_shuffle_durations": profile.first_shuffle_durations.tolist(),
        "typical_shuffle_durations": profile.typical_shuffle_durations.tolist(),
        "reduce_durations": profile.reduce_durations.tolist(),
    }


def profile_from_dict(data: dict[str, Any]) -> JobProfile:
    """Rebuild a :class:`JobProfile` from :func:`profile_to_dict` output."""
    try:
        return JobProfile(
            name=data["name"],
            num_maps=int(data["num_maps"]),
            num_reduces=int(data["num_reduces"]),
            map_durations=np.asarray(data["map_durations"], dtype=np.float64),
            first_shuffle_durations=np.asarray(
                data["first_shuffle_durations"], dtype=np.float64
            ),
            typical_shuffle_durations=np.asarray(
                data["typical_shuffle_durations"], dtype=np.float64
            ),
            reduce_durations=np.asarray(data["reduce_durations"], dtype=np.float64),
        )
    except KeyError as exc:
        raise ValueError(f"profile dict missing required field {exc}") from None


def trace_to_dict(trace: Sequence[TraceJob]) -> dict[str, Any]:
    """JSON-serializable document for a full replayable trace."""
    return {
        "schema_version": SCHEMA_VERSION,
        "jobs": [
            {
                "submit_time": job.submit_time,
                "deadline": job.deadline,
                "depends_on": job.depends_on,
                "profile": profile_to_dict(job.profile),
            }
            for job in trace
        ],
    }


def trace_from_dict(data: dict[str, Any]) -> list[TraceJob]:
    """Rebuild a trace from :func:`trace_to_dict` output."""
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema version {version!r} (expected {SCHEMA_VERSION})"
        )
    jobs = []
    for entry in data["jobs"]:
        jobs.append(
            TraceJob(
                profile=profile_from_dict(entry["profile"]),
                submit_time=float(entry["submit_time"]),
                deadline=None if entry.get("deadline") is None else float(entry["deadline"]),
                depends_on=(
                    None if entry.get("depends_on") is None else int(entry["depends_on"])
                ),
            )
        )
    return jobs


def save_trace(trace: Sequence[TraceJob], path: str | Path) -> None:
    """Write a trace to a JSON file."""
    Path(path).write_text(json.dumps(trace_to_dict(trace)))


def load_trace(path: str | Path) -> list[TraceJob]:
    """Read a trace from a JSON file written by :func:`save_trace`."""
    return trace_from_dict(json.loads(Path(path).read_text()))
