"""Deadline assignment for synthetic and replayed workloads.

Paper Section V-B: "The job deadline (which is relative to the job
completion time) is set to be uniformly distributed in the following
interval ``[T_J, df * T_J]``, where ``T_J`` is the completion time of job
J given all the cluster resources (i.e., maximum amount of map/reduce
slots that job can utilize) and where ``df >= 1`` is a given deadline
factor."

``T_J`` is obtained exactly: the job is simulated alone on the full
cluster under FIFO (a microsecond-scale computation), and the result is
cached per ``(profile, cluster, slow-start)`` so sweeps over hundreds of
trace permutations don't recompute it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.cluster import ClusterConfig
from ..core.engine import SimulatorEngine
from ..core.job import JobProfile, TraceJob

__all__ = ["solo_completion_time", "DeadlineFactorPolicy", "clear_solo_cache"]

_SOLO_CACHE: dict[tuple, float] = {}


def clear_solo_cache() -> None:
    """Drop all memoized solo completion times (mainly for tests)."""
    _SOLO_CACHE.clear()


def _profile_key(profile: JobProfile) -> tuple:
    # Content-based key: profiles are immutable, and identical templates
    # (e.g. one profile replayed many times across trace permutations)
    # share one cache entry.  ``id()`` would be unsafe — ids are reused
    # after garbage collection.
    return (
        profile.name,
        profile.num_maps,
        profile.num_reduces,
        hash(profile.map_durations.tobytes()),
        hash(profile.first_shuffle_durations.tobytes()),
        hash(profile.typical_shuffle_durations.tobytes()),
        hash(profile.reduce_durations.tobytes()),
    )


def solo_completion_time(
    profile: JobProfile,
    cluster: ClusterConfig,
    min_map_percent_completed: float = 0.05,
) -> float:
    """T_J: the job's completion time alone on the full cluster.

    Simulated exactly with the SimMR engine under FIFO.  Cached by
    profile *content* plus the cluster shape and reduce slow-start
    threshold.
    """
    key = (
        _profile_key(profile),
        cluster.map_slots,
        cluster.reduce_slots,
        min_map_percent_completed,
    )
    cached = _SOLO_CACHE.get(key)
    if cached is not None:
        return cached
    # Local import avoids a schedulers <-> trace import cycle at load time.
    from ..schedulers.fifo import FIFOScheduler

    engine = SimulatorEngine(
        cluster,
        FIFOScheduler(),
        min_map_percent_completed=min_map_percent_completed,
        record_tasks=False,
    )
    result = engine.run([TraceJob(profile, 0.0)])
    t_j = result.jobs[0].completion_time
    assert t_j is not None  # a lone job always completes
    _SOLO_CACHE[key] = t_j
    return t_j


class DeadlineFactorPolicy:
    """Assigns ``deadline = submit + U[T_J, df * T_J]`` per the paper.

    Parameters
    ----------
    deadline_factor:
        The paper's ``df >= 1``.  ``df = 1`` pins every deadline to the
        job's best-case completion time — under it MinEDF and MaxEDF
        coincide (Figure 7(a)).
    cluster:
        The cluster whose *full* capacity defines ``T_J``.
    min_map_percent_completed:
        Forwarded to the engine when computing ``T_J`` (should match the
        replay configuration).
    """

    def __init__(
        self,
        deadline_factor: float,
        cluster: ClusterConfig,
        min_map_percent_completed: float = 0.05,
    ) -> None:
        if deadline_factor < 1.0:
            raise ValueError(f"deadline factor must be >= 1, got {deadline_factor}")
        self.deadline_factor = float(deadline_factor)
        self.cluster = cluster
        self.min_map_percent_completed = min_map_percent_completed

    def deadline_for(
        self,
        profile: JobProfile,
        submit_time: float,
        rng: np.random.Generator,
    ) -> float:
        """Absolute deadline for a job submitted at ``submit_time``."""
        t_j = solo_completion_time(profile, self.cluster, self.min_map_percent_completed)
        rel = rng.uniform(t_j, self.deadline_factor * t_j)
        return submit_time + rel

    def assign(
        self,
        jobs: list[TraceJob],
        rng: np.random.Generator,
    ) -> list[TraceJob]:
        """A copy of ``jobs`` with deadlines assigned by this policy."""
        return [
            TraceJob(
                profile=j.profile,
                submit_time=j.submit_time,
                deadline=self.deadline_for(j.profile, j.submit_time, rng),
            )
            for j in jobs
        ]
