"""Trace generation and persistence: MRProfiler's counterpart lives in
:mod:`repro.mrprofiler`; this package covers the Synthetic TraceGen, the
Trace Database, serialization, arrival/deadline processes, and the
trace-scaling extension."""

from .arrivals import (
    ArrivalProcess,
    BatchArrivals,
    ExponentialArrivals,
    PeriodicArrivals,
    RecordedArrivals,
)
from .binfmt import (
    BINARY_MAGIC,
    BINARY_VERSION,
    is_binary_trace_file,
    load_trace_auto,
    load_trace_bin,
    pack_trace,
    save_trace_bin,
    unpack_columns,
)
from .database import TraceDatabase
from .deadlines import DeadlineFactorPolicy, solo_completion_time
from .fit import fit_duration_distribution, fit_spec_from_profiles
from .distributions import (
    Constant,
    DurationDistribution,
    Empirical,
    Exponential,
    Gamma,
    LogNormal,
    TruncatedNormal,
    Uniform,
    Weibull,
    from_spec,
)
from .scaling import scale_profile
from .schema import (
    SCHEMA_VERSION,
    load_trace,
    profile_from_dict,
    profile_to_dict,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)
from .synthetic import SyntheticJobSpec, SyntheticTraceGen, TaskCount
from .tools import TraceSummary, compact_trace, concatenate_traces, trace_summary
from .workflows import WorkflowSpec, WorkflowStage, chain

__all__ = [
    "ArrivalProcess",
    "BINARY_MAGIC",
    "BINARY_VERSION",
    "BatchArrivals",
    "ExponentialArrivals",
    "PeriodicArrivals",
    "RecordedArrivals",
    "is_binary_trace_file",
    "load_trace_auto",
    "load_trace_bin",
    "pack_trace",
    "save_trace_bin",
    "unpack_columns",
    "TraceDatabase",
    "DeadlineFactorPolicy",
    "solo_completion_time",
    "fit_duration_distribution",
    "fit_spec_from_profiles",
    "Constant",
    "DurationDistribution",
    "Empirical",
    "Exponential",
    "Gamma",
    "LogNormal",
    "TruncatedNormal",
    "Uniform",
    "Weibull",
    "from_spec",
    "scale_profile",
    "SCHEMA_VERSION",
    "load_trace",
    "profile_from_dict",
    "profile_to_dict",
    "save_trace",
    "trace_from_dict",
    "trace_to_dict",
    "SyntheticJobSpec",
    "SyntheticTraceGen",
    "TaskCount",
    "TraceSummary",
    "compact_trace",
    "concatenate_traces",
    "trace_summary",
    "WorkflowSpec",
    "WorkflowStage",
    "chain",
]
