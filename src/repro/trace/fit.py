"""Fitting synthetic job specs from recorded profiles.

The paper's Section V-C workflow — extract duration distributions from
observations, fit a catalogue of families, keep the best by
Kolmogorov-Smirnov — applied to *any* recorded application, not just the
published Facebook CDFs.  The result is a
:class:`~repro.trace.synthetic.SyntheticJobSpec`, closing the loop:

    record executions -> fit a statistical model -> generate unlimited
    further executions of the "same" application.

Section II justifies this: duration distributions are stable across
executions of one application, so a model fitted on a few runs speaks
for the application.  :func:`fit_spec_from_profiles` verifies the claim
on its inputs (pairwise phase KL under a threshold) before fitting, and
refuses to blend profiles that look like different applications.
"""

from __future__ import annotations

from itertools import combinations
from typing import Optional, Sequence

import numpy as np

from ..core.job import JobProfile
from ..stats.fitting import CANDIDATE_FAMILIES, fit_best
from ..stats.kl import histogram_kl
from .distributions import DurationDistribution, Empirical
from .synthetic import SyntheticJobSpec, TaskCount

__all__ = ["fit_duration_distribution", "fit_spec_from_profiles"]

#: scipy family -> our distribution registry adapter.
_SUPPORTED_FAMILIES = ("lognorm", "expon", "gamma", "weibull_min", "norm")


def fit_duration_distribution(
    sample: Sequence[float],
    families: Sequence[str] = _SUPPORTED_FAMILIES,
    min_samples: int = 20,
) -> DurationDistribution:
    """Best-fitting generative distribution for observed durations.

    Falls back to :class:`Empirical` resampling when the sample is too
    small to fit meaningfully or no parametric family converges — the
    safe default for replay purposes.
    """
    arr = np.asarray(sample, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("need a non-empty 1-D duration sample")
    if arr.size < min_samples or np.all(arr == arr[0]):
        return Empirical(arr)
    try:
        best = fit_best(arr, families=families, fix_location_zero=True)
    except ValueError:
        return Empirical(arr)
    return _to_registry_distribution(best.family, best.params, arr)


def _to_registry_distribution(
    family: str, params: tuple[float, ...], sample: np.ndarray
) -> DurationDistribution:
    """Translate a scipy MLE fit into our serializable registry classes.

    Fits whose location shifts or shapes fall outside what the registry
    expresses (e.g. a strongly negative ``loc``) fall back to empirical
    resampling rather than distorting the model.
    """
    from .distributions import Exponential, Gamma, LogNormal, TruncatedNormal, Weibull

    try:
        if family == "lognorm":
            sigma, loc, scale = params
            if abs(loc) > 0.05 * float(sample.mean()):
                return Empirical(sample)
            return LogNormal(mu=float(np.log(scale)), sigma=float(sigma))
        if family == "expon":
            loc, scale = params
            if loc < 0 or scale <= 0:
                return Empirical(sample)
            # Exponential(mean) has loc 0; absorb a small positive loc.
            return Exponential(mean=float(loc + scale))
        if family == "gamma":
            shape, loc, scale = params
            if abs(loc) > 0.05 * float(sample.mean()) or shape <= 0 or scale <= 0:
                return Empirical(sample)
            return Gamma(shape=float(shape), scale=float(scale))
        if family == "weibull_min":
            shape, loc, scale = params
            if abs(loc) > 0.05 * float(sample.mean()) or shape <= 0 or scale <= 0:
                return Empirical(sample)
            return Weibull(shape=float(shape), scale=float(scale))
        if family == "norm":
            mu, sigma = params
            if mu < 0 or sigma <= 0:
                return Empirical(sample)
            return TruncatedNormal(mu=float(mu), sigma=float(sigma))
    except ValueError:
        return Empirical(sample)
    return Empirical(sample)


def fit_spec_from_profiles(
    profiles: Sequence[JobProfile],
    *,
    name: Optional[str] = None,
    families: Sequence[str] = _SUPPORTED_FAMILIES,
    same_app_kl_threshold: Optional[float] = 2.5,
) -> SyntheticJobSpec:
    """A generative job spec fitted to recorded executions.

    Parameters
    ----------
    profiles:
        One or more recorded executions of the *same* application.
    name:
        Spec name; defaults to the first profile's name.
    families:
        Candidate scipy families per phase (KS-ranked).
    same_app_kl_threshold:
        Before blending, pairwise per-phase symmetric KL between the
        inputs must stay under this threshold (Section II's stability
        property); pass ``None`` to skip the check.
    """
    if not profiles:
        raise ValueError("at least one recorded profile is required")

    def shuffle_sample(p: JobProfile) -> np.ndarray:
        parts = [
            a for a in (p.first_shuffle_durations, p.typical_shuffle_durations) if a.size
        ]
        return np.concatenate(parts) if parts else np.empty(0)

    if same_app_kl_threshold is not None and len(profiles) > 1:
        for a, b in combinations(profiles, 2):
            for phase, sa, sb in (
                ("map", a.map_durations, b.map_durations),
                ("shuffle", shuffle_sample(a), shuffle_sample(b)),
                ("reduce", a.reduce_durations, b.reduce_durations),
            ):
                if sa.size == 0 or sb.size == 0:
                    continue
                kl = histogram_kl(sa, sb)
                if kl > same_app_kl_threshold:
                    raise ValueError(
                        f"profiles {a.name!r} and {b.name!r} diverge on the "
                        f"{phase} phase (KL {kl:.2f} > {same_app_kl_threshold}); "
                        "they do not look like the same application"
                    )

    maps = np.concatenate([p.map_durations for p in profiles if p.map_durations.size])
    first_sh = np.concatenate(
        [p.first_shuffle_durations for p in profiles if p.first_shuffle_durations.size]
        or [np.empty(0)]
    )
    typical_sh = np.concatenate(
        [p.typical_shuffle_durations for p in profiles if p.typical_shuffle_durations.size]
        or [np.empty(0)]
    )
    reduces = np.concatenate(
        [p.reduce_durations for p in profiles if p.reduce_durations.size] or [np.empty(0)]
    )
    has_reduces = any(p.num_reduces > 0 for p in profiles)
    if maps.size == 0 and not has_reduces:
        raise ValueError("the recorded profiles contain no tasks to fit")

    map_counts = sorted({p.num_maps for p in profiles})
    reduce_counts = sorted({p.num_reduces for p in profiles})

    typical = (
        fit_duration_distribution(typical_sh, families)
        if typical_sh.size
        else (fit_duration_distribution(first_sh, families) if first_sh.size else None)
    )
    if has_reduces and typical is None:
        raise ValueError("reduces present but no shuffle durations recorded")

    return SyntheticJobSpec(
        name=name or profiles[0].name,
        num_maps=TaskCount(map_counts),
        num_reduces=TaskCount(reduce_counts),
        map_durations=(
            fit_duration_distribution(maps, families) if maps.size else Empirical([0.0, 0.0])
        ),
        typical_shuffle=typical if typical is not None else Empirical([1.0]),
        first_shuffle=(
            fit_duration_distribution(first_sh, families) if first_sh.size else None
        ),
        reduce_durations=(
            fit_duration_distribution(reduces, families)
            if reduces.size
            else Empirical([1.0])
        ),
    )
