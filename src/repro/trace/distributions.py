"""Duration distributions for the Synthetic TraceGen.

The paper's Synthetic TraceGen "model[s] the distributions of the durations
based on the statistical properties of the workloads" (Section III-A); the
Facebook case study fits LogNormal distributions to the published CDFs
(Section V-C).  This module provides the family of distributions those
workload descriptions draw from, each with deterministic sampling under a
seeded :class:`numpy.random.Generator` and a round-trippable dict spec so
workload descriptions can live in the trace database or JSON files.

All distributions produce non-negative durations; continuous families with
support below zero are truncated by resampling.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Any, Mapping, Sequence

import numpy as np

__all__ = [
    "DurationDistribution",
    "Constant",
    "Uniform",
    "Exponential",
    "LogNormal",
    "TruncatedNormal",
    "Gamma",
    "Weibull",
    "Empirical",
    "from_spec",
    "register",
]


class DurationDistribution(ABC):
    """A sampleable, serializable distribution of task durations (seconds)."""

    #: Registry key; set by :func:`register`.
    kind: str = ""

    @abstractmethod
    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` non-negative durations."""

    @abstractmethod
    def mean(self) -> float:
        """Analytic mean of the distribution."""

    @abstractmethod
    def _params(self) -> dict[str, Any]:
        """Serializable constructor parameters."""

    def to_spec(self) -> dict[str, Any]:
        """Round-trippable dict: ``{"kind": ..., **params}``."""
        return {"kind": self.kind, **self._params()}

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self._params().items())
        return f"{type(self).__name__}({params})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DurationDistribution) and self.to_spec() == other.to_spec()

    def __hash__(self) -> int:  # specs contain lists for Empirical; stringify
        return hash(repr(sorted(self.to_spec().items(), key=lambda kv: kv[0])))


_REGISTRY: dict[str, type[DurationDistribution]] = {}


def register(kind: str):
    """Class decorator registering a distribution under ``kind``."""

    def deco(cls: type[DurationDistribution]) -> type[DurationDistribution]:
        cls.kind = kind
        _REGISTRY[kind] = cls
        return cls

    return deco


def from_spec(spec: Mapping[str, Any]) -> DurationDistribution:
    """Rebuild a distribution from its :meth:`~DurationDistribution.to_spec` dict."""
    spec = dict(spec)
    try:
        kind = spec.pop("kind")
    except KeyError:
        raise ValueError("distribution spec lacks a 'kind' field") from None
    try:
        cls = _REGISTRY[kind]
    except KeyError:
        raise ValueError(
            f"unknown distribution kind {kind!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return cls(**spec)


def _check_positive(name: str, value: float) -> float:
    value = float(value)
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be finite and > 0, got {value}")
    return value


def _check_non_negative(name: str, value: float) -> float:
    value = float(value)
    if not math.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be finite and >= 0, got {value}")
    return value


@register("constant")
class Constant(DurationDistribution):
    """Every task takes exactly ``value`` seconds."""

    def __init__(self, value: float) -> None:
        self.value = _check_non_negative("value", value)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.full(size, self.value)

    def mean(self) -> float:
        return self.value

    def _params(self) -> dict[str, Any]:
        return {"value": self.value}


@register("uniform")
class Uniform(DurationDistribution):
    """Uniform on ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        self.low = _check_non_negative("low", low)
        self.high = _check_non_negative("high", high)
        if self.high < self.low:
            raise ValueError(f"high ({high}) must be >= low ({low})")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size)

    def mean(self) -> float:
        return (self.low + self.high) / 2

    def _params(self) -> dict[str, Any]:
        return {"low": self.low, "high": self.high}


@register("exponential")
class Exponential(DurationDistribution):
    """Exponential with the given ``mean``."""

    def __init__(self, mean: float) -> None:
        self._mean = _check_positive("mean", mean)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.exponential(self._mean, size)

    def mean(self) -> float:
        return self._mean

    def _params(self) -> dict[str, Any]:
        return {"mean": self._mean}


@register("lognormal")
class LogNormal(DurationDistribution):
    """LogNormal: ``exp(N(mu, sigma^2))``, the paper's Facebook fit family.

    ``scale`` rescales samples (e.g. ``scale=1e-3`` when ``mu``/``sigma``
    were fitted on milliseconds but the simulator works in seconds, as
    with the paper's LN(9.9511, 1.6764) map-duration fit).
    """

    def __init__(self, mu: float, sigma: float, scale: float = 1.0) -> None:
        self.mu = float(mu)
        self.sigma = _check_positive("sigma", sigma)
        self.scale = _check_positive("scale", scale)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.lognormal(self.mu, self.sigma, size) * self.scale

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2) * self.scale

    def _params(self) -> dict[str, Any]:
        return {"mu": self.mu, "sigma": self.sigma, "scale": self.scale}


@register("truncnormal")
class TruncatedNormal(DurationDistribution):
    """Normal(mu, sigma) truncated to non-negative values by resampling."""

    def __init__(self, mu: float, sigma: float) -> None:
        self.mu = float(mu)
        self.sigma = _check_positive("sigma", sigma)
        if self.mu < 0:
            raise ValueError(f"mu must be >= 0 for a duration model, got {mu}")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        out = rng.normal(self.mu, self.sigma, size)
        bad = out < 0
        while bad.any():
            out[bad] = rng.normal(self.mu, self.sigma, int(bad.sum()))
            bad = out < 0
        return out

    def mean(self) -> float:
        # Mean of the truncated normal, E[X | X >= 0].
        from scipy.stats import truncnorm

        a = (0.0 - self.mu) / self.sigma
        return float(truncnorm.mean(a, np.inf, loc=self.mu, scale=self.sigma))

    def _params(self) -> dict[str, Any]:
        return {"mu": self.mu, "sigma": self.sigma}


@register("gamma")
class Gamma(DurationDistribution):
    """Gamma with shape ``k`` and scale ``theta`` (mean ``k * theta``)."""

    def __init__(self, shape: float, scale: float) -> None:
        self.shape = _check_positive("shape", shape)
        self.scale = _check_positive("scale", scale)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.gamma(self.shape, self.scale, size)

    def mean(self) -> float:
        return self.shape * self.scale

    def _params(self) -> dict[str, Any]:
        return {"shape": self.shape, "scale": self.scale}


@register("weibull")
class Weibull(DurationDistribution):
    """Weibull with shape ``k`` and scale ``lambda``."""

    def __init__(self, shape: float, scale: float) -> None:
        self.shape = _check_positive("shape", shape)
        self.scale = _check_positive("scale", scale)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.weibull(self.shape, size) * self.scale

    def mean(self) -> float:
        return self.scale * math.gamma(1 + 1 / self.shape)

    def _params(self) -> dict[str, Any]:
        return {"shape": self.shape, "scale": self.scale}


@register("empirical")
class Empirical(DurationDistribution):
    """Resampling (with replacement) from observed durations.

    This is how traces recorded by MRProfiler become generative models —
    e.g. the trace-scaling feature draws a larger job's task durations
    from the small run's empirical distribution.
    """

    def __init__(self, values: Sequence[float]) -> None:
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("empirical distribution needs a non-empty 1-D sample")
        if not np.all(np.isfinite(arr)) or np.any(arr < 0):
            raise ValueError("empirical sample must be finite and non-negative")
        self.values = arr

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.choice(self.values, size=size, replace=True)

    def mean(self) -> float:
        return float(self.values.mean())

    def _params(self) -> dict[str, Any]:
        return {"values": self.values.tolist()}

    def __repr__(self) -> str:
        return (
            f"Empirical(n={self.values.size}, mean={self.values.mean():.2f}, "
            f"min={self.values.min():.2f}, max={self.values.max():.2f})"
        )
