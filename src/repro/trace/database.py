"""The Trace Database: persistent storage of job templates and traces.

Paper Section III-A: "We store job traces persistently in a Trace database
(for efficient lookup and storage) using a job template."

Backed by sqlite3 (stdlib) with two tables:

* ``profiles`` — job templates, keyed by ``(application, execution)`` so
  multiple recorded executions of the same application coexist (the
  Section II analysis compares five executions per application);
* ``traces`` — named replayable traces; each row stores submit time,
  deadline and a reference into ``profiles``.

Durations are stored as JSON arrays inside the row — profiles are a few
hundred floats, and keeping the row self-contained makes the database a
single portable file.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path
from typing import Optional, Sequence

from ..core.job import JobProfile, TraceJob
from .schema import profile_from_dict, profile_to_dict

__all__ = ["TraceDatabase"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS profiles (
    id          INTEGER PRIMARY KEY,
    application TEXT NOT NULL,
    execution   INTEGER NOT NULL,
    num_maps    INTEGER NOT NULL,
    num_reduces INTEGER NOT NULL,
    payload     TEXT NOT NULL,
    UNIQUE (application, execution)
);
CREATE INDEX IF NOT EXISTS idx_profiles_app ON profiles (application);
CREATE TABLE IF NOT EXISTS traces (
    id          INTEGER PRIMARY KEY,
    name        TEXT NOT NULL,
    position    INTEGER NOT NULL,
    submit_time REAL NOT NULL,
    deadline    REAL,
    profile_id  INTEGER NOT NULL REFERENCES profiles (id),
    UNIQUE (name, position)
);
CREATE INDEX IF NOT EXISTS idx_traces_name ON traces (name);
"""


class TraceDatabase:
    """A sqlite3-backed store of job templates and replayable traces.

    Usable as a context manager::

        with TraceDatabase("cluster.db") as db:
            db.add_profile(profile, execution=0)
            trace = db.load_trace("april-mix")
    """

    def __init__(self, path: str | Path = ":memory:") -> None:
        self.path = str(path)
        self._conn = sqlite3.connect(self.path)
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "TraceDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- profiles ----------------------------------------------------------

    def add_profile(self, profile: JobProfile, execution: int = 0) -> int:
        """Store one execution's job template; returns its row id.

        Raises :class:`ValueError` if ``(application, execution)`` already
        exists — use a fresh execution index per recorded run.
        """
        payload = json.dumps(profile_to_dict(profile))
        try:
            cur = self._conn.execute(
                "INSERT INTO profiles (application, execution, num_maps, num_reduces, payload)"
                " VALUES (?, ?, ?, ?, ?)",
                (profile.name, execution, profile.num_maps, profile.num_reduces, payload),
            )
        except sqlite3.IntegrityError:
            raise ValueError(
                f"profile for application {profile.name!r} execution {execution} already stored"
            ) from None
        row_id = cur.lastrowid
        cur.close()
        self._conn.commit()
        assert row_id is not None
        return row_id

    def get_profile(self, application: str, execution: int = 0) -> JobProfile:
        """Load one stored execution of an application."""
        row = self._conn.execute(
            "SELECT payload FROM profiles WHERE application = ? AND execution = ?",
            (application, execution),
        ).fetchone()
        if row is None:
            raise KeyError(f"no profile for application {application!r} execution {execution}")
        return profile_from_dict(json.loads(row[0]))

    def executions_of(self, application: str) -> list[int]:
        """Stored execution indices of an application, ascending."""
        rows = self._conn.execute(
            "SELECT execution FROM profiles WHERE application = ? ORDER BY execution",
            (application,),
        ).fetchall()
        return [r[0] for r in rows]

    def applications(self) -> list[str]:
        """Distinct application names, sorted."""
        rows = self._conn.execute(
            "SELECT DISTINCT application FROM profiles ORDER BY application"
        ).fetchall()
        return [r[0] for r in rows]

    def _profile_id(self, application: str, execution: int) -> Optional[int]:
        row = self._conn.execute(
            "SELECT id FROM profiles WHERE application = ? AND execution = ?",
            (application, execution),
        ).fetchone()
        return None if row is None else row[0]

    # -- traces --------------------------------------------------------------

    def save_trace(self, name: str, trace: Sequence[TraceJob]) -> None:
        """Persist a replayable trace under ``name``.

        Each job's profile is stored (or reused if an identical
        ``(application, execution)`` template is already present — the
        execution index is allocated by content match, so saving the same
        trace twice does not duplicate profiles).
        """
        if self.trace_names().count(name):
            raise ValueError(f"trace {name!r} already stored")
        rows = []
        for pos, job in enumerate(trace):
            payload = json.dumps(profile_to_dict(job.profile))
            pid = self._find_profile_by_payload(job.profile.name, payload)
            if pid is None:
                execution = self._next_execution(job.profile.name)
                cur = self._conn.execute(
                    "INSERT INTO profiles (application, execution, num_maps, num_reduces, payload)"
                    " VALUES (?, ?, ?, ?, ?)",
                    (
                        job.profile.name,
                        execution,
                        job.profile.num_maps,
                        job.profile.num_reduces,
                        payload,
                    ),
                )
                pid = cur.lastrowid
                cur.close()
            rows.append((name, pos, job.submit_time, job.deadline, pid))
        self._conn.executemany(
            "INSERT INTO traces (name, position, submit_time, deadline, profile_id)"
            " VALUES (?, ?, ?, ?, ?)",
            rows,
        )
        self._conn.commit()

    def _find_profile_by_payload(self, application: str, payload: str) -> Optional[int]:
        row = self._conn.execute(
            "SELECT id FROM profiles WHERE application = ? AND payload = ?",
            (application, payload),
        ).fetchone()
        return None if row is None else row[0]

    def _next_execution(self, application: str) -> int:
        row = self._conn.execute(
            "SELECT COALESCE(MAX(execution), -1) + 1 FROM profiles WHERE application = ?",
            (application,),
        ).fetchone()
        return row[0]

    def load_trace(self, name: str) -> list[TraceJob]:
        """Rebuild a stored trace in submission order."""
        rows = self._conn.execute(
            "SELECT t.submit_time, t.deadline, p.payload FROM traces t"
            " JOIN profiles p ON p.id = t.profile_id"
            " WHERE t.name = ? ORDER BY t.position",
            (name,),
        ).fetchall()
        if not rows:
            raise KeyError(f"no trace named {name!r}")
        return [
            TraceJob(
                profile=profile_from_dict(json.loads(payload)),
                submit_time=submit,
                deadline=deadline,
            )
            for submit, deadline, payload in rows
        ]

    def trace_names(self) -> list[str]:
        """Distinct stored trace names, sorted."""
        rows = self._conn.execute("SELECT DISTINCT name FROM traces ORDER BY name").fetchall()
        return [r[0] for r in rows]

    def delete_trace(self, name: str) -> None:
        """Remove a stored trace (its profiles stay available)."""
        cur = self._conn.execute("DELETE FROM traces WHERE name = ?", (name,))
        deleted = cur.rowcount
        cur.close()
        if deleted == 0:
            raise KeyError(f"no trace named {name!r}")
        self._conn.commit()
