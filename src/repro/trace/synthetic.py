"""Synthetic TraceGen: replayable workloads from statistical descriptions.

Paper Section III-A: "Alternatively, we can model the distributions of the
durations based on the statistical properties of the workloads and
generate synthetic traces using Synthetic TraceGen.  This can help
evaluate hypothetical workloads and consider what-if scenarios."

A workload description is a set of :class:`SyntheticJobSpec` — per
application: task-count models and per-phase duration distributions —
plus an arrival process, a mix over the specs, and (optionally) a
deadline policy.  Every sampled job gets *fresh* task durations, so two
jobs from the same spec are different executions of the same statistical
application, exactly the property Section II establishes for real
applications (small KL divergence within an app, large across apps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..core.job import JobProfile, TraceJob
from .arrivals import ArrivalProcess
from .deadlines import DeadlineFactorPolicy
from .distributions import DurationDistribution, from_spec

__all__ = ["TaskCount", "SyntheticJobSpec", "SyntheticTraceGen"]


class TaskCount:
    """Model for the number of map (or reduce) tasks of a sampled job.

    Either a fixed count or a weighted choice over counts — the latter
    encodes published job-size histograms such as Table 3 of the Facebook
    delay-scheduling study.
    """

    def __init__(
        self,
        values: int | Sequence[int],
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        if isinstance(values, (int, np.integer)):
            values = [int(values)]
        self.values = np.asarray(list(values), dtype=np.int64)
        if self.values.size == 0 or np.any(self.values < 0):
            raise ValueError("task counts must be a non-empty set of ints >= 0")
        if weights is None:
            self.weights = np.full(self.values.size, 1.0 / self.values.size)
        else:
            w = np.asarray(list(weights), dtype=np.float64)
            if w.shape != self.values.shape:
                raise ValueError(
                    f"weights shape {w.shape} does not match values shape {self.values.shape}"
                )
            if np.any(w < 0) or w.sum() <= 0:
                raise ValueError("weights must be non-negative and sum > 0")
            self.weights = w / w.sum()

    def sample(self, rng: np.random.Generator) -> int:
        if self.values.size == 1:
            return int(self.values[0])
        return int(rng.choice(self.values, p=self.weights))

    @property
    def max(self) -> int:
        return int(self.values.max())

    def __repr__(self) -> str:
        if self.values.size == 1:
            return f"TaskCount({int(self.values[0])})"
        return f"TaskCount({self.values.tolist()}, weights={np.round(self.weights, 4).tolist()})"


@dataclass
class SyntheticJobSpec:
    """Statistical description of one application.

    Parameters
    ----------
    name:
        Application name stamped on generated profiles.
    num_maps / num_reduces:
        Task-count models (plain ints accepted).
    map_durations / typical_shuffle / reduce_durations:
        Per-phase duration distributions.
    first_shuffle:
        Distribution of the *non-overlapping* first-wave shuffle part;
        defaults to ``typical_shuffle`` when the workload description has
        no separate first-wave measurement.
    """

    name: str
    num_maps: TaskCount | int
    num_reduces: TaskCount | int
    map_durations: DurationDistribution
    typical_shuffle: DurationDistribution
    reduce_durations: DurationDistribution
    first_shuffle: Optional[DurationDistribution] = None

    def __post_init__(self) -> None:
        if isinstance(self.num_maps, int):
            self.num_maps = TaskCount(self.num_maps)
        if isinstance(self.num_reduces, int):
            self.num_reduces = TaskCount(self.num_reduces)
        if self.first_shuffle is None:
            self.first_shuffle = self.typical_shuffle
        if self.num_maps.max == 0 and self.num_reduces.max == 0:
            raise ValueError(f"spec {self.name!r} can only generate empty jobs")

    def make_profile(self, rng: np.random.Generator, name: Optional[str] = None) -> JobProfile:
        """Sample one concrete execution (a job template) of this spec."""
        n_m = self.num_maps.sample(rng)
        n_r = self.num_reduces.sample(rng)
        if n_m == 0 and n_r == 0:
            # A zero/zero draw from a mixed-count model: fall back to the
            # smallest non-empty shape so the job is replayable.
            n_m = max(n_m, 1)
        # First-wave size is bounded by the reduce count; sampling one
        # first-shuffle value per reduce keeps indexing simple and is
        # equivalent under cyclic lookup.
        return JobProfile(
            name=name or self.name,
            num_maps=n_m,
            num_reduces=n_r,
            map_durations=self.map_durations.sample(rng, n_m) if n_m else np.empty(0),
            first_shuffle_durations=(
                self.first_shuffle.sample(rng, n_r) if n_r else np.empty(0)
            ),
            typical_shuffle_durations=(
                self.typical_shuffle.sample(rng, n_r) if n_r else np.empty(0)
            ),
            reduce_durations=self.reduce_durations.sample(rng, n_r) if n_r else np.empty(0),
        )

    def to_spec(self) -> dict:
        """JSON-serializable description (inverse of :meth:`from_dict`)."""
        out = {
            "name": self.name,
            "num_maps": {
                "values": self.num_maps.values.tolist(),
                "weights": self.num_maps.weights.tolist(),
            },
            "num_reduces": {
                "values": self.num_reduces.values.tolist(),
                "weights": self.num_reduces.weights.tolist(),
            },
            "map_durations": self.map_durations.to_spec(),
            "typical_shuffle": self.typical_shuffle.to_spec(),
            "reduce_durations": self.reduce_durations.to_spec(),
            "first_shuffle": self.first_shuffle.to_spec(),
        }
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SyntheticJobSpec":
        """Rebuild a spec from :meth:`to_spec` output."""
        return cls(
            name=data["name"],
            num_maps=TaskCount(data["num_maps"]["values"], data["num_maps"]["weights"]),
            num_reduces=TaskCount(
                data["num_reduces"]["values"], data["num_reduces"]["weights"]
            ),
            map_durations=from_spec(data["map_durations"]),
            typical_shuffle=from_spec(data["typical_shuffle"]),
            reduce_durations=from_spec(data["reduce_durations"]),
            first_shuffle=from_spec(data["first_shuffle"]),
        )


class SyntheticTraceGen:
    """Generates replayable traces from a statistical workload description.

    Parameters
    ----------
    specs:
        The application specs forming the workload.
    mix:
        Relative weights over ``specs`` (uniform when omitted).
    arrivals:
        Submission-time process.
    deadline_policy:
        Optional :class:`~repro.trace.deadlines.DeadlineFactorPolicy`
        assigning per-job deadlines.
    seed:
        Seed (or Generator) for all sampling; identical seeds reproduce
        identical traces.
    """

    def __init__(
        self,
        specs: Sequence[SyntheticJobSpec],
        arrivals: ArrivalProcess,
        *,
        mix: Optional[Sequence[float]] = None,
        deadline_policy: Optional[DeadlineFactorPolicy] = None,
        seed: int | np.random.Generator = 0,
    ) -> None:
        if not specs:
            raise ValueError("at least one job spec is required")
        self.specs = list(specs)
        if mix is None:
            self.mix = np.full(len(self.specs), 1.0 / len(self.specs))
        else:
            m = np.asarray(list(mix), dtype=np.float64)
            if m.size != len(self.specs):
                raise ValueError(f"mix has {m.size} weights for {len(self.specs)} specs")
            if np.any(m < 0) or m.sum() <= 0:
                raise ValueError("mix weights must be non-negative and sum > 0")
            self.mix = m / m.sum()
        self.arrivals = arrivals
        self.deadline_policy = deadline_policy
        self.rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )

    def generate(self, n: int) -> list[TraceJob]:
        """Sample a trace of ``n`` jobs."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        rng = self.rng
        submit_times = self.arrivals.sample(n, rng)
        which = rng.choice(len(self.specs), size=n, p=self.mix)
        jobs: list[TraceJob] = []
        for i in range(n):
            spec = self.specs[int(which[i])]
            profile = spec.make_profile(rng)
            submit = float(submit_times[i])
            deadline = None
            if self.deadline_policy is not None:
                deadline = self.deadline_policy.deadline_for(profile, submit, rng)
            jobs.append(TraceJob(profile, submit, deadline))
        return jobs
