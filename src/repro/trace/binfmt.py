"""The compact binary trace format (``.simmr``): parse once, map forever.

JSON traces (:mod:`repro.trace.schema`) are the human-facing format —
inspectable, diffable, hand-editable.  They are also the slow path: a
100k-duration trace costs a full JSON parse plus one Python float per
duration on every load.  This module defines the binary twin: a
versioned, little-endian, digest-stable container whose duration
payload is raw float64 — so loading is ``mmap`` + an O(jobs) header
walk, and the durations are *never* copied (the reconstructed
:class:`~repro.core.job.JobProfile` arrays are views into the mapped
file, via :class:`~repro.core.columns.TraceColumns`).

Layout (all integers little-endian, fixed-width, ``struct``-packed)::

    header   72 B   magic "SIMMRBIN", version u16, flags u16,
                    njobs u32, ndoubles u64, names_bytes u64,
                    reserved u64, trace_digest 32 B (ascii hex)
    jobs     120 B  per job: submit_time f64, deadline f64 (NaN=None),
                    depends_on i64 (-1=None), num_maps i64,
                    num_reduces i64, name (offset u64, length u64) into
                    the names blob, then 4 phase spans (offset u64,
                    length u64) in float64 units into the data section
    names    names_bytes B of UTF-8, deduplicated, 8-byte padded
    data     ndoubles * 8 B of raw little-endian float64 durations,
             content-deduplicated, 8-byte aligned in the file

**Digest stability.**  The header records the trace's canonical
identity — :func:`repro.sanitize.digest.trace_digest`, the BLAKE2b of
the canonical *JSON* document — so the same trace has the same digest
in every format, and a binary load can key caches without
re-serializing.  Packing is deterministic: the same trace always
produces byte-identical files (dedup decisions depend only on content,
in job order).  Consumers that must not trust a file's header (it could
be hand-edited) pass ``verify=True`` to recompute the digest from the
decoded jobs.  Downstream cache keys further salt this digest with the
cache schema and package version (:func:`repro.parallel.cache.cache_key`),
so a format change can never resurrect stale results.

Only ``struct``/``array``/``mmap`` from the stdlib are used here; the
numpy views appear one layer up, in :mod:`repro.core.columns`.
"""

from __future__ import annotations

import mmap
import struct
from array import array
from pathlib import Path
from typing import Sequence, Union

from ..core.columns import TraceColumns
from ..core.job import TraceJob

__all__ = [
    "BINARY_MAGIC",
    "BINARY_VERSION",
    "pack_trace",
    "pack_columns",
    "unpack_columns",
    "packed_digest",
    "save_trace_bin",
    "load_columns",
    "load_trace_bin",
    "load_trace_auto",
    "is_packed",
    "is_binary_trace_file",
]

BINARY_MAGIC = b"SIMMRBIN"
BINARY_VERSION = 1

_HEADER = struct.Struct("<8sHHIQQQ32s")
_JOB = struct.Struct("<ddqqq" + "Q" * 10)
_HEADER_SIZE = _HEADER.size  # 72
_JOB_SIZE = _JOB.size  # 120

Buffer = Union[bytes, bytearray, memoryview]


def _pad8(n: int) -> int:
    return (8 - n % 8) % 8


# --------------------------------------------------------------------------- #
# packing
# --------------------------------------------------------------------------- #

def pack_columns(columns: TraceColumns, digest: str) -> bytes:
    """Serialize columnar storage into the binary container.

    ``digest`` is the trace's canonical content digest (32 hex chars);
    callers that start from job objects should use :func:`pack_trace`,
    which computes it.
    """
    if len(digest) != 32:
        raise ValueError(f"trace digest must be 32 hex chars, got {len(digest)}")
    njobs = len(columns)

    names_blob = bytearray()
    name_spans: dict[str, tuple[int, int]] = {}
    for name in columns.names:
        if name not in name_spans:
            encoded = name.encode("utf-8")
            name_spans[name] = (len(names_blob), len(encoded))
            names_blob += encoded
    names_blob += b"\x00" * _pad8(len(names_blob))

    data_view = memoryview(columns.data).cast("B")
    ndoubles = data_view.nbytes // 8

    out = bytearray()
    out += _HEADER.pack(
        BINARY_MAGIC,
        BINARY_VERSION,
        0,  # flags, reserved for future use
        njobs,
        ndoubles,
        len(names_blob),
        0,  # reserved
        digest.encode("ascii"),
    )
    for i in range(njobs):
        name_off, name_len = name_spans[columns.names[i]]
        spans = columns.spans[8 * i:8 * i + 8]
        out += _JOB.pack(
            columns.submit_times[i],
            columns.deadlines[i],
            columns.depends_on[i],
            columns.num_maps[i],
            columns.num_reduces[i],
            name_off,
            name_len,
            *spans,
        )
    out += names_blob
    out += data_view
    return bytes(out)


def pack_trace(trace: Sequence[TraceJob]) -> bytes:
    """Serialize a job-object trace into the binary container."""
    from ..sanitize.digest import trace_digest

    return pack_columns(TraceColumns.from_trace(trace), trace_digest(trace))


def save_trace_bin(trace: Sequence[TraceJob], path: "str | Path") -> int:
    """Write a binary trace file; returns the byte count written."""
    payload = pack_trace(trace)
    Path(path).write_bytes(payload)
    return len(payload)


# --------------------------------------------------------------------------- #
# unpacking
# --------------------------------------------------------------------------- #

def is_packed(data: Buffer) -> bool:
    """Whether ``data`` starts with the binary trace magic."""
    return bytes(memoryview(data)[:8]) == BINARY_MAGIC


def is_binary_trace_file(path: "str | Path") -> bool:
    """Sniff a file's first bytes for the binary trace magic."""
    try:
        with open(path, "rb") as fh:
            return fh.read(8) == BINARY_MAGIC
    except OSError:
        return False


def _parse_header(view: memoryview) -> tuple[int, int, int, str]:
    if view.nbytes < _HEADER_SIZE:
        raise ValueError("binary trace truncated: header incomplete")
    magic, version, _flags, njobs, ndoubles, names_bytes, _reserved, digest = (
        _HEADER.unpack_from(view, 0)
    )
    if magic != BINARY_MAGIC:
        raise ValueError("not a binary trace (bad magic)")
    if version != BINARY_VERSION:
        raise ValueError(
            f"unsupported binary trace version {version} (expected {BINARY_VERSION})"
        )
    try:
        digest_hex = digest.decode("ascii")
        int(digest_hex, 16)
    except (UnicodeDecodeError, ValueError):
        raise ValueError("binary trace header carries a malformed digest") from None
    expected = _HEADER_SIZE + njobs * _JOB_SIZE + names_bytes + 8 * ndoubles
    if view.nbytes < expected:
        raise ValueError(
            f"binary trace truncated: {view.nbytes} bytes, header promises {expected}"
        )
    return njobs, ndoubles, names_bytes, digest_hex


def packed_digest(data: Buffer) -> str:
    """The canonical trace digest recorded in a packed trace's header."""
    _, _, _, digest = _parse_header(memoryview(data).cast("B"))
    return digest


def unpack_columns(
    data: Buffer, *, owner: object = None
) -> tuple[TraceColumns, str]:
    """Decode a packed trace into zero-copy columnar storage.

    Returns ``(columns, digest)`` where ``columns.data`` is a
    *memoryview into* ``data`` — no duration bytes are copied.  Pass
    ``owner`` to pin the object that must stay alive for the buffer to
    remain valid (an ``mmap``, a shared-memory segment); it is stored
    on the returned columns.
    """
    view = memoryview(data).cast("B")
    njobs, ndoubles, names_bytes, digest = _parse_header(view)

    names_off = _HEADER_SIZE + njobs * _JOB_SIZE
    data_off = names_off + names_bytes
    names_view = view[names_off:names_off + names_bytes]
    duration_view = view[data_off:data_off + 8 * ndoubles]

    names: list[str] = []
    submit_times = array("d")
    deadlines = array("d")
    depends_on = array("q")
    num_maps = array("q")
    num_reduces = array("q")
    spans = array("Q")
    for record in _JOB.iter_unpack(view[_HEADER_SIZE:names_off]):
        submit, deadline, dep, n_maps, n_reduces, name_off, name_len = record[:7]
        job_spans = record[7:]
        names.append(bytes(names_view[name_off:name_off + name_len]).decode("utf-8"))
        submit_times.append(submit)
        deadlines.append(deadline)
        depends_on.append(dep)
        num_maps.append(n_maps)
        num_reduces.append(n_reduces)
        for offset, length in zip(job_spans[0::2], job_spans[1::2]):
            if (offset + length) > ndoubles:
                raise ValueError("binary trace corrupt: phase span exceeds data section")
            spans.append(offset)
            spans.append(length)
    columns = TraceColumns(
        names=tuple(names),
        submit_times=submit_times,
        deadlines=deadlines,
        depends_on=depends_on,
        num_maps=num_maps,
        num_reduces=num_reduces,
        spans=spans,
        data=duration_view,
        owner=owner,
    )
    return columns, digest


class _MappedFile:
    """Keeps an ``mmap`` (and nothing else) alive for trace views."""

    __slots__ = ("map",)

    def __init__(self, path: Path) -> None:
        with open(path, "rb") as fh:
            self.map = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)


def load_columns(
    path: "str | Path", *, use_mmap: bool = True
) -> tuple[TraceColumns, str]:
    """Load a binary trace file into columnar storage.

    With ``use_mmap=True`` (the default) the file is memory-mapped
    read-only and the returned columns view it directly: the parse cost
    is the header walk, the durations stay on disk until touched, and
    concurrent loaders of the same file share page-cache memory.
    ``use_mmap=False`` reads the file into a private bytes object
    (useful when the file may be replaced while in use).
    """
    path = Path(path)
    if use_mmap:
        owner = _MappedFile(path)
        return unpack_columns(memoryview(owner.map), owner=owner)
    return unpack_columns(path.read_bytes())


def load_trace_bin(path: "str | Path", *, use_mmap: bool = True) -> list[TraceJob]:
    """Load a binary trace file as job objects (thin views)."""
    columns, _digest = load_columns(path, use_mmap=use_mmap)
    return columns.jobs()


def load_trace_auto(path: "str | Path") -> list[TraceJob]:
    """Load a trace from either format, sniffing the binary magic.

    The CLI's trace-consuming subcommands go through this, so every
    command that accepts a JSON trace transparently accepts a packed
    one too.
    """
    if is_binary_trace_file(path):
        return load_trace_bin(path)
    from .schema import load_trace

    return load_trace(path)
