"""Trace scaling: deriving a larger-dataset trace from a small-dataset run.

The paper's future work (Section VII): "we plan to design a trace-scaling
technique where from the trace of a job execution on a small dataset, we
could generate a trace that represents job processing of a larger
dataset."

The technique implemented here rests on how Hadoop splits input: map task
count grows linearly with input size (fixed block size), while per-task
durations stay distributed like the recorded ones — the invariance
Section II established empirically.  Reduce-side behaviour depends on the
configured reduce count; by default it scales with the data too, keeping
per-reduce partition sizes (and hence shuffle/reduce durations) stable.

Durations for the extra tasks are drawn from the recorded empirical
distributions (resampling with replacement) under a caller-provided seed,
so scaling is deterministic and the scaled job's KL divergence from the
original stays small — a property the test suite checks.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..core.job import JobProfile

__all__ = ["scale_profile"]


def _resample(values: np.ndarray, n: int, rng: np.random.Generator) -> np.ndarray:
    if n == 0:
        return np.empty(0)
    if values.size == 0:
        raise ValueError("cannot scale a phase with no recorded durations")
    return rng.choice(values, size=n, replace=True)


def scale_profile(
    profile: JobProfile,
    data_scale: float,
    *,
    scale_reduces: bool = True,
    seed: int | np.random.Generator = 0,
    name: Optional[str] = None,
) -> JobProfile:
    """Scale a recorded job template to a ``data_scale``-times dataset.

    Parameters
    ----------
    profile:
        The recorded small-dataset job template.
    data_scale:
        Dataset size ratio (new / recorded); must be > 0.  Task counts are
        scaled and rounded up, never below 1 for non-empty phases.
    scale_reduces:
        When True (default) the reduce count scales with the data, keeping
        per-reduce partition sizes stable.  When False the reduce count is
        pinned (a common Hadoop configuration) and shuffle/reduce durations
        are stretched by ``data_scale`` instead, since each reduce now
        pulls proportionally more intermediate data.
    seed:
        Seed or Generator for the empirical resampling.
    name:
        Name for the scaled profile; defaults to ``"<name>@x<scale>"``.
    """
    if not math.isfinite(data_scale) or data_scale <= 0:
        raise ValueError(f"data_scale must be finite and > 0, got {data_scale}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    new_maps = max(1, math.ceil(profile.num_maps * data_scale)) if profile.num_maps else 0
    if scale_reduces:
        new_reduces = (
            max(1, math.ceil(profile.num_reduces * data_scale)) if profile.num_reduces else 0
        )
        shuffle_stretch = 1.0
    else:
        new_reduces = profile.num_reduces
        shuffle_stretch = data_scale

    map_durations = _resample(profile.map_durations, new_maps, rng)
    first_shuffle = (
        _resample(profile.first_shuffle_durations, new_reduces, rng) * shuffle_stretch
        if profile.first_shuffle_durations.size
        else np.empty(0)
    )
    typical_shuffle = (
        _resample(profile.typical_shuffle_durations, new_reduces, rng) * shuffle_stretch
        if profile.typical_shuffle_durations.size
        else np.empty(0)
    )
    reduce_durations = (
        _resample(profile.reduce_durations, new_reduces, rng) * shuffle_stretch
        if new_reduces
        else np.empty(0)
    )

    return JobProfile(
        name=name or f"{profile.name}@x{data_scale:g}",
        num_maps=new_maps,
        num_reduces=new_reduces,
        map_durations=map_durations,
        first_shuffle_durations=first_shuffle,
        typical_shuffle_durations=typical_shuffle,
        reduce_durations=reduce_durations,
    )
