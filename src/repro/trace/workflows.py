"""Multi-job workflows (pipelines of dependent MapReduce jobs).

Real analytics are rarely one MapReduce job: the Mahout TF-IDF and Bayes
applications the paper benchmarks are themselves steps of multi-job
pipelines, and GridMix's "monsterQuery" is a three-stage chain.  The
engine supports this through :attr:`TraceJob.depends_on`; this module
builds those edges conveniently.

A :class:`WorkflowSpec` is a DAG of named stages; ``instantiate`` samples
one profile per stage and emits trace entries whose ``depends_on`` edges
mirror the DAG (each stage submitted when *a* parent finishes — the
engine supports single-parent edges, so multi-parent stages declare
their longest-expected parent, a documented approximation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..core.job import JobProfile, TraceJob
from .synthetic import SyntheticJobSpec

__all__ = ["WorkflowStage", "WorkflowSpec", "chain"]


@dataclass(frozen=True)
class WorkflowStage:
    """One stage: a job spec plus the stage it waits for.

    ``after`` names a previous stage (``None`` = starts with the
    workflow).  ``lag`` adds submission delay after the parent completes
    (e.g. a driver program doing setup between jobs).
    """

    name: str
    spec: SyntheticJobSpec
    after: Optional[str] = None
    lag: float = 0.0

    def __post_init__(self) -> None:
        if self.lag < 0:
            raise ValueError(f"stage {self.name!r}: lag must be >= 0")


@dataclass
class WorkflowSpec:
    """A named DAG of stages instantiable into trace entries."""

    name: str
    stages: list[WorkflowStage] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError(f"workflow {self.name!r} has no stages")
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise ValueError(f"workflow {self.name!r} has duplicate stage names")
        known: set[str] = set()
        for stage in self.stages:
            if stage.after is not None and stage.after not in known:
                raise ValueError(
                    f"workflow {self.name!r}: stage {stage.name!r} waits for "
                    f"{stage.after!r}, which is not an earlier stage"
                )
            known.add(stage.name)

    def instantiate(
        self,
        submit_time: float,
        rng: np.random.Generator,
        *,
        base_index: int = 0,
        deadline: Optional[float] = None,
    ) -> list[TraceJob]:
        """Sample one run of the workflow as dependent trace entries.

        ``base_index`` is the position the first emitted job will occupy
        in the final trace (``depends_on`` edges are absolute indices).
        A ``deadline`` applies to the *final* stage — the workflow-level
        SLO.
        """
        out: list[TraceJob] = []
        index_of: dict[str, int] = {}
        for pos, stage in enumerate(self.stages):
            profile = stage.spec.make_profile(rng, name=f"{self.name}/{stage.name}")
            is_last = pos == len(self.stages) - 1
            if stage.after is None:
                out.append(
                    TraceJob(
                        profile,
                        submit_time,
                        deadline=deadline if is_last else None,
                    )
                )
            else:
                out.append(
                    TraceJob(
                        profile,
                        # Nominal submit enforces only the lag; the engine
                        # takes max(submit, parent completion).
                        submit_time + stage.lag,
                        deadline=deadline if is_last else None,
                        depends_on=index_of[stage.after],
                    )
                )
            index_of[stage.name] = base_index + pos
        return out


def chain(
    name: str,
    specs: Sequence[SyntheticJobSpec],
    *,
    lag: float = 0.0,
    stage_names: Optional[Sequence[str]] = None,
) -> WorkflowSpec:
    """A linear pipeline: each stage waits for the previous one."""
    if not specs:
        raise ValueError("chain needs at least one stage spec")
    if stage_names is not None and len(stage_names) != len(specs):
        raise ValueError("stage_names must match specs in length")
    stages = []
    prev: Optional[str] = None
    for i, spec in enumerate(specs):
        stage_name = stage_names[i] if stage_names else f"stage{i}"
        stages.append(WorkflowStage(stage_name, spec, after=prev, lag=lag if prev else 0.0))
        prev = stage_name
    return WorkflowSpec(name=name, stages=stages)
