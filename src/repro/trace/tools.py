"""Trace manipulation utilities: compaction, concatenation, summaries.

The paper's performance study "created a single trace file (without
inactivity periods)" from six months of logs (Section IV-E) —
:func:`compact_trace` is that operation.  :func:`concatenate_traces`
splices recorded traces back-to-back ("play it again"), and
:func:`trace_summary` gives the at-a-glance statistics an administrator
checks before a replay campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.job import TraceJob

__all__ = ["compact_trace", "concatenate_traces", "TraceSummary", "trace_summary"]


def compact_trace(trace: Sequence[TraceJob], max_gap: float = 60.0) -> list[TraceJob]:
    """Remove inactivity periods by clamping submission gaps.

    Jobs keep their order and relative deadlines (a deadline recorded
    ``d`` seconds after its job's submission stays ``d`` seconds after
    it); any inter-submission gap larger than ``max_gap`` is clamped to
    it.  ``max_gap=0`` collapses the whole trace into a batch drop.
    """
    if max_gap < 0:
        raise ValueError(f"max_gap must be >= 0, got {max_gap}")
    ordered = sorted(trace, key=lambda j: j.submit_time)
    out: list[TraceJob] = []
    new_time = 0.0
    prev_time: float | None = None
    for job in ordered:
        if prev_time is not None:
            new_time += min(job.submit_time - prev_time, max_gap)
        prev_time = job.submit_time
        deadline = None
        if job.deadline is not None:
            deadline = new_time + (job.deadline - job.submit_time)
        out.append(TraceJob(job.profile, new_time, deadline))
    return out


def concatenate_traces(
    traces: Sequence[Sequence[TraceJob]], gap: float = 0.0
) -> list[TraceJob]:
    """Splice traces end-to-end, ``gap`` seconds between segments.

    Each segment is shifted so its first submission lands ``gap`` after
    the previous segment's *last submission* (replay semantics: the next
    recording starts right after the previous one's submissions end).
    """
    if gap < 0:
        raise ValueError(f"gap must be >= 0, got {gap}")
    out: list[TraceJob] = []
    offset = 0.0
    for segment in traces:
        if not segment:
            continue
        ordered = sorted(segment, key=lambda j: j.submit_time)
        base = ordered[0].submit_time
        for job in ordered:
            shift = offset + (job.submit_time - base)
            deadline = None
            if job.deadline is not None:
                deadline = shift + (job.deadline - job.submit_time)
            out.append(TraceJob(job.profile, shift, deadline))
        offset = out[-1].submit_time + gap
    return out


@dataclass(frozen=True)
class TraceSummary:
    """At-a-glance statistics of a replayable trace."""

    num_jobs: int
    span_seconds: float
    total_maps: int
    total_reduces: int
    total_task_seconds: float
    jobs_with_deadlines: int
    #: application name -> job count
    per_application: dict[str, int]

    @property
    def mean_interarrival(self) -> float:
        if self.num_jobs < 2:
            return 0.0
        return self.span_seconds / (self.num_jobs - 1)

    def offered_load(self, total_slots: int) -> float:
        """Task-seconds demanded per slot-second offered over the span.

        > 1 means the trace oversubscribes the cluster (queues grow);
        well under 1 means mostly-idle replay.
        """
        if total_slots < 1:
            raise ValueError(f"total_slots must be >= 1, got {total_slots}")
        if self.span_seconds <= 0:
            return float("inf") if self.total_task_seconds > 0 else 0.0
        return self.total_task_seconds / (total_slots * self.span_seconds)

    def __str__(self) -> str:
        apps = ", ".join(f"{n}x {a}" for a, n in sorted(self.per_application.items()))
        return (
            f"{self.num_jobs} jobs over {self.span_seconds:.0f}s "
            f"(mean inter-arrival {self.mean_interarrival:.1f}s); "
            f"{self.total_maps} maps + {self.total_reduces} reduces, "
            f"{self.total_task_seconds:.0f} task-seconds; "
            f"{self.jobs_with_deadlines} jobs carry deadlines; {apps}"
        )


def trace_summary(trace: Sequence[TraceJob]) -> TraceSummary:
    """Summarize a trace (see :class:`TraceSummary`)."""
    if not trace:
        return TraceSummary(0, 0.0, 0, 0, 0.0, 0, {})
    submits = [j.submit_time for j in trace]
    per_app: dict[str, int] = {}
    total_task_seconds = 0.0
    for job in trace:
        per_app[job.profile.name] = per_app.get(job.profile.name, 0) + 1
        total_task_seconds += job.profile.total_task_seconds()
    return TraceSummary(
        num_jobs=len(trace),
        span_seconds=float(max(submits) - min(submits)),
        total_maps=sum(j.profile.num_maps for j in trace),
        total_reduces=sum(j.profile.num_reduces for j in trace),
        total_task_seconds=total_task_seconds,
        jobs_with_deadlines=sum(1 for j in trace if j.deadline is not None),
        per_application=per_app,
    )
