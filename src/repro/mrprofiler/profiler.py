"""MRProfiler: job templates from parsed JobTracker history logs.

Builds the paper's job template (Section III-A) from one job's parsed
log records:

* ``MapDurations`` — per-map ``FINISH - START``;
* ``FirstShuffleDurations`` — for reduces whose shuffle overlapped the
  map stage (started before the last map finished), the *non-overlapping*
  part: ``max(0, SHUFFLE_FINISHED - map_stage_end)``;
* ``TypicalShuffleDurations`` — for later-wave reduces,
  ``SHUFFLE_FINISHED - START``;
* ``ReduceDurations`` — per-reduce ``FINISH - SORT_FINISHED``.

The first/typical split is the measurement choice that makes the profile
invariant to the resource allocation of the recorded run (paper
Section II): the overlapped portion of the first shuffle depends on how
many map waves the recorded allocation produced, so only the tail after
the map stage is kept.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.job import JobProfile, TraceJob
from .parser import ParsedJob, parse_history

__all__ = ["ProfiledJob", "build_profile", "profile_history", "trace_from_history"]


@dataclass(frozen=True, slots=True)
class ProfiledJob:
    """A job template plus its recorded timeline."""

    profile: JobProfile
    #: Submission time in seconds relative to the trace start.
    submit_time: float
    #: Recorded completion time (seconds, finish - submit).
    duration: float
    job_id: str


def build_profile(job: ParsedJob) -> JobProfile:
    """The job template of one parsed job."""
    if not job.map_attempts and not job.reduce_attempts:
        raise ValueError(f"job {job.job_id} has no task attempts to profile")

    map_durations = []
    for index in sorted(job.map_attempts):
        att = job.map_attempts[index]
        if att.start_ms is None or att.finish_ms is None:
            raise ValueError(f"job {job.job_id} map {index} lacks start/finish records")
        if att.finish_ms < att.start_ms:
            raise ValueError(f"job {job.job_id} map {index} finishes before it starts")
        map_durations.append((att.finish_ms - att.start_ms) / 1000.0)

    map_stage_end = job.map_stage_end_ms if job.map_attempts else None

    first_shuffle: list[float] = []
    typical_shuffle: list[float] = []
    reduce_durations = []
    for index in sorted(job.reduce_attempts):
        att = job.reduce_attempts[index]
        if not att.complete:
            raise ValueError(f"job {job.job_id} reduce {index} has incomplete records")
        if att.finish_ms < att.sort_finished_ms or att.shuffle_finished_ms < att.start_ms:
            raise ValueError(f"job {job.job_id} reduce {index} has inconsistent timestamps")
        reduce_durations.append((att.finish_ms - att.sort_finished_ms) / 1000.0)
        if map_stage_end is not None and att.start_ms < map_stage_end:
            # First wave: only the portion of the shuffle after the last
            # map counts (the overlapped part is allocation-dependent).
            first_shuffle.append(max(0, att.shuffle_finished_ms - map_stage_end) / 1000.0)
        else:
            typical_shuffle.append((att.shuffle_finished_ms - att.start_ms) / 1000.0)

    return JobProfile(
        name=job.name or job.job_id,
        num_maps=len(map_durations),
        num_reduces=len(reduce_durations),
        map_durations=np.asarray(map_durations),
        first_shuffle_durations=np.asarray(first_shuffle),
        typical_shuffle_durations=np.asarray(typical_shuffle),
        reduce_durations=np.asarray(reduce_durations),
    )


def profile_history(text: str) -> list[ProfiledJob]:
    """Profile every job in a history log, timeline-normalized.

    Submission times are shifted so the earliest submission is 0 — the
    natural clock for replaying the trace in SimMR.
    """
    parsed = parse_history(text)
    if not parsed:
        return []
    submits = []
    for job in parsed:
        if job.submit_ms is None:
            raise ValueError(f"job {job.job_id} has no submit record")
        submits.append(job.submit_ms)
    t0 = min(submits)
    out = []
    for job in parsed:
        out.append(
            ProfiledJob(
                profile=build_profile(job),
                submit_time=(job.submit_ms - t0) / 1000.0,
                duration=job.duration_s,
                job_id=job.job_id,
            )
        )
    return out


def trace_from_history(text: str) -> list[TraceJob]:
    """A replayable SimMR trace straight from a history log."""
    return [
        TraceJob(pj.profile, pj.submit_time) for pj in profile_history(text)
    ]
