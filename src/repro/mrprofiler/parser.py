"""Parser for Hadoop 0.20-style JobTracker history logs.

MRProfiler's front end (paper Section III-A): "extracts the job
performance metrics by processing the counters and logs stored at the
JobTracker at the end of each job.  The job tracker logs ... faithfully
record the detailed information about the map and reduce tasks'
processing.  The logs also have useful information about the shuffle/sort
stage of each job."

The format is line-oriented ``Entity KEY="value" ...`` records.  Records
for one attempt arrive split across lines (a START line when the attempt
launches, a status line when it finishes); the parser merges them by
attempt id.  Unknown keys are ignored, which is what makes the real
format practical to parse — Rumen does the same.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = ["MapAttempt", "ReduceAttempt", "ParsedJob", "parse_history"]

_LINE_RE = re.compile(r'^(?P<entity>\w+) (?P<body>.*)$')
_KV_RE = re.compile(r'(\w+)="([^"]*)"')
_TASKID_RE = re.compile(r'task_\d+_\d+_(?P<kind>[mr])_(?P<index>\d+)$')
_ATTEMPTID_RE = re.compile(
    r'attempt_\d+_\d+_(?P<kind>[mr])_(?P<index>\d+)_(?P<attempt>\d+)$'
)


@dataclass(slots=True)
class MapAttempt:
    """Timing of one map attempt (epoch milliseconds)."""

    index: int
    attempt: int = 0
    start_ms: Optional[int] = None
    finish_ms: Optional[int] = None
    hostname: str = ""
    status: str = ""

    @property
    def duration_s(self) -> float:
        if self.start_ms is None or self.finish_ms is None:
            raise ValueError(f"map attempt {self.index} is incomplete")
        return (self.finish_ms - self.start_ms) / 1000.0


@dataclass(slots=True)
class ReduceAttempt:
    """Timing of one reduce attempt (epoch milliseconds)."""

    index: int
    attempt: int = 0
    start_ms: Optional[int] = None
    shuffle_finished_ms: Optional[int] = None
    sort_finished_ms: Optional[int] = None
    finish_ms: Optional[int] = None
    hostname: str = ""
    status: str = ""

    @property
    def complete(self) -> bool:
        return None not in (
            self.start_ms,
            self.shuffle_finished_ms,
            self.sort_finished_ms,
            self.finish_ms,
        )


@dataclass(slots=True)
class ParsedJob:
    """Everything MRProfiler needs about one job, straight from the log."""

    job_id: str
    name: str = ""
    submit_ms: Optional[int] = None
    launch_ms: Optional[int] = None
    finish_ms: Optional[int] = None
    total_maps: Optional[int] = None
    total_reduces: Optional[int] = None
    status: str = ""
    #: every recorded attempt, keyed by (task index, attempt number) —
    #: Rumen-style completeness (speculative/killed attempts included).
    all_map_attempts: dict[tuple[int, int], MapAttempt] = field(default_factory=dict)
    all_reduce_attempts: dict[tuple[int, int], ReduceAttempt] = field(default_factory=dict)

    @staticmethod
    def _winners(records: dict) -> dict:
        """index -> the successful attempt (or the sole recorded one).

        Speculative execution can leave several attempts per task; the
        one with ``TASK_STATUS="SUCCESS"`` defines the task's timing.
        """
        out: dict = {}
        for (index, _attempt), att in sorted(records.items()):
            current = out.get(index)
            if current is None or (att.status == "SUCCESS" and current.status != "SUCCESS"):
                out[index] = att
        return out

    @property
    def map_attempts(self) -> dict[int, MapAttempt]:
        """index -> winning map attempt."""
        return self._winners(self.all_map_attempts)

    @property
    def reduce_attempts(self) -> dict[int, ReduceAttempt]:
        """index -> winning reduce attempt."""
        return self._winners(self.all_reduce_attempts)

    @property
    def map_stage_end_ms(self) -> int:
        """Finish time of the last map task."""
        finishes = [a.finish_ms for a in self.map_attempts.values() if a.finish_ms is not None]
        if not finishes:
            raise ValueError(f"job {self.job_id} has no finished map attempts")
        return max(finishes)

    @property
    def duration_s(self) -> float:
        """Job completion time (seconds, finish - submit)."""
        if self.submit_ms is None or self.finish_ms is None:
            raise ValueError(f"job {self.job_id} lacks submit/finish records")
        return (self.finish_ms - self.submit_ms) / 1000.0


def _task_key(fields: dict[str, str]) -> Optional[tuple[int, int]]:
    """(task index, attempt number) of an attempt record."""
    attempt_id = fields.get("TASK_ATTEMPT_ID", "")
    m = _ATTEMPTID_RE.search(attempt_id)
    if m:
        return int(m.group("index")), int(m.group("attempt"))
    taskid = fields.get("TASKID", "")
    m = _TASKID_RE.search(taskid)
    return (int(m.group("index")), 0) if m else None


def parse_history(text: str | Iterable[str]) -> list[ParsedJob]:
    """Parse a JobTracker history log into per-job records.

    Accepts the full log text or an iterable of lines.  Jobs are returned
    in order of first appearance.  Malformed lines raise
    :class:`ValueError` with the offending content — silently skipping
    corrupt records would poison downstream profiles.
    """
    lines = text.splitlines() if isinstance(text, str) else text
    jobs: dict[str, ParsedJob] = {}

    for raw in lines:
        line = raw.strip()
        if not line:
            continue
        m = _LINE_RE.match(line)
        if m is None:
            raise ValueError(f"unparseable history line: {line!r}")
        entity = m.group("entity")
        fields = dict(_KV_RE.findall(m.group("body")))
        job_id = fields.get("JOBID")
        if job_id is None:
            # Attempt records carry the job id inside the task id.
            taskid = fields.get("TASKID", "")
            parts = taskid.split("_")
            if len(parts) >= 3:
                job_id = f"job_{parts[1]}_{parts[2]}"
        if job_id is None:
            raise ValueError(f"history line has no job id: {line!r}")
        job = jobs.setdefault(job_id, ParsedJob(job_id=job_id))

        if entity == "Job":
            if "JOBNAME" in fields:
                job.name = fields["JOBNAME"]
            if "SUBMIT_TIME" in fields:
                job.submit_ms = int(fields["SUBMIT_TIME"])
            if "LAUNCH_TIME" in fields:
                job.launch_ms = int(fields["LAUNCH_TIME"])
            if "TOTAL_MAPS" in fields:
                job.total_maps = int(fields["TOTAL_MAPS"])
            if "TOTAL_REDUCES" in fields:
                job.total_reduces = int(fields["TOTAL_REDUCES"])
            if "FINISH_TIME" in fields:
                job.finish_ms = int(fields["FINISH_TIME"])
            if "JOB_STATUS" in fields:
                job.status = fields["JOB_STATUS"]

        elif entity == "MapAttempt":
            key = _task_key(fields)
            if key is None:
                raise ValueError(f"MapAttempt without task index: {line!r}")
            att = job.all_map_attempts.setdefault(
                key, MapAttempt(index=key[0], attempt=key[1])
            )
            if "START_TIME" in fields:
                att.start_ms = int(fields["START_TIME"])
            if "FINISH_TIME" in fields:
                att.finish_ms = int(fields["FINISH_TIME"])
            if "HOSTNAME" in fields:
                att.hostname = fields["HOSTNAME"]
            if "TASK_STATUS" in fields:
                att.status = fields["TASK_STATUS"]

        elif entity == "ReduceAttempt":
            key = _task_key(fields)
            if key is None:
                raise ValueError(f"ReduceAttempt without task index: {line!r}")
            ratt = job.all_reduce_attempts.setdefault(
                key, ReduceAttempt(index=key[0], attempt=key[1])
            )
            if "START_TIME" in fields:
                ratt.start_ms = int(fields["START_TIME"])
            if "SHUFFLE_FINISHED" in fields:
                ratt.shuffle_finished_ms = int(fields["SHUFFLE_FINISHED"])
            if "SORT_FINISHED" in fields:
                ratt.sort_finished_ms = int(fields["SORT_FINISHED"])
            if "FINISH_TIME" in fields:
                ratt.finish_ms = int(fields["FINISH_TIME"])
            if "HOSTNAME" in fields:
                ratt.hostname = fields["HOSTNAME"]
            if "TASK_STATUS" in fields:
                ratt.status = fields["TASK_STATUS"]

        # Other entities (Task, Meta, ...) exist in real logs; MRProfiler
        # is "selective and stores only the task durations", so skip them.

    return list(jobs.values())
