"""Profile comparison: is this job the same application as that one?

Section II's conclusion — "the phase duration distributions are very
similar for the same application and different for different
applications.  Therefore any one of the executions (as a job
representative) can be used for a future job replay" — turned into a
library operation: compare two job templates phase by phase (symmetric
KL divergence and KS distance) and judge whether one can stand in for
the other.

The default thresholds come from the reproduction's measured Table I
separation: same-application pairs score well under 2.5 on every phase,
cross-application pairs well above it (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.job import JobProfile
from ..stats.cdf import ks_distance
from ..stats.kl import histogram_kl

__all__ = ["PhaseComparison", "ProfileComparison", "compare_profiles"]

#: Symmetric-KL threshold under which a phase looks like "same app".
DEFAULT_KL_THRESHOLD = 2.5


@dataclass(frozen=True, slots=True)
class PhaseComparison:
    """Divergence of one execution phase between two profiles."""

    phase: str
    kl_divergence: float
    ks_distance: float
    mean_a: float
    mean_b: float

    def similar(self, kl_threshold: float = DEFAULT_KL_THRESHOLD) -> bool:
        return self.kl_divergence <= kl_threshold


@dataclass(frozen=True)
class ProfileComparison:
    """Full comparison of two job templates."""

    name_a: str
    name_b: str
    phases: tuple[PhaseComparison, ...]
    kl_threshold: float

    @property
    def same_application(self) -> bool:
        """True when every compared phase is under the KL threshold."""
        return all(p.similar(self.kl_threshold) for p in self.phases)

    def rows(self) -> list[dict]:
        return [
            {
                "phase": p.phase,
                "kl": p.kl_divergence,
                "ks": p.ks_distance,
                f"mean[{self.name_a}]": p.mean_a,
                f"mean[{self.name_b}]": p.mean_b,
                "similar": p.similar(self.kl_threshold),
            }
            for p in self.phases
        ]

    def __str__(self) -> str:
        verdict = (
            "profiles look like the SAME application"
            if self.same_application
            else "profiles look like DIFFERENT applications"
        )
        lines = [f"{self.name_a} vs {self.name_b}: {verdict} "
                 f"(KL threshold {self.kl_threshold})"]
        for p in self.phases:
            mark = "~" if p.similar(self.kl_threshold) else "!"
            lines.append(
                f"  {mark} {p.phase:8s} KL={p.kl_divergence:6.2f} KS={p.ks_distance:.3f} "
                f"means {p.mean_a:.1f}s vs {p.mean_b:.1f}s"
            )
        return "\n".join(lines)


def _shuffle_sample(profile: JobProfile) -> np.ndarray:
    parts = [
        arr
        for arr in (profile.first_shuffle_durations, profile.typical_shuffle_durations)
        if arr.size
    ]
    return np.concatenate(parts) if parts else np.empty(0)


def compare_profiles(
    a: JobProfile,
    b: JobProfile,
    *,
    kl_threshold: float = DEFAULT_KL_THRESHOLD,
) -> ProfileComparison:
    """Phase-by-phase comparison of two job templates.

    Phases present in only one profile are skipped (a map-only job and a
    full job are compared on maps alone — and may still read "similar";
    inspect the phases when task structure matters).
    """
    if kl_threshold <= 0:
        raise ValueError(f"kl_threshold must be > 0, got {kl_threshold}")
    phases: list[PhaseComparison] = []
    pairs = [
        ("map", a.map_durations, b.map_durations),
        ("shuffle", _shuffle_sample(a), _shuffle_sample(b)),
        ("reduce", a.reduce_durations, b.reduce_durations),
    ]
    for phase, sample_a, sample_b in pairs:
        if sample_a.size == 0 or sample_b.size == 0:
            continue
        phases.append(
            PhaseComparison(
                phase=phase,
                kl_divergence=histogram_kl(sample_a, sample_b),
                ks_distance=ks_distance(sample_a, sample_b),
                mean_a=float(sample_a.mean()),
                mean_b=float(sample_b.mean()),
            )
        )
    if not phases:
        raise ValueError("the profiles share no comparable phases")
    return ProfileComparison(
        name_a=a.name, name_b=b.name, phases=tuple(phases), kl_threshold=kl_threshold
    )
