"""MRProfiler: JobTracker-log parsing and job-template extraction."""

from .compare import PhaseComparison, ProfileComparison, compare_profiles
from .parser import MapAttempt, ParsedJob, ReduceAttempt, parse_history
from .profiler import ProfiledJob, build_profile, profile_history, trace_from_history

__all__ = [
    "PhaseComparison",
    "ProfileComparison",
    "compare_profiles",
    "MapAttempt",
    "ParsedJob",
    "ReduceAttempt",
    "parse_history",
    "ProfiledJob",
    "build_profile",
    "profile_history",
    "trace_from_history",
]
