"""FIFO with per-job slot caps — the paper's modified FIFO.

Section II: "we have modified the default FIFO scheduler in Hadoop such
that it allocates a requested number of map/reduce slots for a job
execution (instead of maximum)."  That modified scheduler produced the
WordCount executions behind Figures 1-3 (128x128, 64x64, 32x32 slots).

The cap is applied through the same ``wanted_*_slots`` mechanism MinEDF
uses, so the engine (and the Hadoop emulator) enforce it identically.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.cluster import ClusterConfig
from ..core.job import Job
from .base import Scheduler
from .fifo import FIFOScheduler

__all__ = ["CappedFIFOScheduler"]


class CappedFIFOScheduler(FIFOScheduler):
    """FIFO ordering, but every job is capped at the requested slots.

    Parameters
    ----------
    map_slots / reduce_slots:
        The per-job allocation request.  ``None`` leaves that dimension
        uncapped (plain FIFO behaviour).
    """

    name = "CappedFIFO"

    def __init__(
        self, map_slots: Optional[int] = None, reduce_slots: Optional[int] = None
    ) -> None:
        if map_slots is not None and map_slots < 1:
            raise ValueError(f"map_slots cap must be >= 1, got {map_slots}")
        if reduce_slots is not None and reduce_slots < 0:
            raise ValueError(f"reduce_slots cap must be >= 0, got {reduce_slots}")
        self.map_slots = map_slots
        self.reduce_slots = reduce_slots
        self.name = f"CappedFIFO({map_slots}x{reduce_slots})"

    def on_job_arrival(self, job: Job, time: float, cluster: ClusterConfig) -> None:
        job.wanted_map_slots = self.map_slots
        job.wanted_reduce_slots = self.reduce_slots
