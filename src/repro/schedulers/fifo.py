"""The default Hadoop FIFO policy.

"This policy finds the earliest arriving job that needs a map (or reduce)
task to be executed next" (paper Section III-C).  Ties on submission time
break by job id, i.e. submission order, making replays deterministic.
"""

from __future__ import annotations

from ..core.job import Job
from .base import StaticPriorityScheduler

__all__ = ["FIFOScheduler"]


class FIFOScheduler(StaticPriorityScheduler):
    """Earliest-arrival-first job ordering; jobs take all slots they can.

    The policy is fully determined by :meth:`priority_key`, so both
    ``choose_next_*`` entry points come from
    :class:`~repro.schedulers.base.StaticPriorityScheduler` and the
    engine serves dispatches from its O(log n) heap fast path.
    """

    name = "FIFO"

    def priority_key(self, job: Job) -> tuple:
        return (job.submit_time, job.job_id)
