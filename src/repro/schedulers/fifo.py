"""The default Hadoop FIFO policy.

"This policy finds the earliest arriving job that needs a map (or reduce)
task to be executed next" (paper Section III-C).  Ties on submission time
break by job id, i.e. submission order, making replays deterministic.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.job import Job
from .base import Scheduler

__all__ = ["FIFOScheduler"]


class FIFOScheduler(Scheduler):
    """Earliest-arrival-first job ordering; jobs take all slots they can."""

    name = "FIFO"
    static_priority = True

    def priority_key(self, job: Job) -> tuple:
        return (job.submit_time, job.job_id)

    def choose_next_map_task(self, job_queue: Sequence[Job]) -> Optional[Job]:
        if not job_queue:
            return None
        return min(job_queue, key=lambda j: (j.submit_time, j.job_id))

    def choose_next_reduce_task(self, job_queue: Sequence[Job]) -> Optional[Job]:
        if not job_queue:
            return None
        return min(job_queue, key=lambda j: (j.submit_time, j.job_id))
