"""Deadline-driven policies: MaxEDF and MinEDF (paper Sections III-C, V-A).

Both order jobs by Earliest Deadline First.  They differ in *how many*
slots a job may occupy:

* **MaxEDF** gives the earliest-deadline job every slot it can use (the
  same per-job allocation as FIFO) — jobs often finish far ahead of their
  deadlines, but an urgent late arrival finds the cluster busy and cannot
  preempt running tasks.
* **MinEDF** computes, at job arrival, the *minimal* ``(S_M, S_R)``
  allocation that still meets the job's deadline (via the ARIA model and
  its Lagrange closed form) and caps the job there, leaving spare slots
  for later arrivals.

Jobs without a deadline sort last (deadline = +inf), in submission order.

Both are pure EDF orderings, i.e. fully determined by a constant per-job
key, so they derive their ``choose_next_*`` sides from
:class:`~repro.schedulers.base.StaticPriorityScheduler` and run on the
engine's heap fast path.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..core.cluster import ClusterConfig
from ..core.job import Job
from ..models.aria import Bound, min_slots_for_deadline
from .base import StaticPriorityScheduler

__all__ = ["MaxEDFScheduler", "MinEDFScheduler"]


def _edf_key(job: Job) -> tuple[float, float, int]:
    deadline = job.deadline if job.deadline is not None else math.inf
    return (deadline, job.submit_time, job.job_id)


def _edf_victims(
    job: Job,
    running_jobs: Sequence[Job],
    needed_maps: int,
    needed_reduces: int,
) -> list[tuple[Job, str, int]]:
    """Kill requests freeing slots for ``job`` from later-deadline jobs.

    Victims are taken latest-deadline-first, and only jobs strictly
    behind the arriving job in EDF order are eligible — earlier-deadline
    work is never disturbed.
    """
    key = _edf_key(job)
    later = sorted(
        (j for j in running_jobs if _edf_key(j) > key),
        key=_edf_key,
        reverse=True,
    )
    requests: list[tuple[Job, str, int]] = []
    for kind, needed in (("map", needed_maps), ("reduce", needed_reduces)):
        remaining = needed
        for victim in later:
            if remaining <= 0:
                break
            running = victim.running_maps if kind == "map" else victim.running_reduces
            take = min(running, remaining)
            if take > 0:
                requests.append((victim, kind, take))
                remaining -= take
    return requests


class MaxEDFScheduler(StaticPriorityScheduler):
    """EDF job ordering with FIFO-style maximal per-job allocation.

    ``preemptive=True`` (with an engine run as ``preemption=True``) kills
    later-deadline tasks on the arrival of an earlier-deadline job, up to
    the arrival's full demand — removing the non-preemption artifact the
    paper observes in Figure 7(a).
    """

    name = "MaxEDF"

    def __init__(self, preemptive: bool = False) -> None:
        self.preemptive = preemptive
        if preemptive:
            self.name = "MaxEDF+P"

    def priority_key(self, job: Job) -> tuple:
        return _edf_key(job)

    def preemption_requests(
        self,
        job: Job,
        running_jobs: Sequence[Job],
        cluster: ClusterConfig,
        free_map_slots: int,
        free_reduce_slots: int,
    ) -> list[tuple[Job, str, int]]:
        if not self.preemptive or job.deadline is None:
            return []
        demand_m = min(job.pending_maps, cluster.map_slots)
        demand_r = min(job.pending_reduces, cluster.reduce_slots)
        return _edf_victims(job, running_jobs, demand_m - free_map_slots,
                            demand_r - free_reduce_slots)


class MinEDFScheduler(StaticPriorityScheduler):
    """EDF ordering with model-derived minimal per-job slot allocations.

    On each job arrival the ARIA model is inverted for the job's remaining
    time to deadline; the resulting ``(S_M, S_R)`` demand is stored on the
    job as ``wanted_map_slots`` / ``wanted_reduce_slots``, which the engine
    enforces ("it also keeps track of the number of running and scheduled
    map and reduce tasks so that they are always less than the 'wanted'
    number of slots").

    Parameters
    ----------
    bound:
        Which ARIA bound drives the inversion; the paper approximates the
        completion time by the average of lower and upper bounds.
    """

    name = "MinEDF"

    def priority_key(self, job: Job) -> tuple:
        return _edf_key(job)

    def __init__(self, bound: Bound = "average", preemptive: bool = False) -> None:
        self.bound: Bound = bound
        self.preemptive = preemptive
        if preemptive:
            self.name = "MinEDF+P"

    def preemption_requests(
        self,
        job: Job,
        running_jobs: Sequence[Job],
        cluster: ClusterConfig,
        free_map_slots: int,
        free_reduce_slots: int,
    ) -> list[tuple[Job, str, int]]:
        if not self.preemptive or job.deadline is None:
            return []
        demand_m = job.wanted_map_slots
        if demand_m is None:
            demand_m = min(job.pending_maps, cluster.map_slots)
        demand_r = job.wanted_reduce_slots
        if demand_r is None:
            demand_r = min(job.pending_reduces, cluster.reduce_slots)
        return _edf_victims(job, running_jobs, demand_m - free_map_slots,
                            demand_r - free_reduce_slots)

    def on_job_arrival(self, job: Job, time: float, cluster: ClusterConfig) -> None:
        """Size the job's slot demand to just meet its deadline.

        Raises ``ValueError`` (propagated from
        :func:`~repro.models.aria.min_slots_for_deadline`) when the
        cluster offers zero slots of a kind the job needs — no slot
        allotment can then meet any deadline.
        """
        if job.deadline is None:
            return  # no deadline: uncapped, behaves like MaxEDF for this job
        remaining = job.deadline - time
        if remaining <= 0:
            # Already late: the best the policy can do is everything.
            job.wanted_map_slots = None
            job.wanted_reduce_slots = None
            return
        s_m, s_r = min_slots_for_deadline(
            job.profile, remaining, cluster=cluster, bound=self.bound
        )
        job.wanted_map_slots = s_m if job.profile.num_maps > 0 else 0
        job.wanted_reduce_slots = s_r if job.profile.num_reduces > 0 else 0
