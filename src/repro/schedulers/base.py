"""The pluggable scheduling-policy interface.

SimMR communicates with the scheduling policy "using a very narrow
interface consisting of the following functions:
``CHOOSENEXTMAPTASK(jobQ)`` and ``CHOOSENEXTREDUCETASK(jobQ)``" (paper
Section III-B).  These return the job whose map (reduce) task should be
dispatched next, or ``None`` to leave the remaining slots idle.

The engine hands the policy only *eligible* jobs — jobs with an
undispatched task of the requested kind, past the ``minMapPercentCompleted``
threshold for reduces, and below their ``wanted_*_slots`` cap if a policy
set one (the hook MinEDF uses to pin each job to its model-derived minimal
allocation).

``on_job_arrival`` / ``on_job_departure`` are optional notification hooks;
stateless policies ignore them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.cluster import ClusterConfig
    from ..core.job import Job

__all__ = ["ColumnarSchedulerMixin", "Scheduler", "StaticPriorityScheduler"]


class Scheduler(ABC):
    """Base class for SimMR scheduling policies."""

    #: Human-readable policy name, shown in results and experiment tables.
    name: str = "scheduler"

    #: Performance hook.  When True, the policy promises that
    #: :meth:`priority_key` is *constant over a job's lifetime* and that
    #: ``choose_next_*`` would always return the eligible job with the
    #: smallest key.  The engine then serves dispatches from a priority
    #: heap in O(log n) instead of scanning the job queue per dispatch —
    #: provably the same schedule, just faster.  Policies whose choice
    #: depends on mutable state (e.g. Fair's running-task counts) must
    #: leave this False.
    static_priority: bool = False

    def priority_key(self, job: "Job") -> tuple:
        """Total-order key for ``static_priority`` policies (lower = first)."""
        raise NotImplementedError(
            f"{type(self).__name__} sets static_priority but defines no priority_key"
        )

    def on_job_arrival(self, job: "Job", time: float, cluster: "ClusterConfig") -> None:
        """Called when ``job`` is submitted (before any allocation)."""

    def on_job_departure(self, job: "Job", time: float) -> None:
        """Called when ``job`` completes."""

    def preemption_requests(
        self,
        job: "Job",
        running_jobs: Sequence["Job"],
        cluster: "ClusterConfig",
        free_map_slots: int,
        free_reduce_slots: int,
    ) -> list[tuple["Job", str, int]]:
        """Tasks to kill on ``job``'s arrival, as ``(victim, kind, count)``.

        Consulted only when the engine runs with ``preemption=True``.
        Hadoop preempts by killing: the victims' attempts lose all
        progress and rerun later.  The paper identifies the *absence* of
        this ("the scheduler does not pre-empt tasks") as the cause of
        the deadline-miss bump around 100 s inter-arrival in Figure 7(a);
        preemptive policies override this hook to remove it.  Default: no
        preemption.
        """
        return []

    @abstractmethod
    def choose_next_map_task(self, job_queue: Sequence["Job"]) -> Optional["Job"]:
        """Pick the job whose next map task should run, or ``None``.

        ``job_queue`` contains only map-eligible jobs, in submission order.
        """

    @abstractmethod
    def choose_next_reduce_task(self, job_queue: Sequence["Job"]) -> Optional["Job"]:
        """Pick the job whose next reduce task should run, or ``None``.

        ``job_queue`` contains only reduce-eligible jobs, in submission
        order.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class ColumnarSchedulerMixin:
    """Opt-in contract letting the columnar kernel drive a dynamic policy.

    A dynamic scheduler normally forces the object engine: its choice
    reads mutable state, so the kernel cannot precompute the schedule.
    Mixing this class in promises that the policy's *entire* decision is
    a pure function of the per-job state arrays the kernel already
    maintains (running/dispatched/completed counts, submit times,
    deadlines, queue depth, free slots — see
    :class:`~repro.core.columns.SchedulerColumns`).  The kernel then
    recomputes the policy's priority columns vectorially at every
    decision point instead of rebuilding candidate lists and calling
    ``choose_next_*`` per dispatch, and keeps the event stream
    bit-identical to the object engine's (the contract below is exactly
    ``min(candidates, key=...)`` with a forced ``job_id`` tie-break).

    Requirements:

    * ``columnar_key_columns(view, ids, kind)`` must return the policy's
      priority key as a tuple of float columns aligned with ``ids``
      (lexicographic, most significant first), *without* the final
      ``job_id`` tie-break — the kernel appends it, making every key
      total.  The columns must equal, element for element, the leading
      components of the key ``choose_next_*`` minimises.
    * ``choose_next_*`` must never return ``None`` for a non-empty
      candidate list (policies that deliberately idle slots cannot use
      the kernel).
    * any state the key reads beyond the view (e.g. Fair's pool table)
      must be fixed per job for the whole run and set up in
      ``columnar_bind``.
    """

    #: Envelope flag the kernel checks; the mixin's presence is the opt-in.
    columnar_capable: bool = True

    def columnar_bind(self, view: object) -> None:
        """Called once per run, before any event: build per-job columns.

        ``view`` is the kernel's :class:`~repro.core.columns.
        SchedulerColumns`; ``view.jobs`` holds the run's
        :class:`~repro.core.job.Job` objects in trace order (all still
        pending).  Default: nothing to set up.
        """

    def columnar_key_columns(
        self, view: object, ids: object, kind: str
    ) -> tuple:
        """Priority-key columns for the eligible jobs ``ids``.

        ``ids`` is an int64 array of job ids (indices into the view's
        arrays); ``kind`` is ``"map"`` or ``"reduce"``.  Returns a tuple
        of numpy columns, most significant first; scalars broadcast.
        """
        raise NotImplementedError(
            f"{type(self).__name__} mixes in ColumnarSchedulerMixin but "
            "defines no columnar_key_columns"
        )


class StaticPriorityScheduler(Scheduler):
    """Base for policies fully determined by a constant per-job priority.

    Subclasses define :meth:`priority_key` only; both ``choose_next_*``
    sides of the narrow interface are derived from it, so the heap fast
    path and the dynamic path cannot drift apart (simlint rule SIM003
    flags subclasses that override ``choose_next_*`` anyway).
    """

    static_priority = True

    @abstractmethod
    def priority_key(self, job: "Job") -> tuple:
        """Total-order key (lower = dispatched first), constant per job."""

    # The one sanctioned choose_next_* implementation for static
    # policies: exactly what the engine's fast-path heap computes.
    def choose_next_map_task(  # simlint: disable=SIM003
        self, job_queue: Sequence["Job"]
    ) -> Optional["Job"]:
        return min(job_queue, key=self.priority_key, default=None)

    def choose_next_reduce_task(  # simlint: disable=SIM003
        self, job_queue: Sequence["Job"]
    ) -> Optional["Job"]:
        return min(job_queue, key=self.priority_key, default=None)
