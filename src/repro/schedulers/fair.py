"""A Hadoop Fair Scheduler (HFS) style policy.

The paper lists HFS (Zaharia et al.) among the broadly used production
schedulers SimMR can evaluate.  This implementation follows HFS's core
idea at the slot-allocation granularity SimMR models: every pool (and
every job within a pool) should, over time, receive an equal — or
weight-proportional — share of the cluster's slots.

When a slot frees, the policy grants it to the most *deficient* pool
(smallest ``running / weight``), and within the pool to the job with the
fewest running tasks of the requested kind (ties: submission order).
Data locality / delay scheduling is out of scope — SimMR does not model
task placement, only slot counts.

HFS also preempts: when a pool is starved below its fair share, the
scheduler kills tasks from pools running *over* their share so the
starved pool can reach it (victims rerun from scratch — Hadoop kill
semantics, the same mechanism the preemptive EDF variants use).
``FairScheduler(preemptive=True)`` enables a simplified instantaneous
version of that rule, consulted on every job arrival when the engine
runs with ``preemption=True``: real HFS waits out a configurable
timeout before killing, which a discrete-event replay collapses to
"immediately on arrival".

Fair also carries the :class:`~repro.schedulers.base.
ColumnarSchedulerMixin` contract: its whole decision is a function of
running-task counts the columnar kernel maintains as arrays, so the
kernel recomputes the ``(pool deficiency, job running, submit)`` key
columns vectorially per epoch — ``np.bincount`` over a per-job pool
index built once per run — instead of rebuilding the pool table in
Python per dispatch.  Digest identity with the object path is asserted
in ``tests/test_columnar_kernel.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Mapping, Optional, Sequence

import numpy as np

from ..core.job import Job
from .base import ColumnarSchedulerMixin, Scheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.cluster import ClusterConfig
    from ..core.columns import SchedulerColumns

__all__ = ["FairScheduler"]

PoolFn = Callable[[Job], str]


def _default_pool(job: Job) -> str:
    return job.profile.name


class FairScheduler(ColumnarSchedulerMixin, Scheduler):
    """Weighted max-min fair sharing of map and reduce slots.

    Parameters
    ----------
    pool_of:
        Maps a job to its pool name; defaults to the job's application
        name (each application is its own pool).
    weights:
        Pool name -> weight.  Pools absent from the mapping get weight 1.
    preemptive:
        Kill tasks from over-share pools when an arrival's pool cannot
        reach its fair share from free slots alone (requires the engine
        to run with ``preemption=True``; see the module docstring).
    """

    name = "Fair"

    def __init__(
        self,
        pool_of: Optional[PoolFn] = None,
        weights: Optional[Mapping[str, float]] = None,
        *,
        preemptive: bool = False,
    ) -> None:
        self.pool_of: PoolFn = pool_of or _default_pool
        self.weights: dict[str, float] = dict(weights or {})
        for pool, w in self.weights.items():
            if w <= 0:
                raise ValueError(f"pool {pool!r} has non-positive weight {w}")
        self.preemptive = preemptive
        if preemptive:
            self.name = "Fair+P"
        self._col_pool: Optional[np.ndarray] = None
        self._col_weight: Optional[np.ndarray] = None
        self._n_pools = 0

    def _weight(self, pool: str) -> float:
        return self.weights.get(pool, 1.0)

    def preemption_requests(
        self,
        job: Job,
        running_jobs: Sequence[Job],
        cluster: "ClusterConfig",
        free_map_slots: int,
        free_reduce_slots: int,
    ) -> list[tuple[Job, str, int]]:
        """Kills restoring the arriving job's pool to its fair share.

        The arrival's pool is entitled to ``floor(total * w / sum(w))``
        slots of each kind (weights summed over the pools currently
        present).  If pending work plus free slots cannot reach that
        entitlement, tasks are reclaimed from pools running *over* their
        own entitlement — greatest surplus first, never driving a victim
        pool below its share, jobs within a pool yielding most-running
        first (ties: latest submission).  Mirrors HFS's guarantee that
        preemption only ever moves pools *toward* their fair shares.
        """
        if not self.preemptive:
            return []
        active = [job, *running_jobs]
        pools = sorted({self.pool_of(j) for j in active})
        total_weight = sum(self._weight(p) for p in pools)
        my_pool = self.pool_of(job)
        requests: list[tuple[Job, str, int]] = []
        for kind, free, total in (
            ("map", free_map_slots, cluster.map_slots),
            ("reduce", free_reduce_slots, cluster.reduce_slots),
        ):
            pending = job.pending_maps if kind == "map" else job.pending_reduces
            running = (
                (lambda j: j.running_maps)
                if kind == "map"
                else (lambda j: j.running_reduces)
            )
            pool_running: dict[str, int] = {p: 0 for p in pools}
            for other in active:
                pool_running[self.pool_of(other)] += running(other)
            entitled = {
                p: int(total * self._weight(p) / total_weight) for p in pools
            }
            need = min(pending, entitled[my_pool] - pool_running[my_pool]) - free
            if need <= 0:
                continue
            surplus = {p: pool_running[p] - entitled[p] for p in pools}
            victims = sorted(
                (j for j in running_jobs if running(j) > 0),
                key=lambda j: (
                    -surplus[self.pool_of(j)],
                    -running(j),
                    -j.submit_time,
                    -j.job_id,
                ),
            )
            for victim in victims:
                if need <= 0:
                    break
                pool = self.pool_of(victim)
                take = min(running(victim), surplus[pool], need)
                if take > 0:
                    requests.append((victim, kind, take))
                    surplus[pool] -= take
                    need -= take
        return requests

    def _choose(self, job_queue: Sequence[Job], kind: str) -> Optional[Job]:
        if not job_queue:
            return None
        running = (lambda j: j.running_maps) if kind == "map" else (
            lambda j: j.running_reduces
        )
        # Pool deficiency: total running tasks of this kind per weight.
        pool_running: dict[str, int] = {}
        for job in job_queue:
            pool = self.pool_of(job)
            pool_running[pool] = pool_running.get(pool, 0) + running(job)

        def key(job: Job) -> tuple[float, int, float, int]:
            pool = self.pool_of(job)
            deficiency = pool_running[pool] / self._weight(pool)
            return (deficiency, running(job), job.submit_time, job.job_id)

        return min(job_queue, key=key)

    def choose_next_map_task(self, job_queue: Sequence[Job]) -> Optional[Job]:
        return self._choose(job_queue, "map")

    def choose_next_reduce_task(self, job_queue: Sequence[Job]) -> Optional[Job]:
        return self._choose(job_queue, "reduce")

    # -- columnar contract (the kernel's vectorized epoch decisions) -------

    def columnar_bind(self, view: "SchedulerColumns") -> None:
        """Intern each job's pool once; choices then never call pool_of."""
        jobs = view.jobs
        pools: dict[str, int] = {}
        pidx = np.empty(len(jobs), dtype=np.int64)
        for i, job in enumerate(jobs):
            name = self.pool_of(job)
            pid = pools.get(name)
            if pid is None:
                pid = len(pools)
                pools[name] = pid
            pidx[i] = pid
        weights = np.empty(len(pools), dtype=np.float64)
        for name, pid in pools.items():
            weights[pid] = self._weight(name)
        self._col_pool = pidx
        self._col_weight = weights
        self._n_pools = len(pools)

    def columnar_key_columns(
        self, view: "SchedulerColumns", ids: np.ndarray, kind: str
    ) -> tuple[np.ndarray, ...]:
        """``(pool deficiency, job running, submit)`` over the candidates.

        Matches :meth:`_choose` exactly: the pool table sums running
        tasks over the *eligible* jobs only, and the per-pool division
        is the same float64 ``int-sum / weight`` the scalar key computes
        (``np.bincount`` float64 sums of small integers are exact).
        """
        if kind == "map":
            run = (view.mdisp - view.mcomp)[ids]
        else:
            run = (view.rdisp - view.rcomp)[ids]
        assert self._col_pool is not None and self._col_weight is not None
        pool = self._col_pool[ids]
        pool_running = np.bincount(pool, weights=run, minlength=self._n_pools)
        share = pool_running[pool] / self._col_weight[pool]
        return (share, run, view.submit[ids])
