"""A Hadoop Fair Scheduler (HFS) style policy.

The paper lists HFS (Zaharia et al.) among the broadly used production
schedulers SimMR can evaluate.  This implementation follows HFS's core
idea at the slot-allocation granularity SimMR models: every pool (and
every job within a pool) should, over time, receive an equal — or
weight-proportional — share of the cluster's slots.

When a slot frees, the policy grants it to the most *deficient* pool
(smallest ``running / weight``), and within the pool to the job with the
fewest running tasks of the requested kind (ties: submission order).
Data locality / delay scheduling is out of scope — SimMR does not model
task placement, only slot counts.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Sequence

from ..core.job import Job
from .base import Scheduler

__all__ = ["FairScheduler"]

PoolFn = Callable[[Job], str]


def _default_pool(job: Job) -> str:
    return job.profile.name


class FairScheduler(Scheduler):
    """Weighted max-min fair sharing of map and reduce slots.

    Parameters
    ----------
    pool_of:
        Maps a job to its pool name; defaults to the job's application
        name (each application is its own pool).
    weights:
        Pool name -> weight.  Pools absent from the mapping get weight 1.
    """

    name = "Fair"

    def __init__(
        self,
        pool_of: Optional[PoolFn] = None,
        weights: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.pool_of: PoolFn = pool_of or _default_pool
        self.weights: dict[str, float] = dict(weights or {})
        for pool, w in self.weights.items():
            if w <= 0:
                raise ValueError(f"pool {pool!r} has non-positive weight {w}")

    def _weight(self, pool: str) -> float:
        return self.weights.get(pool, 1.0)

    def _choose(self, job_queue: Sequence[Job], kind: str) -> Optional[Job]:
        if not job_queue:
            return None
        running = (lambda j: j.running_maps) if kind == "map" else (
            lambda j: j.running_reduces
        )
        # Pool deficiency: total running tasks of this kind per weight.
        pool_running: dict[str, int] = {}
        for job in job_queue:
            pool = self.pool_of(job)
            pool_running[pool] = pool_running.get(pool, 0) + running(job)

        def key(job: Job) -> tuple[float, int, float, int]:
            pool = self.pool_of(job)
            deficiency = pool_running[pool] / self._weight(pool)
            return (deficiency, running(job), job.submit_time, job.job_id)

        return min(job_queue, key=key)

    def choose_next_map_task(self, job_queue: Sequence[Job]) -> Optional[Job]:
        return self._choose(job_queue, "map")

    def choose_next_reduce_task(self, job_queue: Sequence[Job]) -> Optional[Job]:
        return self._choose(job_queue, "reduce")
