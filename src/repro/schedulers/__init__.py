"""Pluggable SimMR scheduling policies.

The paper's three policies (FIFO, MaxEDF, MinEDF) plus the two production
Hadoop schedulers it discusses (Fair, Capacity).  All implement the narrow
:class:`~repro.schedulers.base.Scheduler` interface.
"""

from .base import Scheduler, StaticPriorityScheduler
from .capacity import CapacityScheduler
from .capped import CappedFIFOScheduler
from .dynamic_priority import DynamicPriorityScheduler, UserAccount
from .edf import MaxEDFScheduler, MinEDFScheduler
from .fair import FairScheduler
from .flex import FLEX_METRICS, FlexScheduler
from .fifo import FIFOScheduler

__all__ = [
    "Scheduler",
    "StaticPriorityScheduler",
    "FIFOScheduler",
    "CappedFIFOScheduler",
    "MaxEDFScheduler",
    "MinEDFScheduler",
    "FairScheduler",
    "CapacityScheduler",
    "DynamicPriorityScheduler",
    "FlexScheduler",
    "FLEX_METRICS",
    "UserAccount",
    "make_scheduler",
]

_REGISTRY = {
    "fifo": FIFOScheduler,
    "maxedf": MaxEDFScheduler,
    "minedf": MinEDFScheduler,
    "fair": FairScheduler,
    "dp": DynamicPriorityScheduler,
    "dynamicpriority": DynamicPriorityScheduler,
    "flex": FlexScheduler,
}


def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Build a scheduler by case-insensitive name ("fifo", "minedf", ...).

    The Capacity scheduler is not constructible by name because it has no
    sensible default queue configuration.
    """
    key = name.strip().lower()
    try:
        cls = _REGISTRY[key]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)
