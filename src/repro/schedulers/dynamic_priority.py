"""Dynamic Priority (DP) scheduling — budget-based proportional share.

The paper lists the Dynamic Priority scheduler (Sandholm & Lai, JSSPP
2010; reference [5]) among the research prototypes SimMR can evaluate.
Its market mechanism, reproduced at SimMR's slot granularity:

* each *user* holds a budget and declares a **spending rate** (a bid, in
  budget units per slot-second);
* cluster capacity is divided among users with remaining budget in
  proportion to their spending rates — a user bidding twice as much gets
  twice the slots;
* budget is charged for the slot-seconds actually consumed (here: at
  task dispatch, for the dispatched task's duration — the engine is
  trace-driven, so durations are known);
* a user whose budget runs out keeps only best-effort access: their jobs
  compete FIFO for slots no paying user wants.

The policy is usage-dependent, so it runs on the engine's dynamic
(narrow-interface) path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

from ..core.job import Job
from .base import Scheduler

__all__ = ["UserAccount", "DynamicPriorityScheduler"]

UserFn = Callable[[Job], str]


@dataclass
class UserAccount:
    """One user's market state."""

    name: str
    budget: float
    spending_rate: float
    spent: float = 0.0

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise ValueError(f"user {self.name!r}: budget must be >= 0")
        if self.spending_rate <= 0:
            raise ValueError(f"user {self.name!r}: spending rate must be > 0")

    @property
    def remaining(self) -> float:
        return self.budget - self.spent

    @property
    def paying(self) -> bool:
        return self.remaining > 0

    def charge(self, slot_seconds: float) -> None:
        """Charge for consumed slot-seconds at this user's rate."""
        self.spent += self.spending_rate * slot_seconds


def _default_user(job: Job) -> str:
    return job.profile.name


class DynamicPriorityScheduler(Scheduler):
    """Proportional-share slot allocation driven by per-user bids.

    Parameters
    ----------
    accounts:
        User name -> :class:`UserAccount` (or ``(budget, spending_rate)``
        tuple).  Jobs of unknown users get the ``default_account`` terms.
    user_of:
        Maps a job to its user name; defaults to the application name.
    default_account:
        ``(budget, spending_rate)`` for users absent from ``accounts``.
    """

    name = "DynamicPriority"

    def __init__(
        self,
        accounts: Optional[Mapping[str, UserAccount | tuple[float, float]]] = None,
        user_of: Optional[UserFn] = None,
        default_account: tuple[float, float] = (float("inf"), 1.0),
    ) -> None:
        self.user_of: UserFn = user_of or _default_user
        self._default = default_account
        self.accounts: dict[str, UserAccount] = {}
        for name, acct in (accounts or {}).items():
            if isinstance(acct, tuple):
                acct = UserAccount(name, *acct)
            self.accounts[name] = acct

    def account(self, user: str) -> UserAccount:
        """The user's account, created with default terms on first use."""
        acct = self.accounts.get(user)
        if acct is None:
            acct = UserAccount(user, *self._default)
            self.accounts[user] = acct
        return acct

    # ------------------------------------------------------------------ #

    def _task_cost(self, job: Job, kind: str) -> float:
        """Slot-seconds of the task about to be dispatched for ``job``."""
        profile = job.profile
        if kind == "map":
            return profile.map_duration(job.maps_dispatched)
        index = job.reduces_dispatched
        return profile.typical_shuffle_duration(index) + profile.reduce_duration(index)

    def _choose(self, job_queue: Sequence[Job], kind: str) -> Optional[Job]:
        if not job_queue:
            return None
        running = (lambda j: j.running_maps) if kind == "map" else (
            lambda j: j.running_reduces
        )
        # Usage per user of this task kind, for the proportional share.
        usage: dict[str, int] = {}
        for job in job_queue:
            user = self.user_of(job)
            usage[user] = usage.get(user, 0) + running(job)

        paying = [j for j in job_queue if self.account(self.user_of(j)).paying]
        if paying:
            def key(job: Job) -> tuple[float, float, int]:
                user = self.user_of(job)
                share = self.account(user).spending_rate
                return (usage[user] / share, job.submit_time, job.job_id)

            chosen = min(paying, key=key)
        else:
            # Everyone is broke: best-effort FIFO.
            chosen = min(job_queue, key=lambda j: (j.submit_time, j.job_id))

        acct = self.account(self.user_of(chosen))
        if acct.paying:
            acct.charge(self._task_cost(chosen, kind))
        return chosen

    def choose_next_map_task(self, job_queue: Sequence[Job]) -> Optional[Job]:
        return self._choose(job_queue, "map")

    def choose_next_reduce_task(self, job_queue: Sequence[Job]) -> Optional[Job]:
        return self._choose(job_queue, "reduce")
