"""A FLEX-style metric-driven scheduler.

FLEX (Wolf et al., Middleware 2010; the paper's reference [4]) is "a
slot allocation scheduling optimizer" that orders and sizes job
allocations to optimize a chosen penalty metric — average response time,
makespan, stretch, deadlines — while remaining fair-share compatible.

This implementation keeps FLEX's core insight at SimMR's granularity:
for malleable jobs on a slot pool, the optimal *ordering* for each
classical metric is a simple priority rule over remaining work, applied
greedily as slots free up:

* ``avg_response`` — smallest remaining work first (SRPT-style; optimal
  for mean completion time on a single resource, near-optimal here);
* ``makespan`` — largest remaining work first (LPT load balancing);
* ``max_stretch`` — highest stretch first, stretch = time in system /
  total work (protects small jobs from monster queries);
* ``deadline`` — earliest deadline first (EDF; equals MaxEDF ordering).

Remaining work is estimated from the job's profile (the same
task-duration invariants every other SimMR component uses).  Priorities
change as tasks complete, so this policy runs on the engine's dynamic
(narrow-interface) path.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from ..core.job import Job
from .base import Scheduler

__all__ = ["FlexScheduler", "FLEX_METRICS"]

FLEX_METRICS = ("avg_response", "makespan", "max_stretch", "deadline")


def _remaining_work(job: Job) -> float:
    """Estimated task-seconds of not-yet-completed work."""
    profile = job.profile
    maps_left = profile.num_maps - job.maps_completed
    reduces_left = profile.num_reduces - job.reduces_completed
    return maps_left * profile.map_stats.avg + reduces_left * (
        profile.typical_shuffle_stats.avg + profile.reduce_stats.avg
    )


class FlexScheduler(Scheduler):
    """Greedy metric-driven job ordering over the slot pool.

    Parameters
    ----------
    metric:
        One of :data:`FLEX_METRICS`.  The scheduler's display name
        becomes ``Flex(<metric>)``.
    """

    def __init__(self, metric: str = "avg_response") -> None:
        if metric not in FLEX_METRICS:
            raise ValueError(f"unknown FLEX metric {metric!r}; known: {FLEX_METRICS}")
        self.metric = metric
        self.name = f"Flex({metric})"
        self._now = 0.0

    def on_job_arrival(self, job: Job, time: float, cluster) -> None:
        # Track simulated time for the stretch metric (the engine has no
        # explicit clock hook; arrivals and departures bound it).
        self._now = max(self._now, time)

    def on_job_departure(self, job: Job, time: float) -> None:
        self._now = max(self._now, time)

    def _priority(self, job: Job) -> tuple:
        if self.metric == "avg_response":
            return (_remaining_work(job), job.submit_time, job.job_id)
        if self.metric == "makespan":
            return (-_remaining_work(job), job.submit_time, job.job_id)
        if self.metric == "max_stretch":
            total = max(job.profile.total_task_seconds(), 1e-9)
            waited = max(self._now - job.submit_time, 0.0)
            return (-(waited / total), job.submit_time, job.job_id)
        # deadline
        deadline = job.deadline if job.deadline is not None else math.inf
        return (deadline, job.submit_time, job.job_id)

    def choose_next_map_task(self, job_queue: Sequence[Job]) -> Optional[Job]:
        if not job_queue:
            return None
        return min(job_queue, key=self._priority)

    def choose_next_reduce_task(self, job_queue: Sequence[Job]) -> Optional[Job]:
        if not job_queue:
            return None
        return min(job_queue, key=self._priority)
