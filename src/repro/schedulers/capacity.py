"""A Hadoop Capacity Scheduler style policy.

The Capacity scheduler (paper reference [2]) partitions the cluster into
named queues, each guaranteed a fraction of the slots; unused capacity in
one queue may be borrowed by others.  Within a queue, jobs run FIFO.

At SimMR's slot granularity this becomes: when a slot frees, grant it to
the queue whose current usage is furthest *below* its guaranteed share
(usage ratio = running tasks / capacity fraction), then pick the earliest
submitted job in that queue.  Queues over their share can still receive
slots when no under-share queue has demand — that is the "elastic"
borrowing behaviour.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Sequence

from ..core.job import Job
from .base import Scheduler

__all__ = ["CapacityScheduler"]

QueueFn = Callable[[Job], str]


class CapacityScheduler(Scheduler):
    """Multi-queue capacity-guaranteed scheduling.

    Parameters
    ----------
    capacities:
        Queue name -> guaranteed capacity fraction.  Fractions must be
        positive; they are normalized, so they need not sum to 1.
    queue_of:
        Maps a job to a queue name.  Jobs mapping to an unknown queue go
        to ``default_queue``.
    default_queue:
        Queue used for unmapped jobs; must be a key of ``capacities``.
    """

    name = "Capacity"

    def __init__(
        self,
        capacities: Mapping[str, float],
        queue_of: Optional[QueueFn] = None,
        default_queue: Optional[str] = None,
    ) -> None:
        if not capacities:
            raise ValueError("at least one queue capacity is required")
        total = float(sum(capacities.values()))
        if total <= 0 or any(c <= 0 for c in capacities.values()):
            raise ValueError("queue capacities must be positive")
        self.capacities: dict[str, float] = {q: c / total for q, c in capacities.items()}
        self.default_queue = default_queue if default_queue is not None else next(iter(capacities))
        if self.default_queue not in self.capacities:
            raise ValueError(f"default queue {self.default_queue!r} not in capacities")
        self.queue_of: QueueFn = queue_of or (lambda job: self.default_queue)

    def _queue(self, job: Job) -> str:
        q = self.queue_of(job)
        return q if q in self.capacities else self.default_queue

    def _choose(self, job_queue: Sequence[Job], kind: str) -> Optional[Job]:
        if not job_queue:
            return None
        running = (lambda j: j.running_maps) if kind == "map" else (
            lambda j: j.running_reduces
        )
        usage: dict[str, int] = {}
        for job in job_queue:
            q = self._queue(job)
            usage[q] = usage.get(q, 0) + running(job)

        def key(job: Job) -> tuple[float, float, int]:
            q = self._queue(job)
            ratio = usage[q] / self.capacities[q]
            return (ratio, job.submit_time, job.job_id)

        return min(job_queue, key=key)

    def choose_next_map_task(self, job_queue: Sequence[Job]) -> Optional[Job]:
        return self._choose(job_queue, "map")

    def choose_next_reduce_task(self, job_queue: Sequence[Job]) -> Optional[Job]:
        return self._choose(job_queue, "reduce")
