"""Figure 3 and Table I: stability of task-duration distributions.

Section II establishes the property SimMR's replay model rests on:

* **Figure 3** — the CDFs of map, shuffle and reduce task durations of
  two WordCount executions with *different* resource allocations (64x64
  vs 32x32 slots) are nearly identical.
* **Table I** — the symmetric KL divergence between phase-duration
  distributions of different executions of the *same* application is
  small, while across *different* applications it is large (the paper
  quotes cross-application (min, avg, max) of roughly (7.3, 11.6, 13.3)
  for map, (11.3, 13.1, 13.5) for shuffle, (9.1, 12.7, 13.3) for reduce).

Executions are produced on the Hadoop emulator with the paper's modified
capped-FIFO scheduler, profiled from the history logs — the same pipeline
a real deployment would use.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Optional, Sequence

import numpy as np

from ..core.job import JobProfile, TraceJob
from ..hadoop.emulator import EmulatorConfig, HadoopClusterEmulator
from ..mrprofiler.profiler import profile_history
from ..schedulers.capped import CappedFIFOScheduler
from ..stats.cdf import EmpiricalCDF, ks_distance
from ..stats.kl import histogram_kl
from ..workloads.apps import APP_NAMES, app_spec
from .common import format_table

__all__ = [
    "CDFComparisonResult",
    "KLTableResult",
    "run_fig3_cdfs",
    "run_table1_kl",
]


def _phase_samples(profile: JobProfile) -> dict[str, np.ndarray]:
    shuffle = (
        np.concatenate([profile.first_shuffle_durations, profile.typical_shuffle_durations])
        if profile.typical_shuffle_durations.size
        else profile.first_shuffle_durations
    )
    return {
        "map": profile.map_durations,
        "shuffle": shuffle,
        "reduce": profile.reduce_durations,
    }


def _emulate_execution(
    app: str,
    map_cap: Optional[int],
    reduce_cap: Optional[int],
    seed: int,
) -> JobProfile:
    """One emulated execution of ``app``, profiled from its history log."""
    rng = np.random.default_rng(seed)
    profile = app_spec(app).make_profile(rng)
    emulator = HadoopClusterEmulator(
        EmulatorConfig(seed=seed),
        CappedFIFOScheduler(map_cap, reduce_cap),
    )
    result = emulator.run([TraceJob(profile, 0.0)])
    profiled = profile_history(result.history_text())
    assert len(profiled) == 1
    return profiled[0].profile


@dataclass
class CDFComparisonResult:
    """Figure 3 data: per-phase CDFs of two WordCount executions."""

    allocations: tuple[str, str]
    #: phase -> (cdf of execution A, cdf of execution B)
    cdfs: dict[str, tuple[EmpiricalCDF, EmpiricalCDF]]
    #: phase -> two-sample KS distance between the executions
    ks: dict[str, float]

    def rows(self) -> list[dict]:
        out = []
        for phase, (cdf_a, cdf_b) in self.cdfs.items():
            # Compare at the deciles, the figures' visual content.
            for q in (0.1, 0.25, 0.5, 0.75, 0.9):
                out.append(
                    {
                        "phase": phase,
                        "percentile": int(q * 100),
                        self.allocations[0]: float(cdf_a.quantile(q)),
                        self.allocations[1]: float(cdf_b.quantile(q)),
                    }
                )
        return out

    def __str__(self) -> str:
        head = ("Figure 3: task-duration CDF quantiles under two allocations; "
                "KS distances: ") + ", ".join(
            f"{phase}={d:.3f}" for phase, d in self.ks.items()
        )
        return head + "\n" + format_table(self.rows())


def run_fig3_cdfs(
    allocation_a: tuple[int, int] = (64, 64),
    allocation_b: tuple[int, int] = (32, 32),
    app: str = "WordCount",
    seed: int = 0,
) -> CDFComparisonResult:
    """Compare task-duration CDFs of two differently-provisioned runs."""
    prof_a = _emulate_execution(app, *allocation_a, seed=seed)
    prof_b = _emulate_execution(app, *allocation_b, seed=seed + 1)
    labels = (f"{allocation_a[0]}x{allocation_a[1]}", f"{allocation_b[0]}x{allocation_b[1]}")
    cdfs: dict[str, tuple[EmpiricalCDF, EmpiricalCDF]] = {}
    ks: dict[str, float] = {}
    for phase in ("map", "shuffle", "reduce"):
        sample_a = _phase_samples(prof_a)[phase]
        sample_b = _phase_samples(prof_b)[phase]
        cdfs[phase] = (EmpiricalCDF(sample_a), EmpiricalCDF(sample_b))
        ks[phase] = ks_distance(sample_a, sample_b)
    return CDFComparisonResult(allocations=labels, cdfs=cdfs, ks=ks)


@dataclass
class KLTableResult:
    """Table I plus the cross-application comparison from the text."""

    #: app -> phase -> (min, avg, max) over pairwise same-app KL values
    same_app: dict[str, dict[str, tuple[float, float, float]]]
    #: phase -> (min, avg, max) over cross-application KL values
    cross_app: dict[str, tuple[float, float, float]]

    def rows(self) -> list[dict]:
        out = []
        for app, phases in self.same_app.items():
            row: dict = {"application": app}
            for phase in ("map", "shuffle", "reduce"):
                mn, avg, mx = phases[phase]
                row[f"{phase}_min"] = mn
                row[f"{phase}_avg"] = avg
                row[f"{phase}_max"] = mx
            out.append(row)
        row = {"application": "(cross-app)"}
        for phase in ("map", "shuffle", "reduce"):
            mn, avg, mx = self.cross_app[phase]
            row[f"{phase}_min"] = mn
            row[f"{phase}_avg"] = avg
            row[f"{phase}_max"] = mx
        out.append(row)
        return out

    def max_same_app(self) -> float:
        return max(
            mx for phases in self.same_app.values() for (_, _, mx) in phases.values()
        )

    def min_cross_app(self) -> float:
        return min(mn for (mn, _, _) in self.cross_app.values())

    def __str__(self) -> str:
        return format_table(
            self.rows(), title="Table I: symmetric KL divergence of task-duration distributions"
        )


def run_table1_kl(
    apps: Sequence[str] = APP_NAMES,
    executions: int = 5,
    seed: int = 0,
    emulate: bool = False,
) -> KLTableResult:
    """Pairwise KL divergences within and across applications.

    With ``emulate=True`` each execution goes through the full
    emulate -> log -> profile pipeline (slow but end-to-end); by default
    executions are sampled directly from the application models, which
    measures the same statistical property.
    """
    if executions < 2:
        raise ValueError("need at least 2 executions for pairwise comparison")
    rng = np.random.default_rng(seed)
    samples: dict[str, list[dict[str, np.ndarray]]] = {}
    for app in apps:
        runs = []
        for e in range(executions):
            if emulate:
                profile = _emulate_execution(app, None, None, seed=seed * 1000 + e)
            else:
                profile = app_spec(app).make_profile(rng)
            runs.append(_phase_samples(profile))
        samples[app] = runs

    same_app: dict[str, dict[str, tuple[float, float, float]]] = {}
    for app, runs in samples.items():
        phases: dict[str, tuple[float, float, float]] = {}
        for phase in ("map", "shuffle", "reduce"):
            values = [
                histogram_kl(a[phase], b[phase]) for a, b in combinations(runs, 2)
            ]
            phases[phase] = (float(np.min(values)), float(np.mean(values)), float(np.max(values)))
        same_app[app] = phases

    cross_app: dict[str, tuple[float, float, float]] = {}
    app_list = list(samples)
    for phase in ("map", "shuffle", "reduce"):
        values = []
        for app_a, app_b in combinations(app_list, 2):
            # First execution of each app, as "any one of the executions
            # can be used as a job representative".
            values.append(histogram_kl(samples[app_a][0][phase], samples[app_b][0][phase]))
        cross_app[phase] = (float(np.min(values)), float(np.mean(values)), float(np.max(values)))

    return KLTableResult(same_app=same_app, cross_app=cross_app)
