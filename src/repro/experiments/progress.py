"""Figures 1 and 2: WordCount task progress under different allocations.

The paper's motivating example (Section II): WordCount with 200 map and
256 reduce tasks, run once with 128 map/128 reduce slots (Figure 1 — two
map waves, two reduce waves) and once with 64/64 (Figure 2 — four waves
each).  The plots show, over time, which tasks are in the map, shuffle
and reduce phases; the first reduce wave's shuffle visibly overlaps the
map stage and ends only after the last map.

``run_progress`` replays that exact scenario in SimMR and returns the
per-task phase intervals plus a sampled time series ("tasks in phase"
curves, the figures' content) and the wave counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.cluster import ClusterConfig
from ..core.engine import SimulatorEngine
from ..core.job import TraceJob
from ..schedulers.fifo import FIFOScheduler
from ..workloads.apps import app_spec
from .common import format_table

__all__ = ["ProgressResult", "run_progress"]


def _count_waves(intervals: list[tuple[float, float]]) -> int:
    """Number of scheduling waves: tasks divided by peak slot concurrency.

    With N tasks and at most S running at once, the stage "proceeds in
    multiple rounds of slot assignment" (paper Section II) — ceil(N / S)
    waves (e.g. 200 maps on 128 slots -> 2 waves; on 64 slots -> 4).
    """
    if not intervals:
        return 0
    events = sorted(
        [(start, 1) for start, _ in intervals] + [(end, -1) for _, end in intervals],
        key=lambda e: (e[0], e[1]),
    )
    peak = running = 0
    for _, delta in events:
        running += delta
        peak = max(peak, running)
    return -(-len(intervals) // peak)


def _in_phase(times: np.ndarray, intervals: list[tuple[float, float]]) -> np.ndarray:
    """Count of intervals covering each sample time."""
    counts = np.zeros(times.size, dtype=np.int64)
    for start, end in intervals:
        counts += (times >= start) & (times < end)
    return counts


@dataclass
class ProgressResult:
    """Task-progress data of one WordCount replay (one paper figure)."""

    map_slots: int
    reduce_slots: int
    makespan: float
    map_intervals: list[tuple[float, float]]
    shuffle_intervals: list[tuple[float, float]]
    reduce_intervals: list[tuple[float, float]]
    map_waves: int
    reduce_waves: int
    map_stage_end: float

    def series(self, points: int = 60) -> list[dict]:
        """Sampled "tasks in phase" curves — the figures' plotted data."""
        times = np.linspace(0.0, self.makespan, points)
        maps = _in_phase(times, self.map_intervals)
        shuffles = _in_phase(times, self.shuffle_intervals)
        reduces = _in_phase(times, self.reduce_intervals)
        return [
            {
                "time": float(t),
                "map_tasks": int(m),
                "shuffle_tasks": int(s),
                "reduce_tasks": int(r),
            }
            for t, m, s, r in zip(times, maps, shuffles, reduces)
        ]

    def rows(self) -> list[dict]:
        return self.series()

    def __str__(self) -> str:
        head = (
            f"WordCount with {self.map_slots} map and {self.reduce_slots} reduce slots: "
            f"{self.map_waves} map waves, {self.reduce_waves} reduce waves, "
            f"makespan {self.makespan:.1f}s (map stage ends {self.map_stage_end:.1f}s)"
        )
        return head + "\n" + format_table(self.series(points=15))


def run_progress(
    map_slots: int = 128,
    reduce_slots: int = 128,
    *,
    num_maps: int = 200,
    num_reduces: int = 256,
    seed: int = 0,
    min_map_percent_completed: float = 0.05,
) -> ProgressResult:
    """Replay the Section II WordCount example on the given allocation.

    ``map_slots=128, reduce_slots=128`` reproduces Figure 1;
    ``64, 64`` reproduces Figure 2.
    """
    rng = np.random.default_rng(seed)
    spec = app_spec("WordCount")
    # The Section II example job: 200 maps, 256 reduces.
    profile = spec.make_profile(rng)
    profile = type(profile)(
        name="WordCount",
        num_maps=num_maps,
        num_reduces=num_reduces,
        map_durations=spec.map_durations.sample(rng, num_maps),
        first_shuffle_durations=spec.first_shuffle.sample(rng, num_reduces),
        typical_shuffle_durations=spec.typical_shuffle.sample(rng, num_reduces),
        reduce_durations=spec.reduce_durations.sample(rng, num_reduces),
    )
    engine = SimulatorEngine(
        ClusterConfig(map_slots, reduce_slots),
        FIFOScheduler(),
        min_map_percent_completed=min_map_percent_completed,
    )
    result = engine.run([TraceJob(profile, 0.0)])

    map_intervals = [(r.start, r.end) for r in result.task_records if r.kind == "map"]
    shuffle_intervals = []
    reduce_intervals = []
    for r in result.task_records:
        if r.kind != "reduce":
            continue
        assert r.shuffle_end is not None
        shuffle_intervals.append((r.start, r.shuffle_end))
        reduce_intervals.append((r.shuffle_end, r.end))

    job = result.jobs[0]
    assert job.map_stage_end is not None
    return ProgressResult(
        map_slots=map_slots,
        reduce_slots=reduce_slots,
        makespan=result.makespan,
        map_intervals=map_intervals,
        shuffle_intervals=shuffle_intervals,
        reduce_intervals=reduce_intervals,
        map_waves=_count_waves(map_intervals),
        reduce_waves=_count_waves(
            [(s, e2) for (s, _), (_, e2) in zip(shuffle_intervals, reduce_intervals)]
        ),
        map_stage_end=job.map_stage_end,
    )
