"""Figure 6 and the throughput headline: SimMR vs Mumak simulation speed.

Paper Section IV-E: a six-month, 1148-job trace (152 hours of serial
execution) replays in SimMR in 1.5 s but takes Mumak 680 s — SimMR is
two orders of magnitude faster, because "Mumak simulates the TaskTrackers
and the heartbeats between them, which leads to greater number of
simulated events and computation".  Section I adds the headline "SimMR
can process over one million events per second".

``run_performance`` regenerates the Figure 6 series: wall-clock
simulation time of both simulators over increasing replayed-job counts,
plus SimMR's event throughput.  Absolute times are hardware- and
runtime-dependent (the original is Java); the shape to check is the
widening gap and the orders-of-magnitude ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.cluster import ClusterConfig
from ..core.engine import SimulatorEngine
from ..core.job import TraceJob
from ..mumak.simulator import MumakSimulator
from ..schedulers.fifo import FIFOScheduler
from ..trace.arrivals import ExponentialArrivals
from ..trace.synthetic import SyntheticTraceGen
from ..workloads.apps import make_app_specs
from .common import format_table

__all__ = ["PerformancePoint", "PerformanceResult", "run_performance", "make_performance_trace"]


@dataclass(frozen=True, slots=True)
class PerformancePoint:
    """One Figure 6 x-position: both simulators on the same trace prefix."""

    num_jobs: int
    simmr_seconds: float
    mumak_seconds: float
    simmr_events: int
    mumak_events: int

    @property
    def speedup(self) -> float:
        if self.simmr_seconds <= 0:
            return float("inf")
        return self.mumak_seconds / self.simmr_seconds

    @property
    def simmr_events_per_second(self) -> float:
        if self.simmr_seconds <= 0:
            return float("inf")
        return self.simmr_events / self.simmr_seconds


@dataclass
class PerformanceResult:
    points: list[PerformancePoint]

    def rows(self) -> list[dict]:
        return [
            {
                "jobs": p.num_jobs,
                "simmr_s": p.simmr_seconds,
                "mumak_s": p.mumak_seconds,
                "speedup": p.speedup,
                "simmr_events_per_s": int(p.simmr_events_per_second),
            }
            for p in self.points
        ]

    def max_speedup(self) -> float:
        return max(p.speedup for p in self.points)

    def peak_events_per_second(self) -> float:
        return max(p.simmr_events_per_second for p in self.points)

    def __str__(self) -> str:
        return format_table(self.rows(), title="Figure 6: simulation time vs number of jobs")


def make_performance_trace(
    num_jobs: int,
    *,
    mean_interarrival: float = 200.0,
    seed: int = 0,
) -> list[TraceJob]:
    """A compact multi-month-style trace of the six-application mix.

    The paper built its performance trace by concatenating six months of
    recorded jobs "without inactivity periods"; here the mix arrives with
    a mean inter-arrival chosen to keep the emulated cluster busy without
    unbounded queueing.
    """
    gen = SyntheticTraceGen(
        list(make_app_specs().values()),
        ExponentialArrivals(mean_interarrival),
        seed=seed,
    )
    return gen.generate(num_jobs)


def run_performance(
    job_counts: Sequence[int] = (72, 144, 287, 574, 1148),
    *,
    mean_interarrival: float = 200.0,
    seed: int = 0,
    cluster: ClusterConfig = ClusterConfig(64, 64),
) -> PerformanceResult:
    """Time SimMR and Mumak replaying growing prefixes of one trace."""
    if not job_counts:
        raise ValueError("at least one job count is required")
    full = make_performance_trace(max(job_counts), mean_interarrival=mean_interarrival, seed=seed)
    points = []
    for n in sorted(job_counts):
        trace = full[:n]
        engine = SimulatorEngine(cluster, FIFOScheduler(), record_tasks=False)
        simmr_result = engine.run(trace)
        mumak = MumakSimulator(num_nodes=cluster.map_slots)
        mumak_result = mumak.run(trace)
        points.append(
            PerformancePoint(
                num_jobs=n,
                simmr_seconds=simmr_result.wall_clock_seconds,
                mumak_seconds=mumak_result.wall_clock_seconds,
                simmr_events=simmr_result.events_processed,
                mumak_events=mumak_result.events_processed,
            )
        )
    return PerformanceResult(points=points)
