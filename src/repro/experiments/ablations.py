"""Ablations of SimMR's design decisions (beyond the paper's figures).

Three studies isolating the choices DESIGN.md calls out:

1. **Shuffle modeling** — replay the validation trace with the shuffle
   phase stripped from the model (shuffle durations forced to zero),
   i.e. SimMR degraded to Mumak's reduce model inside SimMR's own
   engine.  The resulting error isolates how much of Mumak's inaccuracy
   comes purely from omitting the shuffle, independent of any other
   implementation difference.
2. **Reduce slow-start** (``minMapPercentCompleted``) — a job's
   completion time as the threshold sweeps 0..1.  Late reduce starts
   serialize the first shuffle after the map stage; very early starts
   waste reduce slots on fillers (invisible solo, costly under
   contention — measured both solo and with a competing job).
3. **Slot-allocation sensitivity** — the Section II motivation table:
   WordCount completion time across allocations from 32x32 to 256x256.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.cluster import ClusterConfig
from ..core.engine import SimulatorEngine, simulate
from ..core.job import JobProfile, TraceJob
from ..hadoop.emulator import EmulatorConfig, HadoopClusterEmulator
from ..mrprofiler.profiler import profile_history
from ..schedulers.fifo import FIFOScheduler
from ..workloads.apps import APP_NAMES, make_app_specs
from .common import format_table, relative_error

__all__ = [
    "ShuffleAblationResult",
    "run_shuffle_ablation",
    "SlowstartAblationResult",
    "run_slowstart_ablation",
    "AllocationSweepResult",
    "run_allocation_sweep",
    "SpeculationAblationResult",
    "run_speculation_ablation",
]


def _strip_shuffle(profile: JobProfile) -> JobProfile:
    """The profile with its shuffle phase deleted (Mumak's reduce model)."""
    zeros = np.zeros_like
    return JobProfile(
        name=profile.name,
        num_maps=profile.num_maps,
        num_reduces=profile.num_reduces,
        map_durations=profile.map_durations,
        first_shuffle_durations=zeros(profile.first_shuffle_durations),
        typical_shuffle_durations=zeros(profile.typical_shuffle_durations),
        reduce_durations=profile.reduce_durations,
    )


@dataclass
class ShuffleAblationResult:
    """Replay error with and without the shuffle model, per application."""

    #: app -> (actual, with_shuffle, without_shuffle) mean durations
    durations: dict[str, tuple[float, float, float]]

    def rows(self) -> list[dict]:
        return [
            {
                "application": app,
                "actual_s": act,
                "with_shuffle_err_pct": relative_error(with_sh, act),
                "without_shuffle_err_pct": relative_error(without_sh, act),
            }
            for app, (act, with_sh, without_sh) in self.durations.items()
        ]

    def __str__(self) -> str:
        return format_table(self.rows(), title="Ablation: shuffle modeling on/off")


def run_shuffle_ablation(
    seed: int = 0, apps: Sequence[str] = APP_NAMES
) -> ShuffleAblationResult:
    """Quantify the error caused purely by dropping the shuffle model."""
    rng = np.random.default_rng(seed)
    specs = make_app_specs()
    trace = [TraceJob(specs[a].make_profile(rng), i * 2500.0) for i, a in enumerate(apps)]
    cfg = EmulatorConfig(seed=seed + 1)
    actual = HadoopClusterEmulator(cfg, FIFOScheduler()).run(trace)
    profiled = profile_history(actual.history_text())
    cluster = cfg.aggregate_cluster()

    replay_full = [TraceJob(pj.profile, pj.submit_time) for pj in profiled]
    replay_stripped = [
        TraceJob(_strip_shuffle(pj.profile), pj.submit_time) for pj in profiled
    ]
    sim_full = simulate(replay_full, FIFOScheduler(), cluster, record_tasks=False)
    sim_stripped = simulate(replay_stripped, FIFOScheduler(), cluster, record_tasks=False)

    durations = {}
    for i, pj in enumerate(profiled):
        durations[pj.profile.name] = (
            pj.duration,
            sim_full.jobs[i].duration,
            sim_stripped.jobs[i].duration,
        )
    return ShuffleAblationResult(durations=durations)


@dataclass
class SlowstartAblationResult:
    """Completion times across the reduce slow-start threshold."""

    #: rows of (threshold, solo duration, contended makespan)
    samples: list[tuple[float, float, float]]

    def rows(self) -> list[dict]:
        return [
            {
                "min_map_percent": pct,
                "solo_duration_s": solo,
                "contended_makespan_s": contended,
            }
            for pct, solo, contended in self.samples
        ]

    def __str__(self) -> str:
        return format_table(self.rows(), title="Ablation: reduce slow-start threshold")


def run_slowstart_ablation(
    thresholds: Sequence[float] = (0.0, 0.05, 0.25, 0.5, 0.75, 1.0),
    seed: int = 0,
) -> SlowstartAblationResult:
    """Sweep ``minMapPercentCompleted`` solo and under slot contention."""
    rng = np.random.default_rng(seed)
    spec = make_app_specs()["WordCount"]
    profile = spec.make_profile(rng)
    profile_b = spec.make_profile(rng)
    cluster = ClusterConfig(64, 64)
    samples = []
    for pct in thresholds:
        engine = SimulatorEngine(
            cluster, FIFOScheduler(), min_map_percent_completed=pct, record_tasks=False
        )
        solo = engine.run([TraceJob(profile, 0.0)]).jobs[0].duration
        engine = SimulatorEngine(
            cluster, FIFOScheduler(), min_map_percent_completed=pct, record_tasks=False
        )
        contended = engine.run(
            [TraceJob(profile, 0.0), TraceJob(profile_b, 10.0)]
        ).makespan
        samples.append((float(pct), float(solo), float(contended)))
    return SlowstartAblationResult(samples=samples)


@dataclass
class AllocationSweepResult:
    """WordCount completion time vs allocated slots (Section II motivation)."""

    #: rows of (map slots, reduce slots, duration, map waves as float)
    samples: list[tuple[int, int, float]]

    def rows(self) -> list[dict]:
        return [
            {"map_slots": m, "reduce_slots": r, "duration_s": d}
            for m, r, d in self.samples
        ]

    def monotone_nonincreasing(self) -> bool:
        """More slots should never make the solo job slower."""
        durations = [d for _, _, d in sorted(self.samples)]
        return all(a >= b - 1e-9 for a, b in zip(durations, durations[1:]))

    def __str__(self) -> str:
        return format_table(self.rows(), title="Ablation: slot-allocation sensitivity")


def run_allocation_sweep(
    allocations: Sequence[tuple[int, int]] = ((32, 32), (64, 64), (128, 128), (256, 256)),
    seed: int = 0,
) -> AllocationSweepResult:
    """WordCount solo completion across slot allocations."""
    rng = np.random.default_rng(seed)
    profile = make_app_specs()["WordCount"].make_profile(rng)
    samples = []
    for m, r in allocations:
        result = simulate(
            [TraceJob(profile, 0.0)], FIFOScheduler(), ClusterConfig(m, r), record_tasks=False
        )
        samples.append((m, r, float(result.jobs[0].duration)))
    return AllocationSweepResult(samples=samples)


@dataclass
class SpeculationAblationResult:
    """Makespan with/without speculative execution at two noise levels."""

    #: rows of (node speed sigma, plain duration, speculative duration,
    #: backups launched)
    samples: list[tuple[float, float, float, int]]

    def rows(self) -> list[dict]:
        return [
            {
                "node_speed_sigma": sigma,
                "plain_s": plain,
                "speculative_s": spec,
                "improvement_pct": (plain - spec) / plain * 100.0,
                "backups": backups,
            }
            for sigma, plain, spec, backups in self.samples
        ]

    def __str__(self) -> str:
        return format_table(self.rows(), title="Ablation: speculative execution")


def run_speculation_ablation(
    sigmas: Sequence[float] = (0.05, 0.2, 0.4),
    seed: int = 3,
) -> SpeculationAblationResult:
    """Quantify the paper's 'speculation did not help' observation.

    At the testbed's mild node heterogeneity (sigma 0.05) backup tasks
    buy almost nothing; the improvement only appears once stragglers get
    severe — which is why the paper could disable it.
    """
    from ..hadoop.emulator import EmulatorConfig, HadoopClusterEmulator
    from ..core.job import TraceJob

    rng = np.random.default_rng(seed)
    profile = make_app_specs()["Bayes"].make_profile(rng)
    samples = []
    for sigma in sigmas:
        durations = {}
        backups = 0
        for speculative in (False, True):
            cfg = EmulatorConfig(
                node_speed_sigma=sigma,
                speculative_execution=speculative,
                seed=seed,
            )
            result = HadoopClusterEmulator(cfg).run([TraceJob(profile, 0.0)])
            durations[speculative] = result.jobs[0].duration
            if speculative:
                backups = sum(1 for t in result.tasks if t.speculative)
        samples.append((float(sigma), durations[False], durations[True], backups))
    return SpeculationAblationResult(samples=samples)
