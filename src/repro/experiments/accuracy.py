"""Figure 5: simulator accuracy across scheduling policies.

The paper's validation: run three executions of the six applications on
the (emulated) cluster under a scheduler, extract the trace with
MRProfiler, replay it in SimMR (and, for FIFO, in Mumak), and compare
simulated to actual job completion times.

Paper results the shape must match:

* Figure 5(a) FIFO — SimMR within 2.7% average (6.6% max); Mumak
  *underestimates* with 37% average (51.7% max) error;
* Figure 5(b) MinEDF — SimMR within 1.1% average (2.7% max);
* Figure 5(c) MaxEDF — SimMR within 3.7% average (8.6% max).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.cluster import ClusterConfig
from ..core.engine import simulate
from ..core.job import TraceJob
from ..hadoop.emulator import EmulatorConfig, HadoopClusterEmulator
from ..mrprofiler.profiler import profile_history
from ..mumak.rumen import extract_rumen_trace, rumen_to_trace
from ..mumak.simulator import MumakSimulator
from ..schedulers import FIFOScheduler, MaxEDFScheduler, MinEDFScheduler, Scheduler
from ..trace.deadlines import DeadlineFactorPolicy, solo_completion_time
from ..workloads.apps import APP_NAMES, make_app_specs
from .common import format_table, relative_error

__all__ = ["AccuracyResult", "run_accuracy", "make_scheduler_for_accuracy"]


def make_scheduler_for_accuracy(name: str) -> Scheduler:
    """Fresh scheduler instance by Figure 5 panel name."""
    table = {
        "FIFO": FIFOScheduler,
        "MinEDF": MinEDFScheduler,
        "MaxEDF": MaxEDFScheduler,
    }
    try:
        return table[name]()
    except KeyError:
        raise ValueError(f"unknown scheduler {name!r}; expected one of {sorted(table)}") from None


@dataclass
class AccuracyResult:
    """Per-application accuracy of the simulators against the emulator."""

    scheduler: str
    #: app -> mean actual duration (seconds)
    actual: dict[str, float]
    #: app -> mean SimMR-replayed duration
    simmr: dict[str, float]
    #: app -> mean Mumak-replayed duration (FIFO panel only)
    mumak: Optional[dict[str, float]]

    def rows(self) -> list[dict]:
        out = []
        for app, act in self.actual.items():
            row: dict = {
                "application": app,
                "actual_s": act,
                "simmr_pct": self.simmr[app] / act * 100.0,
                "simmr_err_pct": relative_error(self.simmr[app], act),
            }
            if self.mumak is not None:
                row["mumak_pct"] = self.mumak[app] / act * 100.0
                row["mumak_err_pct"] = relative_error(self.mumak[app], act)
            out.append(row)
        return out

    def simmr_errors(self) -> tuple[float, float]:
        """(average, max) SimMR relative error in percent."""
        errs = [relative_error(self.simmr[a], act) for a, act in self.actual.items()]
        return float(np.mean(errs)), float(np.max(errs))

    def mumak_errors(self) -> tuple[float, float]:
        """(average, max) Mumak relative error in percent."""
        if self.mumak is None:
            raise ValueError("this panel has no Mumak replay")
        errs = [relative_error(self.mumak[a], act) for a, act in self.actual.items()]
        return float(np.mean(errs)), float(np.max(errs))

    def mumak_underestimates(self) -> bool:
        """True if Mumak's mean completion estimate is below actual everywhere."""
        if self.mumak is None:
            raise ValueError("this panel has no Mumak replay")
        return all(self.mumak[a] < act for a, act in self.actual.items())

    def __str__(self) -> str:
        avg, mx = self.simmr_errors()
        head = f"Figure 5 ({self.scheduler}): SimMR error avg {avg:.1f}% max {mx:.1f}%"
        if self.mumak is not None:
            mavg, mmx = self.mumak_errors()
            head += f"; Mumak error avg {mavg:.1f}% max {mmx:.1f}%"
        return head + "\n" + format_table(self.rows())


_SERIAL_RE = re.compile(r"job_\d+_(\d+)$")


def run_accuracy(
    scheduler: str = "FIFO",
    *,
    executions_per_app: int = 3,
    deadline_factor: float = 1.5,
    seed: int = 0,
    apps: Sequence[str] = APP_NAMES,
    emulator_config: Optional[EmulatorConfig] = None,
) -> AccuracyResult:
    """One Figure 5 panel: emulate, profile, replay, compare.

    Jobs are submitted with generous spacing so each runs (essentially)
    alone — the paper reports per-application completion times.  For the
    deadline schedulers, deadlines with the given factor are assigned and
    carried into the replay.
    """
    cfg = emulator_config or EmulatorConfig(seed=seed + 1)
    cluster = cfg.aggregate_cluster()
    rng = np.random.default_rng(seed)
    specs = make_app_specs()

    trace: list[TraceJob] = []
    t = 0.0
    deadline_policy = (
        DeadlineFactorPolicy(deadline_factor, cluster) if scheduler != "FIFO" else None
    )
    for name in apps:
        spec = specs[name]
        for _ in range(executions_per_app):
            profile = spec.make_profile(rng)
            deadline = (
                deadline_policy.deadline_for(profile, t, rng) if deadline_policy else None
            )
            trace.append(TraceJob(profile, t, deadline))
            t += solo_completion_time(profile, cluster) + 120.0

    emulator = HadoopClusterEmulator(cfg, make_scheduler_for_accuracy(scheduler))
    actual_run = emulator.run(trace)
    history = actual_run.history_text()

    profiled = profile_history(history)
    # History job serials are the trace indices; map deadlines across.
    replay: list[TraceJob] = []
    actual_durations: dict[int, float] = {}
    for pj in profiled:
        m = _SERIAL_RE.match(pj.job_id)
        assert m is not None
        idx = int(m.group(1)) - 1
        replay.append(TraceJob(pj.profile, pj.submit_time, trace[idx].deadline))
        actual_durations[idx] = pj.duration

    sim = simulate(replay, make_scheduler_for_accuracy(scheduler), cluster)

    mumak_durations: Optional[dict[int, float]] = None
    if scheduler == "FIFO":
        mumak_trace = rumen_to_trace(extract_rumen_trace(history))
        mumak = MumakSimulator(
            num_nodes=cfg.num_nodes,
            map_slots_per_node=cfg.map_slots_per_node,
            reduce_slots_per_node=cfg.reduce_slots_per_node,
        ).run(mumak_trace)
        mumak_durations = {i: j.duration for i, j in enumerate(mumak.jobs)}

    # Aggregate to per-application means (replay order == trace order).
    actual: dict[str, float] = {}
    simmr: dict[str, float] = {}
    mumak_by_app: dict[str, float] = {}
    for app_pos, name in enumerate(apps):
        idxs = range(app_pos * executions_per_app, (app_pos + 1) * executions_per_app)
        actual[name] = float(np.mean([actual_durations[i] for i in idxs]))
        simmr[name] = float(np.mean([sim.jobs[i].duration for i in idxs]))
        if mumak_durations is not None:
            mumak_by_app[name] = float(np.mean([mumak_durations[i] for i in idxs]))

    return AccuracyResult(
        scheduler=scheduler,
        actual=actual,
        simmr=simmr,
        mumak=mumak_by_app if mumak_durations is not None else None,
    )
