"""Figure 7: MaxEDF vs MinEDF on the (emulated) testbed workload.

Paper Section V-B: traces mix the six applications (three dataset sizes
each), arrive with exponential inter-arrival times, and carry deadlines
uniform in ``[T_J, df * T_J]``.  The simulation is repeated many times
(the paper uses 400) and the *relative deadline exceeded* utility
``sum_{late J} (T_J - D_J) / D_J`` is averaged, sweeping the mean
inter-arrival time over 1..100000 s for deadline factors 1, 1.5 and 3.

Shape to match:

* df = 1 — the two policies coincide (minimal allocation = maximal), and
  the metric decreases as arrivals spread out, with a slight "bump"
  around 100 s mean inter-arrival caused by non-preemptable tasks;
* df = 1.5, 3 — MinEDF's spare-resource sharing beats MaxEDF, with the
  gap growing in the deadline factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.cluster import ClusterConfig
from ..core.engine import simulate
from ..schedulers.edf import MaxEDFScheduler, MinEDFScheduler
from ..workloads.mixes import permuted_deadline_trace, testbed_mix_profiles
from .common import format_table

__all__ = ["DeadlineSweepResult", "run_deadline_comparison_real"]


@dataclass
class DeadlineSweepResult:
    """Averaged utility metric per (deadline factor, inter-arrival) cell."""

    workload: str
    runs: int
    #: (deadline_factor, mean_interarrival) -> {"MaxEDF": value, "MinEDF": value}
    cells: dict[tuple[float, float], dict[str, float]]

    def rows(self) -> list[dict]:
        return [
            {
                "deadline_factor": df,
                "mean_interarrival_s": ia,
                "MaxEDF": v["MaxEDF"],
                "MinEDF": v["MinEDF"],
            }
            for (df, ia), v in sorted(self.cells.items())
        ]

    def series(self, deadline_factor: float, scheduler: str) -> list[tuple[float, float]]:
        """One plotted curve: (mean inter-arrival, avg utility) points."""
        return [
            (ia, v[scheduler])
            for (df, ia), v in sorted(self.cells.items())
            if df == deadline_factor
        ]

    def minedf_wins(self, deadline_factor: float, tolerance: float = 0.0) -> bool:
        """True if MinEDF's utility <= MaxEDF's on every swept point."""
        return all(
            v["MinEDF"] <= v["MaxEDF"] + tolerance
            for (df, _), v in self.cells.items()
            if df == deadline_factor
        )

    def __str__(self) -> str:
        return format_table(
            self.rows(),
            title=(
                f"Deadline-scheduler comparison ({self.workload}, {self.runs} runs/point):"
                " avg relative deadline exceeded"
            ),
        )


def run_deadline_comparison_real(
    deadline_factors: Sequence[float] = (1.0, 1.5, 3.0),
    mean_interarrivals: Sequence[float] = (1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0),
    *,
    runs: int = 50,
    seed: int = 0,
    cluster: ClusterConfig = ClusterConfig(64, 64),
    executions_per_app: int = 3,
) -> DeadlineSweepResult:
    """Regenerate the Figure 7 sweep on the testbed-mix workload.

    ``runs`` controls the averaging (the paper uses 400; the default here
    trades a little smoothness for wall-clock time — pass 400 to match).
    """
    profiles = testbed_mix_profiles(executions_per_app, seed=seed)
    cells: dict[tuple[float, float], dict[str, float]] = {}
    for df in deadline_factors:
        for ia in mean_interarrivals:
            totals = {"MaxEDF": 0.0, "MinEDF": 0.0}
            for r in range(runs):
                run_seed = np.random.default_rng((seed, int(df * 10), int(ia), r))
                trace = permuted_deadline_trace(
                    profiles, ia, df, cluster, seed=run_seed
                )
                for name, sched in (("MaxEDF", MaxEDFScheduler()), ("MinEDF", MinEDFScheduler())):
                    result = simulate(trace, sched, cluster, record_tasks=False)
                    totals[name] += result.relative_deadline_exceeded()
            cells[(float(df), float(ia))] = {k: v / runs for k, v in totals.items()}
    return DeadlineSweepResult(workload="testbed mix", runs=runs, cells=cells)
