"""Scheduler zoo: every policy on one shared deadline workload.

Beyond the paper's MaxEDF/MinEDF duel, SimMR's point is pluggability —
"a pluggable scheduling policy that dictates the scheduler decisions"
over identical traces.  This experiment replays one randomized
testbed-mix workload under every built-in policy and reports the three
metrics that differentiate them: the deadline utility (the paper's),
mean job duration (what Flex(avg_response) optimizes) and makespan.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from ..core.cluster import ClusterConfig
from ..schedulers import (
    CapacityScheduler,
    DynamicPriorityScheduler,
    FairScheduler,
    FIFOScheduler,
    FlexScheduler,
    MaxEDFScheduler,
    MinEDFScheduler,
    Scheduler,
)
from ..workloads.mixes import permuted_deadline_trace, testbed_mix_profiles
from .common import format_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..parallel.cache import ResultCache

__all__ = ["SchedulerZooResult", "run_scheduler_zoo", "ZOO_POLICIES"]


def _capacity() -> CapacityScheduler:
    # Two queues: the heavyweight apps in "batch", the rest in "interactive".
    heavy = {"WikiTrends", "Bayes"}
    return CapacityScheduler(
        {"batch": 0.6, "interactive": 0.4},
        queue_of=lambda job: "batch" if job.profile.name in heavy else "interactive",
        default_queue="interactive",
    )


#: Policy name -> zero-argument factory (schedulers hold per-run state).
ZOO_POLICIES: dict[str, Callable[[], Scheduler]] = {
    "FIFO": FIFOScheduler,
    "Fair": FairScheduler,
    "Capacity": _capacity,
    "DynamicPriority": DynamicPriorityScheduler,
    "Flex(avg_response)": lambda: FlexScheduler("avg_response"),
    "Flex(max_stretch)": lambda: FlexScheduler("max_stretch"),
    "MaxEDF": MaxEDFScheduler,
    "MinEDF": MinEDFScheduler,
}


@dataclass
class SchedulerZooResult:
    """Per-policy metrics averaged over the replayed runs."""

    runs: int
    #: policy -> {"utility": ..., "mean_duration": ..., "makespan": ...}
    metrics: dict[str, dict[str, float]]

    def rows(self) -> list[dict]:
        return [
            {
                "policy": name,
                "deadline_utility": m["utility"],
                "mean_duration_s": m["mean_duration"],
                "makespan_s": m["makespan"],
            }
            for name, m in self.metrics.items()
        ]

    def best_by(self, metric: str) -> str:
        """Policy name minimizing the given rows() column."""
        rows = self.rows()
        key = {
            "utility": "deadline_utility",
            "mean_duration": "mean_duration_s",
            "makespan": "makespan_s",
        }.get(metric, metric)
        return min(rows, key=lambda r: r[key])["policy"]

    def __str__(self) -> str:
        return format_table(
            self.rows(),
            title=f"Scheduler zoo ({self.runs} runs): one workload, every policy",
        )


def run_scheduler_zoo(
    *,
    runs: int = 10,
    mean_interarrival: float = 100.0,
    deadline_factor: float = 2.0,
    seed: int = 0,
    cluster: ClusterConfig = ClusterConfig(64, 64),
    policies: Sequence[str] = tuple(ZOO_POLICIES),
    workers: int = 0,
    cache: "ResultCache | str | Path | bool | None" = None,
) -> SchedulerZooResult:
    """Replay the testbed mix under every requested policy.

    The ``runs x policies`` replays are mutually independent, so they
    go through :func:`repro.parallel.executor.simulate_many`:
    ``workers=N`` fans them out over a process pool, and ``cache=``
    reuses any replay whose (trace, policy, cluster) was already
    simulated — re-running the zoo after adding one policy then only
    executes the new column.  Results are identical for every
    ``workers`` value (the executor's digest/determinism guarantees).
    """
    from ..parallel.executor import SchedulerSpec, SimTask, simulate_many

    unknown = set(policies) - set(ZOO_POLICIES)
    if unknown:
        raise ValueError(f"unknown policies {sorted(unknown)}; known: {sorted(ZOO_POLICIES)}")
    profiles = testbed_mix_profiles(2, seed=seed)
    traces = {}
    for r in range(runs):
        run_seed = np.random.default_rng((seed, r))
        traces[f"run{r}"] = permuted_deadline_trace(
            profiles, mean_interarrival, deadline_factor, cluster, seed=run_seed
        )
    tasks = [
        SimTask(
            trace_id=f"run{r}",
            scheduler=SchedulerSpec(kind="zoo", name=name),
            cluster=cluster,
            record_tasks=False,
            tag=name,
        )
        for r in range(runs)
        for name in policies
    ]
    outcomes = simulate_many(
        traces, tasks, workers=workers, cache=cache, digest=False
    )

    totals: dict[str, dict[str, float]] = {
        name: {"utility": 0.0, "mean_duration": 0.0, "makespan": 0.0} for name in policies
    }
    for outcome in outcomes:
        result = outcome.result
        agg = totals[outcome.task.tag]
        agg["utility"] += result.relative_deadline_exceeded()
        agg["mean_duration"] += float(np.mean(list(result.durations().values())))
        agg["makespan"] += result.makespan
    metrics = {
        name: {k: v / runs for k, v in m.items()} for name, m in totals.items()
    }
    return SchedulerZooResult(runs=runs, metrics=metrics)
