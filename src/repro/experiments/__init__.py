"""Paper-reproduction experiments: one module per table/figure.

========== ==========================================================
Paper item Entry point
========== ==========================================================
Figure 1   :func:`repro.experiments.progress.run_progress` (128x128)
Figure 2   :func:`repro.experiments.progress.run_progress` (64x64)
Figure 3   :func:`repro.experiments.distributions.run_fig3_cdfs`
Table I    :func:`repro.experiments.distributions.run_table1_kl`
Figure 5   :func:`repro.experiments.accuracy.run_accuracy`
Figure 6   :func:`repro.experiments.performance.run_performance`
Figure 7   :func:`repro.experiments.schedulers_real.run_deadline_comparison_real`
Figure 8   :func:`repro.experiments.schedulers_facebook.run_deadline_comparison_facebook`
(ours)     :mod:`repro.experiments.ablations`, :mod:`repro.experiments.preemption`
========== ==========================================================
"""

from .ablations import (
    run_allocation_sweep,
    run_shuffle_ablation,
    run_slowstart_ablation,
    run_speculation_ablation,
)
from .accuracy import AccuracyResult, run_accuracy
from .common import format_table, relative_error
from .distributions import run_fig3_cdfs, run_table1_kl
from .locality import LocalitySweepResult, run_locality_sweep
from .performance import PerformanceResult, run_performance
from .preemption import PreemptionAblationResult, run_preemption_ablation
from .progress import ProgressResult, run_progress
from .schedulers_facebook import run_deadline_comparison_facebook
from .scheduler_zoo import SchedulerZooResult, ZOO_POLICIES, run_scheduler_zoo
from .schedulers_real import DeadlineSweepResult, run_deadline_comparison_real

__all__ = [
    "run_allocation_sweep",
    "run_shuffle_ablation",
    "run_slowstart_ablation",
    "run_speculation_ablation",
    "AccuracyResult",
    "run_accuracy",
    "format_table",
    "relative_error",
    "run_fig3_cdfs",
    "run_table1_kl",
    "LocalitySweepResult",
    "run_locality_sweep",
    "PerformanceResult",
    "run_performance",
    "PreemptionAblationResult",
    "run_preemption_ablation",
    "ProgressResult",
    "run_progress",
    "run_deadline_comparison_facebook",
    "DeadlineSweepResult",
    "run_deadline_comparison_real",
    "SchedulerZooResult",
    "ZOO_POLICIES",
    "run_scheduler_zoo",
]
