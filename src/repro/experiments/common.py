"""Shared plumbing for the paper-reproduction experiments.

Every experiment module exposes a ``run_*`` function returning a small
result object with ``rows()`` (list of dicts, one per table row / plot
point) and a printable ``__str__``.  The benchmark harness times the
``run_*`` calls and prints the rows, which is how each paper table and
figure is regenerated.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = ["format_table", "relative_error"]


def relative_error(simulated: float, actual: float) -> float:
    """``|simulated - actual| / actual`` as a percentage."""
    if actual <= 0:
        raise ValueError(f"actual value must be > 0, got {actual}")
    return abs(simulated - actual) / actual * 100.0


def format_table(rows: Sequence[Mapping[str, Any]], title: str = "") -> str:
    """Render rows as a fixed-width ASCII table (floats to 2 decimals)."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())

    def cell(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    rendered = [[cell(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in rendered)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(col.ljust(w) for col, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(val.rjust(w) for val, w in zip(row, widths)))
    return "\n".join(lines)
