"""Figure 8: MaxEDF vs MinEDF on the synthetic Facebook workload.

Paper Section V-C: the Synthetic TraceGen produces Facebook-like traces
from the fitted LogNormal task-duration distributions, and the Figure 7
comparison is repeated with deadline factors 1.1, 1.5 and 2.  "The
performance results are consistent with the outcome of testbed traces'
simulations: the MinEDF scheduler significantly outperforms the MaxEDF
policy."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.cluster import ClusterConfig
from ..core.engine import simulate
from ..schedulers.edf import MaxEDFScheduler, MinEDFScheduler
from ..trace.arrivals import ExponentialArrivals
from ..trace.deadlines import DeadlineFactorPolicy
from ..workloads.facebook import FacebookJobSpec
from ..trace.synthetic import SyntheticTraceGen
from .schedulers_real import DeadlineSweepResult

__all__ = ["run_deadline_comparison_facebook"]


def run_deadline_comparison_facebook(
    deadline_factors: Sequence[float] = (1.1, 1.5, 2.0),
    mean_interarrivals: Sequence[float] = (1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0),
    *,
    runs: int = 50,
    jobs_per_trace: int = 100,
    seed: int = 0,
    cluster: ClusterConfig = ClusterConfig(64, 64),
) -> DeadlineSweepResult:
    """Regenerate the Figure 8 sweep on the synthetic Facebook workload."""
    spec = FacebookJobSpec()
    cells: dict[tuple[float, float], dict[str, float]] = {}
    for df in deadline_factors:
        policy = DeadlineFactorPolicy(df, cluster)
        for ia in mean_interarrivals:
            totals = {"MaxEDF": 0.0, "MinEDF": 0.0}
            for r in range(runs):
                rng = np.random.default_rng((seed, int(df * 10), int(ia), r))
                gen = SyntheticTraceGen(
                    [spec],
                    ExponentialArrivals(ia),
                    deadline_policy=policy,
                    seed=rng,
                )
                trace = gen.generate(jobs_per_trace)
                for name, sched in (("MaxEDF", MaxEDFScheduler()), ("MinEDF", MinEDFScheduler())):
                    result = simulate(trace, sched, cluster, record_tasks=False)
                    totals[name] += result.relative_deadline_exceeded()
            cells[(float(df), float(ia))] = {k: v / runs for k, v in totals.items()}
    return DeadlineSweepResult(workload="synthetic Facebook", runs=runs, cells=cells)
