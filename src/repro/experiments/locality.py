"""Delay-scheduling locality sweep (paper reference [3] reproduced).

The paper's HFS reference — Zaharia et al., "Delay scheduling: a simple
technique for achieving locality and fairness in cluster scheduling" —
shows that having a job *briefly decline* non-local slots turns almost
all map assignments node-local, at negligible latency cost, especially
for workloads of many small jobs.

With HDFS placement and delay scheduling modeled in the Hadoop emulator
(`EmulatorConfig(model_locality=True, locality_wait=D)`), this
experiment sweeps the wait ``D`` over a small-job workload and reports
the locality mix and job-performance impact — the reference paper's
headline shape: node-locality climbs toward 100% within a few seconds of
wait, while mean job duration does not degrade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.job import TraceJob
from ..hadoop.emulator import EmulatorConfig, HadoopClusterEmulator
from ..trace.distributions import Uniform
from ..trace.synthetic import SyntheticJobSpec
from .common import format_table

__all__ = ["LocalitySweepResult", "run_locality_sweep"]


@dataclass
class LocalitySweepResult:
    """Locality mix and performance per delay-scheduling wait."""

    #: rows of (wait, node frac, rack frac, remote frac, mean duration, makespan)
    samples: list[tuple[float, float, float, float, float, float]]

    def rows(self) -> list[dict]:
        return [
            {
                "locality_wait_s": wait,
                "node_local_pct": node * 100.0,
                "rack_local_pct": rack * 100.0,
                "remote_pct": remote * 100.0,
                "mean_duration_s": duration,
                "makespan_s": makespan,
            }
            for wait, node, rack, remote, duration, makespan in self.samples
        ]

    def node_locality_series(self) -> list[tuple[float, float]]:
        return [(wait, node) for wait, node, *_ in self.samples]

    def __str__(self) -> str:
        return format_table(
            self.rows(), title="Delay scheduling: locality vs wait (small-job workload)"
        )


def run_locality_sweep(
    waits: Sequence[float] = (0.0, 1.0, 3.0, 5.0, 10.0),
    *,
    num_jobs: int = 40,
    maps_per_job: int = 4,
    seed: int = 2,
    num_nodes: int = 32,
    rack_size: int = 16,
) -> LocalitySweepResult:
    """Sweep ``locality_wait`` over a many-small-jobs workload."""
    spec = SyntheticJobSpec(
        name="smalljob",
        num_maps=maps_per_job,
        num_reduces=0,
        map_durations=Uniform(8.0, 16.0),
        typical_shuffle=Uniform(1.0, 2.0),
        reduce_durations=Uniform(1.0, 2.0),
    )
    rng = np.random.default_rng(seed)
    trace = [TraceJob(spec.make_profile(rng), i * 1.0) for i in range(num_jobs)]

    samples = []
    for wait in waits:
        cfg = EmulatorConfig(
            num_nodes=num_nodes,
            rack_size=rack_size,
            heartbeat_interval=1.0,
            model_locality=True,
            locality_wait=float(wait),
            seed=seed,
        )
        result = HadoopClusterEmulator(cfg).run(trace)
        frac = result.locality_fractions()
        samples.append(
            (
                float(wait),
                frac["node"],
                frac["rack"],
                frac["remote"],
                float(np.mean(list(result.durations().values()))),
                result.makespan,
            )
        )
    return LocalitySweepResult(samples=samples)
