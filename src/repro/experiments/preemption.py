"""Preemption ablation: removing the Figure 7(a) "bump".

Paper Section V-B, on the df=1 curve: "There is a slight 'bump' around
the mean arrival time of 100s.  On closer inspection we found that this
is caused because the scheduler does not pre-empt tasks themselves.  So,
if a decision to allocate resources to a task has been made the slot is
not available for allocation to the earlier deadline job which just
arrived."

This experiment quantifies that explanation by re-running the Figure 7
sweep with the engine's kill-based preemption enabled (``MinEDF+P``):
earlier-deadline arrivals may kill the youngest later-deadline tasks up
to their model demand.  In the bump region the preemptive variant should
lower the deadline-exceeded metric; at very sparse arrivals both
variants coincide (nothing to preempt).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.cluster import ClusterConfig
from ..core.engine import SimulatorEngine
from ..schedulers.edf import MinEDFScheduler
from ..workloads.mixes import permuted_deadline_trace, testbed_mix_profiles
from .common import format_table

__all__ = ["PreemptionAblationResult", "run_preemption_ablation"]


@dataclass
class PreemptionAblationResult:
    """Avg deadline-exceeded with and without preemption, per load point."""

    deadline_factor: float
    runs: int
    #: mean_interarrival -> {"MinEDF": value, "MinEDF+P": value, "kills": mean kills}
    cells: dict[float, dict[str, float]]

    def rows(self) -> list[dict]:
        return [
            {
                "mean_interarrival_s": ia,
                "MinEDF": v["MinEDF"],
                "MinEDF+P": v["MinEDF+P"],
                "mean_kills": v["kills"],
            }
            for ia, v in sorted(self.cells.items())
        ]

    def preemption_helps_under_load(self, load_cutoff: float = 1000.0) -> bool:
        """Preemptive total <= plain total over the loaded region."""
        plain = sum(v["MinEDF"] for ia, v in self.cells.items() if ia <= load_cutoff)
        preempt = sum(v["MinEDF+P"] for ia, v in self.cells.items() if ia <= load_cutoff)
        return preempt <= plain

    def __str__(self) -> str:
        return format_table(
            self.rows(),
            title=(
                f"Preemption ablation (df={self.deadline_factor}, {self.runs} runs/point):"
                " avg relative deadline exceeded"
            ),
        )


def run_preemption_ablation(
    mean_interarrivals: Sequence[float] = (10.0, 50.0, 100.0, 500.0, 1000.0, 10000.0),
    *,
    deadline_factor: float = 1.0,
    runs: int = 30,
    seed: int = 0,
    cluster: ClusterConfig = ClusterConfig(64, 64),
    executions_per_app: int = 3,
) -> PreemptionAblationResult:
    """Sweep the bump region with and without kill-based preemption."""
    profiles = testbed_mix_profiles(executions_per_app, seed=seed)
    cells: dict[float, dict[str, float]] = {}
    for ia in mean_interarrivals:
        plain_total = 0.0
        preempt_total = 0.0
        kills_total = 0
        for r in range(runs):
            run_seed = np.random.default_rng((seed, int(ia), r))
            trace = permuted_deadline_trace(
                profiles, ia, deadline_factor, cluster, seed=run_seed
            )
            plain = SimulatorEngine(
                cluster, MinEDFScheduler(), record_tasks=False
            ).run(trace)
            preempt_engine = SimulatorEngine(
                cluster,
                MinEDFScheduler(preemptive=True),
                preemption=True,
                record_tasks=True,  # records needed to count kills
            )
            preempt = preempt_engine.run(trace)
            plain_total += plain.relative_deadline_exceeded()
            preempt_total += preempt.relative_deadline_exceeded()
            kills_total += sum(1 for t in preempt.task_records if t.killed)
        cells[float(ia)] = {
            "MinEDF": plain_total / runs,
            "MinEDF+P": preempt_total / runs,
            "kills": kills_total / runs,
        }
    return PreemptionAblationResult(
        deadline_factor=deadline_factor, runs=runs, cells=cells
    )
