"""Mumak: Apache's MapReduce simulator, rebuilt to its published behaviour.

The paper's baseline (Sections I, IV-A, IV-E).  Two properties matter and
both are reproduced here:

1. **No shuffle modeling.**  "Mumak models the total runtime of the
   reduce task as the summation of the time taken for completion of all
   maps and the time taken for an individual task to complete the reduce
   phase (without the shuffle).  Thus, Mumak does not model the shuffle
   phase accurately."  Concretely: a reduce task assigned at time *t*
   finishes at ``max(t, map_stage_end) + reduce_phase_duration`` — the
   shuffle durations recorded in the trace are ignored.  For shuffle-heavy
   applications this *underestimates* completion times by tens of percent
   (Figure 5(a): 37% average error).

2. **TaskTracker/heartbeat simulation.**  "Mumak simulates the
   TaskTrackers and the heartbeats between them, which leads to greater
   number of simulated events and computation" — the source of the two
   orders of magnitude speed gap (Figure 6).  This implementation
   simulates every tracker's periodic heartbeat and assigns tasks only on
   heartbeats, like the real Mumak (which drives the actual JobTracker
   code with virtual time).

Mumak replays Rumen traces; use :func:`repro.mumak.rumen.rumen_to_trace`
to go from history logs to the trace format, or feed any SimMR trace —
the shuffle arrays are simply not consulted.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Optional, Sequence

from ..core.cluster import ClusterConfig
from ..core.job import Job, JobState, TraceJob
from ..core.results import JobResult, SimulationResult
from ..core.walltime import elapsed_since, perf_seconds
from ..schedulers.base import Scheduler

__all__ = ["MumakSimulator"]

_MAP_DONE, _RED_DONE, _SUBMIT, _HEARTBEAT = 0, 1, 2, 3


class MumakSimulator:
    """Heartbeat-level trace replay without shuffle modeling.

    Parameters
    ----------
    num_nodes / map_slots_per_node / reduce_slots_per_node:
        Cluster shape (defaults mirror the paper's testbed).
    heartbeat_interval:
        TaskTracker heartbeat period in simulated seconds (Hadoop default
        3 s).
    scheduler:
        Mumak's design goal is running real schedulers "as-is"; any
        :class:`~repro.schedulers.base.Scheduler` plugs in (default FIFO).
    """

    def __init__(
        self,
        num_nodes: int = 64,
        map_slots_per_node: int = 1,
        reduce_slots_per_node: int = 1,
        heartbeat_interval: float = 3.0,
        scheduler: Optional[Scheduler] = None,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be > 0")
        self.num_nodes = num_nodes
        self.map_slots_per_node = map_slots_per_node
        self.reduce_slots_per_node = reduce_slots_per_node
        self.heartbeat_interval = heartbeat_interval
        if scheduler is None:
            from ..schedulers.fifo import FIFOScheduler

            scheduler = FIFOScheduler()
        self.scheduler = scheduler

    def run(self, trace: Sequence[TraceJob]) -> SimulationResult:
        """Replay ``trace``; returns completion times per job.

        The result's ``scheduler_name`` is prefixed with ``Mumak/`` so
        accuracy tables can tell the simulators apart.
        """
        # Feeds only the result's wall_clock_seconds metric, never a
        # simulated timestamp; walltime is the sanctioned site.
        wall_start = perf_seconds()
        jobs = [Job(i, tj) for i, tj in enumerate(trace)]
        job_q: list[Job] = []
        agg = ClusterConfig(
            self.num_nodes * self.map_slots_per_node,
            max(self.num_nodes * self.reduce_slots_per_node, 0),
        )
        # Node slot occupancy; Mumak needs no speed factors (replay is
        # deterministic from the trace).
        free_maps = [self.map_slots_per_node] * self.num_nodes
        free_reduces = [self.reduce_slots_per_node] * self.num_nodes
        # Per-job reduce tasks waiting for the map stage: (index, node).
        waiting_reduces: dict[int, list[tuple[int, int]]] = {}

        heap: list[tuple] = []
        seq = 0

        def push(t: float, pri: int, a: int, b: int) -> None:
            nonlocal seq
            heappush(heap, (t, pri, seq, a, b))
            seq += 1

        submit_order = sorted(range(len(jobs)), key=lambda i: jobs[i].submit_time)
        next_submit_pos = 0
        active = 0
        completed = 0
        for i in submit_order:
            push(jobs[i].submit_time, _SUBMIT, i, -1)
        start_t = jobs[submit_order[0]].submit_time if jobs else 0.0
        for n in range(self.num_nodes):
            push(start_t + self.heartbeat_interval * n / self.num_nodes, _HEARTBEAT, n, -1)

        def map_eligible(job: Job) -> bool:
            if job.state is not JobState.RUNNING or job.pending_maps <= 0:
                return False
            cap = job.wanted_map_slots
            return cap is None or job.running_maps < cap

        def reduce_eligible(job: Job) -> bool:
            # Mumak launches reduces once any map has finished (its
            # AllMapsFinished event gates completion, not launch).
            if job.state is not JobState.RUNNING or job.pending_reduces <= 0:
                return False
            if job.num_maps > 0 and job.maps_completed == 0:
                return False
            cap = job.wanted_reduce_slots
            return cap is None or job.running_reduces < cap

        def finish_job(job: Job, now: float) -> None:
            nonlocal active, completed
            job.state = JobState.COMPLETED
            job.completion_time = now
            job_q.remove(job)
            self.scheduler.on_job_departure(job, now)
            active -= 1
            completed += 1

        events = 0
        while heap:
            now, pri, _s, a, b = heappop(heap)
            events += 1

            if pri == _MAP_DONE:
                job, node = jobs[a], b
                free_maps[node] += 1
                job.maps_completed += 1
                if job.map_stage_complete and job.map_stage_end is None:
                    job.map_stage_end = now
                    # AllMapsFinished: reduce runtime = map completion time
                    # + reduce phase, no shuffle component.
                    for ridx, rnode in waiting_reduces.pop(job.job_id, []):
                        end = now + job.profile.reduce_duration(ridx)
                        push(end, _RED_DONE, job.job_id, rnode)
                    if job.num_reduces == 0:
                        finish_job(job, now)

            elif pri == _RED_DONE:
                job, node = jobs[a], b
                free_reduces[node] += 1
                job.reduces_completed += 1
                if job.is_complete:
                    finish_job(job, now)

            elif pri == _SUBMIT:
                job = jobs[a]
                job.state = JobState.RUNNING
                job_q.append(job)
                active += 1
                next_submit_pos += 1
                self.scheduler.on_job_arrival(job, now, agg)

            elif pri == _HEARTBEAT:
                node = a
                while free_maps[node] > 0:
                    candidates = [j for j in job_q if map_eligible(j)]
                    if not candidates:
                        break
                    job = self.scheduler.choose_next_map_task(candidates)
                    if job is None:
                        break
                    index = job.maps_dispatched
                    job.maps_dispatched += 1
                    if job.start_time is None:
                        job.start_time = now
                    free_maps[node] -= 1
                    push(now + job.profile.map_duration(index), _MAP_DONE, job.job_id, node)
                while free_reduces[node] > 0:
                    candidates = [j for j in job_q if reduce_eligible(j)]
                    if not candidates:
                        break
                    job = self.scheduler.choose_next_reduce_task(candidates)
                    if job is None:
                        break
                    index = job.reduces_dispatched
                    job.reduces_dispatched += 1
                    if job.start_time is None:
                        job.start_time = now
                    free_reduces[node] -= 1
                    if not job.map_stage_complete:
                        waiting_reduces.setdefault(job.job_id, []).append((index, node))
                    else:
                        push(
                            now + job.profile.reduce_duration(index),
                            _RED_DONE,
                            job.job_id,
                            node,
                        )

                if completed < len(jobs):
                    next_beat = now + self.heartbeat_interval
                    if active == 0 and next_submit_pos < len(submit_order):
                        nxt = jobs[submit_order[next_submit_pos]].submit_time
                        next_beat = max(
                            next_beat, nxt + self.heartbeat_interval * node / self.num_nodes
                        )
                    push(next_beat, _HEARTBEAT, node, -1)

            else:  # pragma: no cover
                raise AssertionError(f"unknown event priority {pri}")

        wall = elapsed_since(wall_start)
        makespan = max(
            (j.completion_time for j in jobs if j.completion_time is not None), default=0.0
        )
        return SimulationResult(
            scheduler_name=f"Mumak/{self.scheduler.name}",
            jobs=[JobResult.from_job(j) for j in jobs],
            task_records=[],
            makespan=makespan,
            events_processed=events,
            wall_clock_seconds=wall,
        )
