"""Rumen: rich trace extraction from JobTracker history logs.

Rumen (paper reference [8]) is Apache's log-processing companion to
Mumak: it parses job-history logs into JSON job descriptions that Mumak
replays.  "Rumen collects more than 40 properties for each map/reduce
task and all the job counters.  On the other hand, our MRProfiler is
selective and stores only the task durations" (Section IV-A).

This module reproduces that contrast: where
:mod:`repro.mrprofiler` boils a job down to four duration arrays,
:func:`extract_rumen_trace` emits a verbose per-job JSON document —
job-level metadata, per-task records with attempt lists, host names,
phase timestamps and synthesized counter blocks — and Mumak replays from
it.  The verbosity is faithful; the *omission* that matters is handled in
:mod:`repro.mumak.simulator`: Mumak does not use the shuffle timings.
"""

from __future__ import annotations

import json
from typing import Any

from ..core.job import JobProfile, TraceJob
from ..mrprofiler.parser import ParsedJob, parse_history

__all__ = ["extract_rumen_trace", "rumen_to_trace", "dumps_rumen", "loads_rumen"]


def _attempt_record(kind: str, index: int, att: Any) -> dict[str, Any]:
    rec: dict[str, Any] = {
        "attemptID": f"attempt_{index:06d}_0",
        "result": "SUCCESS",
        "startTime": att.start_ms,
        "finishTime": att.finish_ms,
        "hostName": att.hostname,
        "hdfsBytesRead": 67108864 if kind == "MAP" else 0,
        "hdfsBytesWritten": 0,
        "fileBytesRead": 0,
        "fileBytesWritten": 0,
        "mapInputRecords": 0,
        "mapOutputBytes": 0,
        "mapOutputRecords": 0,
        "combineInputRecords": 0,
        "reduceInputGroups": 0,
        "reduceInputRecords": 0,
        "reduceShuffleBytes": 0,
        "reduceOutputRecords": 0,
        "spilledRecords": 0,
    }
    if kind == "REDUCE":
        rec["shuffleFinished"] = att.shuffle_finished_ms
        rec["sortFinished"] = att.sort_finished_ms
    return rec


def _task_record(kind: str, index: int, att: Any) -> dict[str, Any]:
    return {
        "taskID": f"task_{index:06d}",
        "taskType": kind,
        "taskStatus": "SUCCESS",
        "startTime": att.start_ms,
        "finishTime": att.finish_ms,
        "inputBytes": 67108864 if kind == "MAP" else 0,
        "inputRecords": 0,
        "outputBytes": 0,
        "outputRecords": 0,
        "attempts": [_attempt_record(kind, index, att)],
        "preferredLocations": [],
    }


def extract_rumen_trace(history_text: str) -> list[dict[str, Any]]:
    """Per-job Rumen-style JSON documents from a history log."""
    jobs = parse_history(history_text)
    out = []
    for job in jobs:
        out.append(_job_record(job))
    return out


def _job_record(job: ParsedJob) -> dict[str, Any]:
    map_tasks = [
        _task_record("MAP", i, job.map_attempts[i]) for i in sorted(job.map_attempts)
    ]
    reduce_tasks = [
        _task_record("REDUCE", i, job.reduce_attempts[i])
        for i in sorted(job.reduce_attempts)
    ]
    return {
        "jobID": job.job_id,
        "jobName": job.name,
        "user": "simmr",
        "queue": "default",
        "priority": "NORMAL",
        "submitTime": job.submit_ms,
        "launchTime": job.launch_ms,
        "finishTime": job.finish_ms,
        "outcome": job.status or "SUCCESS",
        "totalMaps": job.total_maps if job.total_maps is not None else len(map_tasks),
        "totalReduces": (
            job.total_reduces if job.total_reduces is not None else len(reduce_tasks)
        ),
        "computonsPerMapInputByte": -1,
        "computonsPerMapOutputByte": -1,
        "computonsPerReduceInputByte": -1,
        "computonsPerReduceOutputByte": -1,
        "heapMegabytes": 200,
        "clusterMapMB": -1,
        "clusterReduceMB": -1,
        "jobMapMB": 200,
        "jobReduceMB": 200,
        "mapTasks": map_tasks,
        "reduceTasks": reduce_tasks,
        "otherTasks": [],
        "jobProperties": {"mapred.job.name": job.name},
    }


def rumen_to_trace(rumen_jobs: list[dict[str, Any]]) -> list[TraceJob]:
    """A replayable trace from Rumen JSON documents.

    The profile keeps the shuffle boundaries where present — whether a
    *simulator* uses them is the simulator's choice; Mumak doesn't.
    """
    import numpy as np

    if not rumen_jobs:
        return []
    t0 = min(j["submitTime"] for j in rumen_jobs)
    out = []
    for j in rumen_jobs:
        map_durs = [
            (t["finishTime"] - t["startTime"]) / 1000.0 for t in j["mapTasks"]
        ]
        map_end = max((t["finishTime"] for t in j["mapTasks"]), default=None)
        first_sh, typ_sh, red_durs = [], [], []
        for t in j["reduceTasks"]:
            att = t["attempts"][0]
            red_durs.append((t["finishTime"] - att["sortFinished"]) / 1000.0)
            if map_end is not None and t["startTime"] < map_end:
                first_sh.append(max(0, att["shuffleFinished"] - map_end) / 1000.0)
            else:
                typ_sh.append((att["shuffleFinished"] - t["startTime"]) / 1000.0)
        profile = JobProfile(
            name=j["jobName"] or j["jobID"],
            num_maps=len(map_durs),
            num_reduces=len(red_durs),
            map_durations=np.asarray(map_durs),
            first_shuffle_durations=np.asarray(first_sh),
            typical_shuffle_durations=np.asarray(typ_sh),
            reduce_durations=np.asarray(red_durs),
        )
        out.append(TraceJob(profile, (j["submitTime"] - t0) / 1000.0))
    return out


def dumps_rumen(rumen_jobs: list[dict[str, Any]]) -> str:
    """Serialize Rumen documents the way the real tool does: one JSON
    object per job, newline-separated."""
    return "\n".join(json.dumps(j) for j in rumen_jobs) + "\n"


def loads_rumen(text: str) -> list[dict[str, Any]]:
    """Parse newline-separated Rumen JSON back into job documents."""
    out = []
    for i, line in enumerate(text.splitlines()):
        line = line.strip()
        if not line:
            continue
        try:
            out.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed Rumen JSON on line {i + 1}: {exc}") from None
    return out
