"""The Mumak + Rumen baseline (Apache's simulator, per its published
behaviour: heartbeat-level simulation, no shuffle modeling)."""

from .rumen import dumps_rumen, extract_rumen_trace, loads_rumen, rumen_to_trace
from .simulator import MumakSimulator

__all__ = ["dumps_rumen", "extract_rumen_trace", "loads_rumen", "rumen_to_trace", "MumakSimulator"]
