"""The single sanctioned wall-clock site in the simulator.

Simulated time must derive only from trace profiles and the event heap
(simlint DET001/DET004) — but the *simulator's own speed* is a paper
claim too ("over one million events per second", Section IV-B), and
measuring it requires the host clock.  Rather than scattering audited
``# simlint: disable=DET001`` suppressions at each read, every
throughput measurement funnels through this module, which the lint
configuration timing-whitelists (``timing-whitelist = ["benchmarks/",
"walltime"]``).  The contract:

* values returned here feed **only** wall-clock metrics
  (``SimulationResult.wall_clock_seconds`` and friends) — never a
  simulated timestamp, an event ordering, or a scheduling decision;
* the cross-module rule DET004 treats functions in this module as
  sanctioned sinks, so callers do not inherit wall-clock taint.

Adding any other wall-clock read to the codebase should fail lint — if
it is a legitimate throughput measurement, route it through here.
"""

from __future__ import annotations

import time as _time

__all__ = ["perf_seconds", "elapsed_since"]


def perf_seconds() -> float:
    """Monotonic wall-clock seconds for throughput metrics."""
    return _time.perf_counter()


def elapsed_since(start: float) -> float:
    """Seconds elapsed since a previous :func:`perf_seconds` reading."""
    return _time.perf_counter() - start
