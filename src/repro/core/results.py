"""Simulation outputs: per-job results and whole-run summaries.

The engine's "output log" (paper Figure 4).  :class:`SimulationResult`
carries everything the evaluation experiments need: per-job completion
times (Figure 5 accuracy), task-level records (Figures 1-3 progress plots
and duration CDFs), the deadline-exceeded utility metric (Figures 7-8),
and engine statistics (Figure 6 / the ">1M events per second" headline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from .events import Event
from .job import Job, TaskRecord

__all__ = ["JobResult", "SimulationResult"]


@dataclass(frozen=True, slots=True)
class JobResult:
    """Immutable summary of one completed (or unfinished) job."""

    job_id: int
    name: str
    submit_time: float
    start_time: Optional[float]
    map_stage_end: Optional[float]
    completion_time: Optional[float]
    deadline: Optional[float]
    num_maps: int
    num_reduces: int

    @classmethod
    def from_job(cls, job: Job) -> "JobResult":
        return cls(
            job_id=job.job_id,
            name=job.name,
            submit_time=job.submit_time,
            start_time=job.start_time,
            map_stage_end=job.map_stage_end,
            completion_time=job.completion_time,
            deadline=job.deadline,
            num_maps=job.num_maps,
            num_reduces=job.num_reduces,
        )

    @property
    def duration(self) -> Optional[float]:
        """Completion time relative to submission (the paper's T_J)."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.submit_time

    @property
    def met_deadline(self) -> Optional[bool]:
        """Whether the job met its deadline; ``None`` if it had none."""
        if self.deadline is None or self.completion_time is None:
            return None
        return self.completion_time <= self.deadline

    def relative_deadline_exceeded(self) -> float:
        """``(T_J - D_J)/D_J`` if exceeded, else 0 (paper Section V-A)."""
        if self.deadline is None or self.completion_time is None or self.deadline <= 0:
            return 0.0
        over = self.completion_time - self.deadline
        return over / self.deadline if over > 0 else 0.0


@dataclass(slots=True)
class SimulationResult:
    """Full output of one simulator run."""

    scheduler_name: str
    jobs: list[JobResult]
    task_records: list[TaskRecord]
    makespan: float
    events_processed: int
    wall_clock_seconds: float
    #: BLAKE2b fingerprint of the popped event stream (hex), populated
    #: when the run carried an event digest (a sanitizer with
    #: ``digest=``, or the sweep layers' ``DigestRecorder``).  Two runs
    #: with equal digests scheduled the same tasks at the same times in
    #: the same order — the determinism contract's equality, and how the
    #: parallel sweep cache proves a restored result faithful.
    event_digest: Optional[str] = None
    #: Which execution path produced the run: ``"kernel"`` (columnar
    #: engine's fast path, either mode) or ``"object"`` (the classic
    #: object-per-event loop — forced, or a columnar-engine fallback).
    #: ``None`` on results from before this field existed.
    engine_path: Optional[str] = None
    #: Why the columnar engine fell back to the object loop (``None``
    #: when it did not, or when the object engine was asked for
    #: directly).  See ``ColumnarEngine._fallback_reason`` for the
    #: envelope's short list of reasons.
    fallback_reason: Optional[str] = None
    #: The processed event stream (populated only when the engine ran
    #: with ``record_events=True``) — the paper's seven event types in
    #: processing order.
    event_log: list[Event] = field(default_factory=list)

    # Cached lookups -------------------------------------------------------
    _by_id: dict[int, JobResult] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._by_id = {j.job_id: j for j in self.jobs}

    def job(self, job_id: int) -> JobResult:
        """Result of the job with the given id."""
        return self._by_id[job_id]

    def completion_times(self) -> dict[int, float]:
        """Map from job id to absolute completion time (completed jobs)."""
        return {
            j.job_id: j.completion_time
            for j in self.jobs
            if j.completion_time is not None
        }

    def durations(self) -> dict[int, float]:
        """Map from job id to T_J = completion - submission."""
        return {j.job_id: j.duration for j in self.jobs if j.duration is not None}

    def relative_deadline_exceeded(self) -> float:
        """The paper's utility metric: sum over late jobs of (T-D)/D.

        Lower is better; the scheduler minimizing it "is a better candidate
        for a deadline-based scheduler" (Section V-A).
        """
        return sum(j.relative_deadline_exceeded() for j in self.jobs)

    def jobs_missed_deadline(self) -> list[JobResult]:
        """Jobs that finished after their deadline."""
        return [j for j in self.jobs if j.met_deadline is False]

    @property
    def events_per_second(self) -> float:
        """Engine throughput (events / wall second); inf for instant runs."""
        if self.wall_clock_seconds <= 0:
            return float("inf")
        return self.events_processed / self.wall_clock_seconds

    def task_records_for(self, job_id: int, kind: Optional[str] = None) -> list[TaskRecord]:
        """Task records of one job, optionally filtered to "map"/"reduce"."""
        return [
            r
            for r in self.task_records
            if r.job_id == job_id and (kind is None or r.kind == kind)
        ]

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterable[JobResult]:
        return iter(self.jobs)
