"""Job templates (trace records) and runtime job state.

The paper's Trace Database stores, per job *J* (Section III-A):

* ``(N_M, N_R)`` — the number of map and reduce tasks;
* ``MapDurations`` — the ``N_M`` map-task durations;
* ``FirstShuffleDurations`` — durations of the *non-overlapping part* of
  the first reduce wave's shuffle phase (the portion after the map stage
  has finished);
* ``TypicalShuffleDurations`` — shuffle durations of the later waves;
* ``ReduceDurations`` — the ``N_R`` reduce-phase durations.

:class:`JobProfile` is that template.  :class:`TraceJob` binds a profile to
a submission time and an optional deadline — a *trace* is a sequence of
:class:`TraceJob`.  :class:`Job` is the engine's mutable runtime state for
one replayed job.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Sequence

import numpy as np

__all__ = [
    "JobProfile",
    "PhaseStats",
    "TraceJob",
    "Job",
    "JobState",
    "TaskRecord",
]


def _as_duration_array(values: Sequence[float], what: str) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{what} must be a 1-D sequence, got shape {arr.shape}")
    if arr.size and (not np.all(np.isfinite(arr)) or np.any(arr < 0)):
        raise ValueError(f"{what} must contain finite non-negative durations")
    arr.flags.writeable = False
    return arr


@dataclass(frozen=True, slots=True)
class PhaseStats:
    """Average and maximum task duration for one execution phase.

    These are the "performance invariants" of the ARIA model (paper
    Section V-A): the makespan bounds need only ``avg`` and ``max`` of the
    task durations plus the task count.
    """

    avg: float
    max: float
    count: int

    @classmethod
    def of(cls, durations: np.ndarray) -> "PhaseStats":
        if durations.size == 0:
            return cls(avg=0.0, max=0.0, count=0)
        return cls(
            avg=float(durations.mean()),
            max=float(durations.max()),
            count=int(durations.size),
        )


@dataclass(frozen=True)
class JobProfile:
    """The job template stored in the trace database.

    Durations are in seconds of simulated time.  ``num_maps`` /
    ``num_reduces`` may exceed the stored array lengths (e.g. a profile
    recorded from a down-sampled run); replay then cycles through the
    arrays deterministically via :meth:`map_duration` and friends.
    """

    name: str
    num_maps: int
    num_reduces: int
    map_durations: np.ndarray
    first_shuffle_durations: np.ndarray
    typical_shuffle_durations: np.ndarray
    reduce_durations: np.ndarray

    def __post_init__(self) -> None:
        if self.num_maps < 0 or self.num_reduces < 0:
            raise ValueError("task counts must be non-negative")
        if self.num_maps == 0 and self.num_reduces == 0:
            raise ValueError(f"job profile {self.name!r} has no tasks")
        object.__setattr__(
            self, "map_durations", _as_duration_array(self.map_durations, "map_durations")
        )
        object.__setattr__(
            self,
            "first_shuffle_durations",
            _as_duration_array(self.first_shuffle_durations, "first_shuffle_durations"),
        )
        object.__setattr__(
            self,
            "typical_shuffle_durations",
            _as_duration_array(self.typical_shuffle_durations, "typical_shuffle_durations"),
        )
        object.__setattr__(
            self,
            "reduce_durations",
            _as_duration_array(self.reduce_durations, "reduce_durations"),
        )
        if self.num_maps > 0 and self.map_durations.size == 0:
            raise ValueError(f"job {self.name!r}: {self.num_maps} maps but no map durations")
        if self.num_reduces > 0:
            if self.reduce_durations.size == 0:
                raise ValueError(
                    f"job {self.name!r}: {self.num_reduces} reduces but no reduce durations"
                )
            if self.first_shuffle_durations.size == 0 and self.typical_shuffle_durations.size == 0:
                raise ValueError(f"job {self.name!r}: reduces but no shuffle durations")

    # -- per-task duration lookup (deterministic cyclic indexing) ---------

    def map_duration(self, index: int) -> float:
        """Duration of map task ``index``."""
        return float(self.map_durations[index % self.map_durations.size])

    def first_shuffle_duration(self, index: int) -> float:
        """Non-overlapping first-wave shuffle duration for reduce ``index``.

        Falls back to the typical-shuffle array when the profile recorded
        no first-wave measurements (e.g. a single-wave original run where
        every reduce was first-wave would instead lack *typical* entries).
        """
        if self.first_shuffle_durations.size:
            return float(self.first_shuffle_durations[index % self.first_shuffle_durations.size])
        return self.typical_shuffle_duration(index)

    def typical_shuffle_duration(self, index: int) -> float:
        """Typical (non-first-wave) shuffle duration for reduce ``index``."""
        if self.typical_shuffle_durations.size:
            return float(
                self.typical_shuffle_durations[index % self.typical_shuffle_durations.size]
            )
        return float(self.first_shuffle_durations[index % self.first_shuffle_durations.size])

    def reduce_duration(self, index: int) -> float:
        """Reduce-phase (post-shuffle) duration of reduce task ``index``."""
        return float(self.reduce_durations[index % self.reduce_durations.size])

    # -- phase statistics ---------------------------------------------------

    @property
    def map_stats(self) -> PhaseStats:
        return PhaseStats.of(self.map_durations)

    @property
    def first_shuffle_stats(self) -> PhaseStats:
        if self.first_shuffle_durations.size:
            return PhaseStats.of(self.first_shuffle_durations)
        return PhaseStats.of(self.typical_shuffle_durations)

    @property
    def typical_shuffle_stats(self) -> PhaseStats:
        if self.typical_shuffle_durations.size:
            return PhaseStats.of(self.typical_shuffle_durations)
        return PhaseStats.of(self.first_shuffle_durations)

    @property
    def reduce_stats(self) -> PhaseStats:
        return PhaseStats.of(self.reduce_durations)

    def total_task_seconds(self) -> float:
        """Total task-seconds of work (serial execution time)."""
        total = sum(self.map_duration(i) for i in range(self.num_maps))
        for i in range(self.num_reduces):
            total += self.typical_shuffle_duration(i) + self.reduce_duration(i)
        return total

    def with_name(self, name: str) -> "JobProfile":
        """A copy of this profile under a different name."""
        return JobProfile(
            name=name,
            num_maps=self.num_maps,
            num_reduces=self.num_reduces,
            map_durations=self.map_durations,
            first_shuffle_durations=self.first_shuffle_durations,
            typical_shuffle_durations=self.typical_shuffle_durations,
            reduce_durations=self.reduce_durations,
        )


@dataclass(frozen=True, slots=True)
class TraceJob:
    """One entry of a replayable trace: profile + submit time + deadline.

    ``deadline`` is absolute simulated time (not relative to submission);
    ``None`` means the job has no deadline (FIFO-style workloads).

    ``depends_on`` turns traces into workflows: the index (within the
    trace) of a job that must complete before this one is submitted.
    The effective submission time is then ``max(submit_time, parent
    completion)`` — e.g. the stages of a Mahout TF-IDF pipeline, where
    each MapReduce job consumes the previous one's output.
    """

    profile: JobProfile
    submit_time: float
    deadline: Optional[float] = None
    depends_on: Optional[int] = None

    def __post_init__(self) -> None:
        if self.submit_time < 0 or not math.isfinite(self.submit_time):
            raise ValueError(f"submit_time must be finite and >= 0, got {self.submit_time}")
        if self.deadline is not None and self.deadline < self.submit_time:
            raise ValueError(
                f"deadline {self.deadline} precedes submit_time {self.submit_time}"
            )
        if self.depends_on is not None and self.depends_on < 0:
            raise ValueError(f"depends_on must be a trace index >= 0, got {self.depends_on}")


class JobState(Enum):
    """Lifecycle of a replayed job."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"


@dataclass(slots=True)
class TaskRecord:
    """Execution record of one simulated task attempt.

    For reduce tasks, ``shuffle_end`` marks the boundary between the
    (combined shuffle/sort) phase and the reduce phase; for map tasks it
    is ``None``.  ``first_wave`` records whether the reduce task's shuffle
    overlapped the job's map stage.
    """

    kind: str  # "map" | "reduce"
    job_id: int
    index: int
    start: float
    end: float = math.inf
    shuffle_end: Optional[float] = None
    first_wave: bool = False
    #: True when the attempt was preemption-killed; ``end`` is then the
    #: kill time and the index reruns as a later record.
    killed: bool = False


class Job:
    """Mutable runtime state of one job inside the simulator engine."""

    __slots__ = (
        "job_id",
        "profile",
        "num_maps",
        "num_reduces",
        "reduce_gate",
        "submit_time",
        "deadline",
        "state",
        "start_time",
        "completion_time",
        "maps_dispatched",
        "maps_completed",
        "reduces_dispatched",
        "reduces_completed",
        "map_stage_end",
        "map_records",
        "reduce_records",
        "wanted_map_slots",
        "wanted_reduce_slots",
        "sched_key",
        "in_map_heap",
        "in_reduce_heap",
        "next_map_index",
        "next_reduce_index",
        "requeued_maps",
        "requeued_reduces",
    )

    def __init__(self, job_id: int, trace_job: TraceJob) -> None:
        self.job_id = job_id
        self.profile = trace_job.profile
        # Task counts copied to plain attributes: they sit on the hot
        # eligibility path, where property indirection is measurable.
        self.num_maps = trace_job.profile.num_maps
        self.num_reduces = trace_job.profile.num_reduces
        # Completed-maps threshold for reduce slow-start; the engine sets
        # it from its min_map_percent_completed at job arrival.
        self.reduce_gate = 0.0
        self.submit_time = trace_job.submit_time
        self.deadline = trace_job.deadline
        self.state = JobState.PENDING
        self.start_time: Optional[float] = None
        self.completion_time: Optional[float] = None
        self.maps_dispatched = 0
        self.maps_completed = 0
        self.reduces_dispatched = 0
        self.reduces_completed = 0
        self.map_stage_end: Optional[float] = None
        self.map_records: list[TaskRecord] = []
        self.reduce_records: list[TaskRecord] = []
        # Slot demand caps consulted by demand-aware schedulers (MinEDF).
        # ``None`` means "as many as the policy will give us".
        self.wanted_map_slots: Optional[int] = None
        self.wanted_reduce_slots: Optional[int] = None
        # Engine bookkeeping for the static-priority fast path.
        self.sched_key: tuple = ()
        self.in_map_heap = False
        self.in_reduce_heap = False
        # Task-index allocation.  Fresh tasks take the next_* counter;
        # preemption-killed tasks requeue their index (the attempt reruns
        # from scratch, Hadoop's kill semantics).
        self.next_map_index = 0
        self.next_reduce_index = 0
        self.requeued_maps: list[int] = []
        self.requeued_reduces: list[int] = []

    # -- derived queries used by schedulers and the engine -----------------

    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def pending_maps(self) -> int:
        """Map tasks not yet dispatched to a slot."""
        return self.num_maps - self.maps_dispatched

    @property
    def pending_reduces(self) -> int:
        """Reduce tasks not yet dispatched to a slot."""
        return self.num_reduces - self.reduces_dispatched

    @property
    def running_maps(self) -> int:
        return self.maps_dispatched - self.maps_completed

    @property
    def running_reduces(self) -> int:
        return self.reduces_dispatched - self.reduces_completed

    @property
    def map_stage_complete(self) -> bool:
        return self.maps_completed >= self.num_maps

    @property
    def is_complete(self) -> bool:
        return (
            self.maps_completed >= self.num_maps
            and self.reduces_completed >= self.num_reduces
        )

    def map_fraction_completed(self) -> float:
        """Fraction of map tasks completed (1.0 for map-less jobs)."""
        if self.num_maps == 0:
            return 1.0
        return self.maps_completed / self.num_maps

    def deadline_exceeded_by(self) -> float:
        """The job's term of the paper's utility metric.

        Returns ``(T_J - D_J) / D_J`` when the completed job exceeded its
        deadline and 0 otherwise (also 0 for jobs without deadlines).
        """
        if self.deadline is None or self.completion_time is None:
            return 0.0
        if self.completion_time <= self.deadline or self.deadline <= 0:
            return 0.0
        return (self.completion_time - self.deadline) / self.deadline

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Job(id={self.job_id}, name={self.name!r}, state={self.state.value}, "
            f"maps={self.maps_completed}/{self.num_maps}, "
            f"reduces={self.reduces_completed}/{self.num_reduces})"
        )
