"""Serialization of simulation results — the paper's "output log".

Figure 4's data flow ends with the Simulator Engine producing an output
log.  This module writes a :class:`~repro.core.results.SimulationResult`
as a JSON document (reloadable; the optional debug event log is not
persisted) or a CSV job table (for spreadsheets/pandas), and reads the
JSON back.
"""

from __future__ import annotations

import csv
import io
import json
import math
from pathlib import Path
from typing import Any

from .job import TaskRecord
from .results import JobResult, SimulationResult

__all__ = [
    "result_to_dict",
    "result_from_dict",
    "save_result",
    "load_result",
    "jobs_to_csv",
]

# Version 2 added the optional ``event_digest`` fingerprint (needed for
# faithful cache restores in :mod:`repro.parallel`); version-1 documents
# are still readable — they simply carry no digest.  The optional
# ``engine_path`` / ``fallback_reason`` accounting keys ride on version 2
# (readers default them to None), so older readers and pinned documents
# stay valid.
_FORMAT_VERSION = 2
_READABLE_VERSIONS = (1, 2)


def result_to_dict(result: SimulationResult) -> dict[str, Any]:
    """JSON-serializable document for a full simulation result.

    The document is lossless for everything the engine reports except
    the optional debug ``event_log``: scheduler name, makespan, the
    engine statistics (``events_processed``, ``wall_clock_seconds``),
    the event-stream digest, per-job results and task records all
    round-trip exactly through :func:`result_from_dict` (pinned by
    ``tests/test_results_io.py``) — which is what lets the parallel
    sweep cache restore a stored run as if it had just executed.
    """
    return {
        "format_version": _FORMAT_VERSION,
        "scheduler": result.scheduler_name,
        "makespan": result.makespan,
        "events_processed": result.events_processed,
        "wall_clock_seconds": result.wall_clock_seconds,
        "event_digest": result.event_digest,
        "engine_path": result.engine_path,
        "fallback_reason": result.fallback_reason,
        "jobs": [
            {
                "job_id": j.job_id,
                "name": j.name,
                "submit_time": j.submit_time,
                "start_time": j.start_time,
                "map_stage_end": j.map_stage_end,
                "completion_time": j.completion_time,
                "deadline": j.deadline,
                "num_maps": j.num_maps,
                "num_reduces": j.num_reduces,
            }
            for j in result.jobs
        ],
        "task_records": [
            {
                "kind": r.kind,
                "job_id": r.job_id,
                "index": r.index,
                "start": r.start,
                "end": None if math.isinf(r.end) else r.end,
                "shuffle_end": r.shuffle_end,
                "first_wave": r.first_wave,
                "killed": r.killed,
            }
            for r in result.task_records
        ],
    }


def result_from_dict(data: dict[str, Any]) -> SimulationResult:
    """Rebuild a result from :func:`result_to_dict` output."""
    version = data.get("format_version")
    if version not in _READABLE_VERSIONS:
        raise ValueError(
            f"unsupported result format version {version!r} "
            f"(readable: {', '.join(map(str, _READABLE_VERSIONS))})"
        )
    jobs = [
        JobResult(
            job_id=j["job_id"],
            name=j["name"],
            submit_time=j["submit_time"],
            start_time=j["start_time"],
            map_stage_end=j["map_stage_end"],
            completion_time=j["completion_time"],
            deadline=j["deadline"],
            num_maps=j["num_maps"],
            num_reduces=j["num_reduces"],
        )
        for j in data["jobs"]
    ]
    records = [
        TaskRecord(
            kind=r["kind"],
            job_id=r["job_id"],
            index=r["index"],
            start=r["start"],
            end=math.inf if r["end"] is None else r["end"],
            shuffle_end=r["shuffle_end"],
            first_wave=r["first_wave"],
            killed=r.get("killed", False),
        )
        for r in data["task_records"]
    ]
    return SimulationResult(
        scheduler_name=data["scheduler"],
        jobs=jobs,
        task_records=records,
        makespan=data["makespan"],
        events_processed=data["events_processed"],
        wall_clock_seconds=data["wall_clock_seconds"],
        event_digest=data.get("event_digest"),
        engine_path=data.get("engine_path"),
        fallback_reason=data.get("fallback_reason"),
    )


def save_result(result: SimulationResult, path: str | Path) -> None:
    """Write the output log as JSON."""
    Path(path).write_text(json.dumps(result_to_dict(result)))


def load_result(path: str | Path) -> SimulationResult:
    """Read an output log written by :func:`save_result`."""
    return result_from_dict(json.loads(Path(path).read_text()))


def jobs_to_csv(result: SimulationResult) -> str:
    """The per-job table as CSV text (header + one row per job)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(
        [
            "job_id",
            "name",
            "submit_time",
            "start_time",
            "map_stage_end",
            "completion_time",
            "duration",
            "deadline",
            "met_deadline",
            "num_maps",
            "num_reduces",
        ]
    )
    for j in result.jobs:
        writer.writerow(
            [
                j.job_id,
                j.name,
                j.submit_time,
                j.start_time,
                j.map_stage_end,
                j.completion_time,
                j.duration,
                j.deadline,
                j.met_deadline,
                j.num_maps,
                j.num_reduces,
            ]
        )
    return buf.getvalue()
