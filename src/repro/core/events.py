"""Discrete-event primitives for the SimMR simulator engine.

The paper (Section III-B) describes the engine as maintaining "a priority
queue Q for seven event types: job arrivals and departures, map and reduce
task arrivals and departures, and an event signaling the completion of the
map stage. Each event is a triplet ``(eventTime, eventType, jobId)``".

This module provides exactly that: the :class:`EventType` enumeration with
the seven types, the :class:`Event` triplet (extended with a task index so
handlers know *which* task completed), and :class:`EventQueue`, a
binary-heap priority queue with deterministic total ordering.

Determinism matters: two events at the same simulated time must always pop
in the same order regardless of insertion history, otherwise replaying the
same trace twice could yield different schedules.  Ordering is therefore
``(time, type-priority, sequence number)`` where the sequence number is a
monotonically increasing insertion counter.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Iterator, Optional

__all__ = ["EventType", "Event", "EventQueue"]


class EventType(IntEnum):
    """The seven SimMR event types.

    The integer values double as tie-breaking priorities for events that
    fire at the same simulated time.  Departures (task/job completions)
    are processed before arrivals so that slots freed at time *t* are
    visible to allocation decisions made at time *t*; the map-stage
    completion signal fires after map-task departures at the same instant
    (it is *caused* by the last departure) but before any reduce activity,
    so first-wave shuffle durations are rewritten before new reduce
    decisions are taken.
    """

    MAP_TASK_DEPARTURE = 0
    ALL_MAPS_FINISHED = 1
    REDUCE_TASK_DEPARTURE = 2
    JOB_DEPARTURE = 3
    JOB_ARRIVAL = 4
    MAP_TASK_ARRIVAL = 5
    REDUCE_TASK_ARRIVAL = 6


@dataclass(frozen=True, slots=True)
class Event:
    """The paper's ``(eventTime, eventType, jobId)`` triplet.

    ``task_index`` augments the triplet with the index of the map/reduce
    task the event refers to (``None`` for job-level events).  It carries
    no scheduling semantics — ordering is purely by time, type and
    insertion sequence.
    """

    time: float
    event_type: EventType
    job_id: int
    task_index: Optional[int] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"event time must be non-negative, got {self.time}")

    def key(self) -> tuple[float, int, int, int]:
        """Canonical comparable/hashable form ``(time, type, job, task)``.

        ``task_index`` maps to ``-1`` for job-level events — the same
        encoding the engine's raw event tuples use.  The runtime
        sanitizer's event digest (``repro.sanitize``) streams these keys
        to detect replay divergence between two runs of one trace.
        """
        return (
            self.time,
            int(self.event_type),
            self.job_id,
            self.task_index if self.task_index is not None else -1,
        )


@dataclass(order=True, slots=True)
class _HeapEntry:
    time: float
    priority: int
    seq: int
    event: Event = field(compare=False)


class EventQueue:
    """Deterministic binary-heap priority queue of :class:`Event`.

    Pops events in ``(time, event-type priority, insertion order)`` order.
    The queue also tracks the total number of events ever pushed, which the
    performance experiments (paper Section IV-E, ">1 million events per
    second") use as the event count.
    """

    __slots__ = ("_heap", "_seq", "_pushed")

    def __init__(self) -> None:
        self._heap: list[_HeapEntry] = []
        self._seq = 0
        self._pushed = 0

    def push(self, event: Event) -> None:
        """Insert ``event``; O(log n)."""
        entry = _HeapEntry(event.time, int(event.event_type), self._seq, event)
        self._seq += 1
        self._pushed += 1
        heapq.heappush(self._heap, entry)

    def pop(self) -> Event:
        """Remove and return the earliest event; raises IndexError if empty."""
        return heapq.heappop(self._heap).event

    def peek(self) -> Event:
        """Return the earliest event without removing it."""
        return self._heap[0].event

    def peek_time(self) -> float:
        """Time of the earliest event; raises IndexError if empty."""
        return self._heap[0].time

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[Event]:
        """Iterate events in pop order *without* consuming the queue."""
        return (entry.event for entry in sorted(self._heap))

    @property
    def total_pushed(self) -> int:
        """Number of events pushed over the queue's lifetime."""
        return self._pushed

    def clear(self) -> None:
        self._heap.clear()
