"""Columnar task-profile storage: one buffer, many zero-copy views.

A trace is logically a list of :class:`~repro.core.job.TraceJob`, each
carrying four per-phase duration vectors.  Moving that representation
between processes (the parallel executor), off disk (the binary trace
format) or through a service cache as per-job Python objects costs a
full pickle/parse per copy.  :class:`TraceColumns` is the columnar
alternative: all duration vectors of all jobs live back-to-back in a
single contiguous float64 buffer, with small per-job metadata columns
(``array`` module vectors) describing where each phase's span sits.

The crucial property is that the buffer never needs to be owned by this
process: it can be an in-process ``array('d')``, an ``mmap`` of a
binary trace file, or a ``multiprocessing.shared_memory`` segment —
:meth:`TraceColumns.jobs` rebuilds :class:`~repro.core.job.TraceJob`
objects whose :class:`~repro.core.job.JobProfile` arrays are *views*
into that buffer (``numpy.frombuffer``), so "parsing" a trace the
second time is O(jobs), not O(task durations), and N workers mapping
the same segment share one physical copy of the durations.

Schedulers, the engine and the results layer are unchanged: a view-built
``TraceJob`` is indistinguishable from a loaded one (same types, same
bit-exact float64 durations, same
:func:`~repro.sanitize.digest.trace_digest`).
"""

from __future__ import annotations

import math
from array import array
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from .job import JobProfile, TraceJob

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .cluster import ClusterConfig
    from .job import Job

__all__ = ["SchedulerColumns", "TraceColumns", "PHASES"]

#: The four duration phases, in their storage order within each job's
#: span table (and within the binary trace format's job records).
PHASES = ("map", "first_shuffle", "typical_shuffle", "reduce")

#: ``depends_on`` column value meaning "no dependency".
_NO_DEP = -1


def _phase_arrays(profile: JobProfile) -> tuple[np.ndarray, ...]:
    return (
        profile.map_durations,
        profile.first_shuffle_durations,
        profile.typical_shuffle_durations,
        profile.reduce_durations,
    )


class TraceColumns:
    """Array-backed columnar form of a replayable trace.

    Columns (all little arrays, one entry per job):

    * ``names`` — job/application names;
    * ``submit_times`` (``array('d')``), ``deadlines`` (``array('d')``,
      NaN encodes "no deadline"), ``depends_on`` (``array('q')``, -1
      encodes "no dependency");
    * ``num_maps`` / ``num_reduces`` (``array('q')``);
    * ``spans`` (``array('Q')``, 8 entries per job) — ``(offset,
      length)`` pairs into :attr:`data` for each of the four
      :data:`PHASES`, in float64 units.

    ``data`` is any object exposing the buffer protocol over the
    contiguous float64 durations; ``owner`` (optional) is kept alive so
    a backing ``mmap`` or shared-memory segment cannot be collected
    while views into it exist.

    Identical duration vectors are stored once (content deduplication):
    a trace replaying one recorded profile 500 times carries one copy
    of its arrays, which is also what makes the packed binary form
    compact.
    """

    __slots__ = (
        "names",
        "submit_times",
        "deadlines",
        "depends_on",
        "num_maps",
        "num_reduces",
        "spans",
        "data",
        "owner",
    )

    def __init__(
        self,
        *,
        names: tuple[str, ...],
        submit_times: array,
        deadlines: array,
        depends_on: array,
        num_maps: array,
        num_reduces: array,
        spans: array,
        data: object,
        owner: object = None,
    ) -> None:
        n = len(names)
        if not (
            len(submit_times) == len(deadlines) == len(depends_on)
            == len(num_maps) == len(num_reduces) == n
            and len(spans) == 8 * n
        ):
            raise ValueError("column lengths disagree")
        self.names = names
        self.submit_times = submit_times
        self.deadlines = deadlines
        self.depends_on = depends_on
        self.num_maps = num_maps
        self.num_reduces = num_reduces
        self.spans = spans
        self.data = data
        self.owner = owner

    # -- construction ------------------------------------------------------

    @classmethod
    def from_trace(cls, trace: Sequence[TraceJob]) -> "TraceColumns":
        """Copy a job-object trace into fresh columnar storage."""
        names: list[str] = []
        submit_times = array("d")
        deadlines = array("d")
        depends_on = array("q")
        num_maps = array("q")
        num_reduces = array("q")
        spans = array("Q")
        data = array("d")
        # Content-level dedup of duration vectors: byte-identical spans
        # share one slot in the buffer (deterministic — keyed purely on
        # content, first occurrence wins).
        seen: dict[bytes, int] = {}
        for job in trace:
            profile = job.profile
            names.append(profile.name)
            submit_times.append(job.submit_time)
            deadlines.append(math.nan if job.deadline is None else job.deadline)
            depends_on.append(_NO_DEP if job.depends_on is None else job.depends_on)
            num_maps.append(profile.num_maps)
            num_reduces.append(profile.num_reduces)
            for arr in _phase_arrays(profile):
                payload = arr.tobytes()
                offset = seen.get(payload)
                if offset is None:
                    offset = len(data)
                    seen[payload] = offset
                    data.frombytes(payload)
                spans.append(offset)
                spans.append(arr.size)
        return cls(
            names=tuple(names),
            submit_times=submit_times,
            deadlines=deadlines,
            depends_on=depends_on,
            num_maps=num_maps,
            num_reduces=num_reduces,
            spans=spans,
            data=data,
        )

    # -- shape -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.names)

    @property
    def total_durations(self) -> int:
        """float64 slots in the shared duration buffer."""
        return memoryview(self.data).nbytes // 8

    @property
    def nbytes(self) -> int:
        """Approximate footprint of the columnar storage (bytes)."""
        return (
            memoryview(self.data).nbytes
            + sum(len(n.encode()) for n in self.names)
            + self.submit_times.itemsize * len(self.submit_times)
            + self.deadlines.itemsize * len(self.deadlines)
            + self.depends_on.itemsize * len(self.depends_on)
            + self.num_maps.itemsize * len(self.num_maps)
            + self.num_reduces.itemsize * len(self.num_reduces)
            + self.spans.itemsize * len(self.spans)
        )

    # -- view reconstruction ----------------------------------------------

    def _phase_view(self, raw: memoryview, slot: int) -> np.ndarray:
        offset = self.spans[slot]
        count = self.spans[slot + 1]
        return np.frombuffer(raw, dtype="<f8", count=count, offset=offset * 8)

    def job(self, index: int) -> TraceJob:
        """Job ``index`` as a thin view over the shared buffer."""
        if not 0 <= index < len(self.names):
            raise IndexError(f"job index {index} out of range")
        raw = memoryview(self.data).cast("B")
        return self._job(index, raw)

    def _job(self, index: int, raw: memoryview) -> TraceJob:
        base = 8 * index
        deadline = self.deadlines[index]
        dep = self.depends_on[index]
        profile = JobProfile(
            name=self.names[index],
            num_maps=self.num_maps[index],
            num_reduces=self.num_reduces[index],
            map_durations=self._phase_view(raw, base),
            first_shuffle_durations=self._phase_view(raw, base + 2),
            typical_shuffle_durations=self._phase_view(raw, base + 4),
            reduce_durations=self._phase_view(raw, base + 6),
        )
        return TraceJob(
            profile=profile,
            submit_time=self.submit_times[index],
            deadline=None if math.isnan(deadline) else deadline,
            depends_on=None if dep == _NO_DEP else dep,
        )

    def jobs(self) -> list[TraceJob]:
        """The full trace, every duration array a view into :attr:`data`.

        O(jobs) object construction; no duration is copied.  The views
        keep :attr:`data` (and :attr:`owner`) alive, so the backing
        mmap / shared-memory segment outlives every returned job.
        """
        raw = memoryview(self.data).cast("B")
        return [self._job(i, raw) for i in range(len(self.names))]

    # -- equality (tests / round-trip checks) ------------------------------

    def digest_material_equal(self, other: "TraceColumns") -> bool:
        """Bit-for-bit equality of everything :func:`trace_digest` sees."""
        if (
            self.names != other.names
            or self.submit_times != other.submit_times
            or self.depends_on != other.depends_on
            or self.num_maps != other.num_maps
            or self.num_reduces != other.num_reduces
        ):
            return False
        # NaN-encoded deadlines: array('d') equality treats NaN != NaN,
        # so compare the raw bytes instead.
        if self.deadlines.tobytes() != other.deadlines.tobytes():
            return False
        mine = memoryview(self.data).cast("B")
        theirs = memoryview(other.data).cast("B")
        for slot in range(0, len(self.spans), 2):
            a_off, a_len = self.spans[slot] * 8, self.spans[slot + 1] * 8
            b_off, b_len = other.spans[slot] * 8, other.spans[slot + 1] * 8
            if a_len != b_len or bytes(mine[a_off:a_off + a_len]) != bytes(
                theirs[b_off:b_off + b_len]
            ):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceColumns(jobs={len(self)}, durations={self.total_durations}, "
            f"~{self.nbytes} bytes)"
        )


class SchedulerColumns:
    """Per-job simulation-state columns the kernel maintains for policies.

    The columnar engine's replay path hands one instance to schedulers
    opting into :class:`~repro.schedulers.base.ColumnarSchedulerMixin`.
    Static columns (submit times, deadlines, task counts) are built once
    per run; the dispatch/completion counters are updated in place by
    the kernel as events are processed, so a policy's
    ``columnar_key_columns`` sees exactly the state the object engine's
    ``choose_next_*`` would read from the :class:`~repro.core.job.Job`
    objects — same values, as contiguous float64 vectors.

    Scalars (``now``, ``queue_depth``, ``free_map``, ``free_reduce``)
    are refreshed by the kernel before every key computation and mirror
    :class:`repro.policy.compiler._EvalContext`: ``now`` is the time of
    the last job arrival/departure hook.  The heavier profile-derived
    columns (``total_work``, phase averages) are built lazily on first
    access, so policies that never read them pay nothing.
    """

    __slots__ = (
        "jobs", "cluster", "job_ids", "submit", "deadline", "has_deadline",
        "rel_deadline", "nmaps", "nreds", "total_tasks", "gate",
        "active", "mdisp", "mcomp", "rdisp", "rcomp", "capm", "capr",
        "now", "queue_depth", "free_map", "free_reduce",
        "_total_work", "_avg_map", "_avg_reduce",
    )

    def __init__(self, jobs: Sequence["Job"], cluster: "ClusterConfig") -> None:
        n = len(jobs)
        self.jobs = jobs
        self.cluster = cluster
        self.job_ids = np.arange(n, dtype=np.int64)
        self.submit = np.array([j.submit_time for j in jobs], dtype=np.float64)
        self.deadline = np.array(
            [math.inf if j.deadline is None else j.deadline for j in jobs],
            dtype=np.float64,
        )
        self.has_deadline = np.array(
            [0.0 if j.deadline is None else 1.0 for j in jobs], dtype=np.float64
        )
        # Same per-job arithmetic as the scalar accessor: deadline -
        # submit_time, +inf for deadline-less jobs.
        self.rel_deadline = np.array(
            [
                math.inf if j.deadline is None else j.deadline - j.submit_time
                for j in jobs
            ],
            dtype=np.float64,
        )
        self.nmaps = np.array([float(j.num_maps) for j in jobs], dtype=np.float64)
        self.nreds = np.array([float(j.num_reduces) for j in jobs], dtype=np.float64)
        self.total_tasks = self.nmaps + self.nreds
        self.gate = np.zeros(n, dtype=np.float64)
        # In the job queue right now: arrived and not yet departed.
        self.active = np.zeros(n, dtype=np.bool_)
        self.mdisp = np.zeros(n, dtype=np.float64)
        self.mcomp = np.zeros(n, dtype=np.float64)
        self.rdisp = np.zeros(n, dtype=np.float64)
        self.rcomp = np.zeros(n, dtype=np.float64)
        # Wanted-slot caps; +inf encodes "uncapped".
        self.capm = np.full(n, math.inf, dtype=np.float64)
        self.capr = np.full(n, math.inf, dtype=np.float64)
        self.now = 0.0
        self.queue_depth = 0.0
        self.free_map = 0.0
        self.free_reduce = 0.0
        self._total_work: Optional[np.ndarray] = None
        self._avg_map: Optional[np.ndarray] = None
        self._avg_reduce: Optional[np.ndarray] = None

    @property
    def total_work(self) -> np.ndarray:
        """Sum of all task durations per job (lazy; profile-derived)."""
        if self._total_work is None:
            self._total_work = np.array(
                [j.profile.total_task_seconds() for j in self.jobs],
                dtype=np.float64,
            )
        return self._total_work

    @property
    def avg_map(self) -> np.ndarray:
        """Mean map duration per job (lazy; profile-derived)."""
        if self._avg_map is None:
            self._avg_map = np.array(
                [j.profile.map_stats.avg for j in self.jobs], dtype=np.float64
            )
        return self._avg_map

    @property
    def avg_reduce(self) -> np.ndarray:
        """Mean reduce duration per job (lazy; profile-derived)."""
        if self._avg_reduce is None:
            self._avg_reduce = np.array(
                [j.profile.reduce_stats.avg for j in self.jobs], dtype=np.float64
            )
        return self._avg_reduce


def columns_from_trace(trace: Sequence[TraceJob]) -> TraceColumns:
    """Module-level alias of :meth:`TraceColumns.from_trace`."""
    return TraceColumns.from_trace(trace)


def trace_from_columns(columns: TraceColumns) -> list[TraceJob]:
    """Module-level alias of :meth:`TraceColumns.jobs`."""
    return columns.jobs()


__all__ += ["columns_from_trace", "trace_from_columns"]
