"""SimMR Simulator Engine: a discrete-event emulation of the Hadoop job master.

The engine (paper Section III-B) replays a trace of
:class:`~repro.core.job.TraceJob` entries against a pluggable scheduling
policy.  It simulates at *task* granularity — which job's map/reduce task
occupies which slot, and when — and deliberately does not model
TaskTrackers, disks or the network; the per-task durations recorded in the
job profiles already embed those latencies.  That is the design decision
that lets SimMR "process over one million events per second" while the
heartbeat-level Mumak baseline (:mod:`repro.mumak`) is two orders of
magnitude slower.

Shuffle modeling
----------------
The engine reproduces the paper's key accuracy mechanism.  A reduce task
consists of a (combined) shuffle/sort phase followed by the reduce phase.
Reduce tasks of the *first wave* start while the map stage is still
running, so their shuffle overlaps the map stage and cannot finish before
the last map does.  The engine therefore schedules such a reduce task as a
"filler task of infinite duration and update[s] its duration to the first
shuffle duration when all the map tasks are complete" — i.e. on the
``ALL_MAPS_FINISHED`` event each first-wave reduce is assigned

    ``finish = map_stage_end + first_shuffle[i] + reduce[i]``

where ``first_shuffle`` holds the profile's *non-overlapping* first-wave
shuffle measurements.  Reduce tasks dispatched after the map stage has
completed use the *typical* shuffle durations instead.  Omitting this
mechanism is exactly what makes Mumak underestimate completion times
(paper Sections I and IV-A).

Performance notes
-----------------
The hot loop works on raw ``(time, type, seq, job_id, task_index)``
tuples in a binary heap — the same deterministic ordering as the public
:class:`~repro.core.events.EventQueue`, without per-event object
allocation.  Slot allocation has two paths:

* **static-priority fast path** — policies that declare
  ``static_priority`` (FIFO, MaxEDF, MinEDF) are served from lazy
  per-kind job heaps keyed by ``Scheduler.priority_key``: O(log n) per
  dispatch.
* **dynamic path** — policies whose choice depends on mutable state
  (Fair, Capacity) are consulted through the paper's narrow
  ``choose_next_map_task`` / ``choose_next_reduce_task`` interface, with
  the eligible-job list rebuilt per dispatch.

Tests assert the two paths produce identical schedules for the static
policies.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from operator import itemgetter
from typing import TYPE_CHECKING, Any, Optional, Sequence

from .cluster import ClusterConfig
from .events import EventType
from .job import Job, JobState, TaskRecord, TraceJob
from .results import JobResult, SimulationResult
from .shuffle import ShuffleContext, ShuffleModel
from .walltime import elapsed_since, perf_seconds
from ..schedulers.base import Scheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sanitize.sanitizer import Sanitizer

__all__ = ["SimulatorEngine", "simulate"]

# Event-type priorities, inlined as ints for the hot loop.
_MAP_DEP = int(EventType.MAP_TASK_DEPARTURE)
_ALL_MAPS = int(EventType.ALL_MAPS_FINISHED)
_RED_DEP = int(EventType.REDUCE_TASK_DEPARTURE)
_JOB_DEP = int(EventType.JOB_DEPARTURE)
_JOB_ARR = int(EventType.JOB_ARRIVAL)
_MAP_ARR = int(EventType.MAP_TASK_ARRIVAL)
_RED_ARR = int(EventType.REDUCE_TASK_ARRIVAL)


class SimulatorEngine:
    """Replays a MapReduce workload trace under a scheduling policy.

    Parameters
    ----------
    cluster:
        Aggregate map/reduce slot capacity.
    scheduler:
        The pluggable policy.
    min_map_percent_completed:
        Fraction of a job's map tasks that must have completed before its
        reduce tasks become eligible for scheduling (the paper's
        ``minMapPercentCompleted`` user parameter; default 0.05 mirrors
        Hadoop's ``mapred.reduce.slowstart.completed.maps``).
    record_tasks:
        When True (default) every simulated task attempt is recorded in
        the result, enabling the progress-plot and duration-CDF
        experiments.  Disable for maximum event throughput on huge traces.
    sanitize:
        Three-state switch for the runtime sanitizer (``simsan``):
        ``True`` forces it on, ``False`` forces it off, ``None`` (the
        default) defers to the ``SIMMR_SANITIZE`` environment variable.
        The off path is the exact pre-sanitizer hot loop — zero per-event
        overhead (checked by ``benchmarks/bench_sanitizer_overhead.py``).
    sanitizer:
        An explicit :class:`~repro.sanitize.sanitizer.Sanitizer` instance
        (e.g. one collecting violations instead of raising, or carrying
        an event digest for divergence detection).  Implies ``sanitize``.
    """

    def __init__(
        self,
        cluster: ClusterConfig,
        scheduler: Scheduler,
        *,
        min_map_percent_completed: float = 0.05,
        record_tasks: bool = True,
        record_events: bool = False,
        preemption: bool = False,
        shuffle_model: "ShuffleModel | None" = None,
        sanitize: Optional[bool] = None,
        sanitizer: "Sanitizer | None" = None,
    ) -> None:
        if not 0.0 <= min_map_percent_completed <= 1.0:
            raise ValueError(
                "min_map_percent_completed must be in [0, 1], got "
                f"{min_map_percent_completed}"
            )
        self.cluster = cluster
        self.scheduler = scheduler
        self.min_map_percent_completed = min_map_percent_completed
        self.record_tasks = record_tasks
        #: Keep the processed event stream on the result (debugging /
        #: protocol tests; costs one Event object per event).
        self.record_events = record_events
        self.preemption = preemption
        #: Optional pluggable shuffle model (paper future work: network-
        #: simulator integration).  None = replay the profile durations
        #: on the zero-overhead default path.
        self.shuffle_model = shuffle_model
        if sanitizer is None:
            if sanitize is None:
                sanitize = os.environ.get("SIMMR_SANITIZE", "") not in (
                    "", "0", "false", "False",
                )
            if sanitize:
                from ..sanitize.sanitizer import Sanitizer as _Sanitizer

                sanitizer = _Sanitizer()
        elif sanitize is False:
            sanitizer = None
        #: The active runtime sanitizer, or None for the unchecked path.
        self.sanitizer = sanitizer
        self._reset()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def run(self, trace: Sequence[TraceJob]) -> SimulationResult:
        """Simulate the full trace and return the run's results."""
        # These readings feed only the result's wall_clock_seconds /
        # events-per-second metric (paper Section IV-B); walltime is the
        # sanctioned site, no simulated timestamp derives from it.
        wall_start = perf_seconds()
        self._reset()
        push = self._push_event
        self._validate_dependencies(trace)
        for i, trace_job in enumerate(trace):
            self._jobs.append(Job(i, trace_job))
            if trace_job.depends_on is None:
                push(trace_job.submit_time, _JOB_ARR, i, -1)
            else:
                self._dependents.setdefault(trace_job.depends_on, []).append(i)

        heap = self._heap
        handlers = {
            _MAP_DEP: self._on_map_departure,
            _ALL_MAPS: self._on_all_maps_finished,
            _RED_DEP: self._on_reduce_departure,
            _JOB_DEP: self._on_job_departure,
            _JOB_ARR: self._on_job_arrival,
            _MAP_ARR: self._on_map_arrival,
            _RED_ARR: self._on_reduce_arrival,
        }
        jobs = self._jobs
        processed = 0
        event_log: list = []
        sanitizer = self.sanitizer
        if sanitizer is not None:
            from .events import Event

            sanitizer.begin_run(self, trace)
            record_events = self.record_events
            while heap:
                now, etype, seq, job_id, task_index = heappop(heap)
                processed += 1
                sanitizer.observe_pop(now, etype, seq, job_id, task_index)
                self._now = now
                if record_events:
                    event_log.append(
                        Event(
                            now,
                            EventType(etype),
                            job_id,
                            task_index if task_index >= 0 else None,
                        )
                    )
                handlers[etype](jobs[job_id], task_index, seq)
                sanitizer.observe_handled(self, jobs[job_id], etype)
        elif self.record_events:
            from .events import Event

            while heap:
                now, etype, seq, job_id, task_index = heappop(heap)
                processed += 1
                self._now = now
                event_log.append(
                    Event(
                        now,
                        EventType(etype),
                        job_id,
                        task_index if task_index >= 0 else None,
                    )
                )
                handlers[etype](jobs[job_id], task_index, seq)
        else:
            while heap:
                now, etype, seq, job_id, task_index = heappop(heap)
                processed += 1
                self._now = now
                handlers[etype](jobs[job_id], task_index, seq)
        self._events_processed = processed

        stuck = [j for j in jobs if j.state is not JobState.COMPLETED]
        if stuck:
            names = ", ".join(f"{j.job_id}:{j.name}" for j in stuck[:5])
            more = "..." if len(stuck) > 5 else ""
            raise RuntimeError(
                f"simulation stalled with {len(stuck)} unfinished job(s) "
                f"({names}{more}): the cluster cannot run their tasks (e.g. "
                "reduce tasks with zero reduce slots) or the policy never "
                "schedules them"
            )

        if sanitizer is not None:
            sanitizer.end_run(self)

        wall = elapsed_since(wall_start)
        makespan = max(
            (j.completion_time for j in jobs if j.completion_time is not None),
            default=0.0,
        )
        return SimulationResult(
            scheduler_name=self.scheduler.name,
            jobs=[JobResult.from_job(j) for j in jobs],
            task_records=self._records,
            makespan=makespan,
            events_processed=processed,
            wall_clock_seconds=wall,
            engine_path="object",
            event_log=event_log,
        )

    # ------------------------------------------------------------------ #
    # internal state
    # ------------------------------------------------------------------ #

    def _reset(self) -> None:
        self._heap: list[tuple] = []
        self._seq = 0
        self._jobs: list[Job] = []
        self._job_q: list[Job] = []  # the paper's jobQ: submitted, not departed
        self._free_map_slots = self.cluster.map_slots
        self._free_reduce_slots = self.cluster.reduce_slots
        self._now = 0.0
        self._events_processed = 0
        self._records: list[TaskRecord] = []
        # Per-job list of reduce task indices running as infinite fillers.
        self._fillers: dict[int, list[int]] = {}
        # Workflow edges: parent job id -> ids submitted on its completion.
        self._dependents: dict[int, list[int]] = {}
        # Preemption bookkeeping: (job_id, kind) -> {index: (departure
        # event seq or None for fillers, start time, record or None)}.
        # Only maintained when preemption is enabled, keeping the default
        # hot path allocation-free.
        self._preempt = self.preemption
        self._running_tasks: dict[tuple[int, str], dict[int, tuple]] = {}
        # Fast-path heaps of (priority_key, job_id) for eligible jobs.
        self._fast = self.scheduler.static_priority
        self._map_heap: list[tuple] = []
        self._reduce_heap: list[tuple] = []

    @staticmethod
    def _validate_dependencies(trace: Sequence[TraceJob]) -> None:
        """Reject out-of-range or cyclic ``depends_on`` edges up front."""
        n = len(trace)
        for i, tj in enumerate(trace):
            dep = tj.depends_on
            if dep is None:
                continue
            if dep >= n:
                raise ValueError(
                    f"job {i} depends on index {dep}, but the trace has {n} jobs"
                )
            if dep == i:
                raise ValueError(f"job {i} depends on itself")
        # Cycle check: follow each chain; a cycle revisits a node.
        for start in range(n):
            seen = set()
            node = start
            while trace[node].depends_on is not None:
                node = trace[node].depends_on
                if node in seen or node == start:
                    raise ValueError(
                        f"dependency cycle involving job {start} in the trace"
                    )
                seen.add(node)

    def _push_event(self, time: float, etype: int, job_id: int, task_index: int) -> int:
        seq = self._seq
        heappush(self._heap, (time, etype, seq, job_id, task_index))
        self._seq += 1
        return seq

    # ------------------------------------------------------------------ #
    # eligibility
    # ------------------------------------------------------------------ #

    def _map_eligible(self, job: Job) -> bool:
        if job.state is not JobState.RUNNING or job.maps_dispatched >= job.num_maps:
            return False
        cap = job.wanted_map_slots
        return cap is None or job.maps_dispatched - job.maps_completed < cap

    def _reduce_eligible(self, job: Job) -> bool:
        if job.state is not JobState.RUNNING or job.reduces_dispatched >= job.num_reduces:
            return False
        if job.maps_completed < job.reduce_gate:
            return False
        cap = job.wanted_reduce_slots
        return cap is None or job.running_reduces < cap

    def _offer_map(self, job: Job) -> None:
        """(Re-)insert a job into the map fast-path heap if eligible."""
        if self._fast and not job.in_map_heap and self._map_eligible(job):
            job.in_map_heap = True
            heappush(self._map_heap, (job.sched_key, job.job_id))

    def _offer_reduce(self, job: Job) -> None:
        """(Re-)insert a job into the reduce fast-path heap if eligible."""
        if self._fast and not job.in_reduce_heap and self._reduce_eligible(job):
            job.in_reduce_heap = True
            heappush(self._reduce_heap, (job.sched_key, job.job_id))

    # ------------------------------------------------------------------ #
    # job lifecycle
    # ------------------------------------------------------------------ #

    def _on_job_arrival(self, job: Job, _ti: int, _seq: int) -> None:
        job.state = JobState.RUNNING
        # Precompute the reduce slow-start gate as a completed-maps count.
        job.reduce_gate = self.min_map_percent_completed * job.num_maps
        if job.num_maps == 0:
            # Degenerate map-less job: the map stage is trivially complete
            # at submission, so reduces behave like a first wave whose
            # shuffle starts immediately.
            job.map_stage_end = self._now
        self._job_q.append(job)
        self.scheduler.on_job_arrival(job, self._now, self.cluster)
        if self._fast:
            job.sched_key = self.scheduler.priority_key(job)
            self._offer_map(job)
            self._offer_reduce(job)
        if self._preempt:
            others = [j for j in self._job_q if j is not job]
            for victim, kind, count in self.scheduler.preemption_requests(
                job, others, self.cluster, self._free_map_slots, self._free_reduce_slots
            ):
                if victim.state is JobState.RUNNING and count > 0:
                    self._kill_tasks(victim, kind, count)
        self._allocate()

    def _on_job_departure(self, job: Job, _ti: int, _seq: int) -> None:
        # All bookkeeping happened synchronously in _maybe_depart; the
        # event exists so departures appear in the event stream (one of
        # the paper's seven event types).
        pass

    def _maybe_depart(self, job: Job) -> None:
        if job.is_complete and job.state is not JobState.COMPLETED:
            job.state = JobState.COMPLETED
            job.completion_time = self._now
            self._job_q.remove(job)
            self.scheduler.on_job_departure(job, self._now)
            self._push_event(self._now, _JOB_DEP, job.job_id, -1)
            for child_id in self._dependents.pop(job.job_id, []):
                child = self._jobs[child_id]
                self._push_event(
                    max(child.submit_time, self._now), _JOB_ARR, child_id, -1
                )

    # ------------------------------------------------------------------ #
    # map tasks
    # ------------------------------------------------------------------ #

    def _on_map_arrival(self, job: Job, index: int, _seq: int) -> None:
        duration = job.profile.map_duration(index)
        record = None
        if self.record_tasks:
            record = TaskRecord(
                kind="map", job_id=job.job_id, index=index, start=self._now,
                end=self._now + duration,
            )
            job.map_records.append(record)
            self._records.append(record)
        dep_seq = self._push_event(self._now + duration, _MAP_DEP, job.job_id, index)
        if self._preempt:
            self._running_tasks.setdefault((job.job_id, "map"), {})[index] = (
                dep_seq, self._now, record,
            )

    def _on_map_departure(self, job: Job, index: int, seq: int) -> None:
        if self._preempt:
            running = self._running_tasks.get((job.job_id, "map"))
            entry = running.get(index) if running else None
            if entry is None or entry[0] != seq:
                return  # stale departure of a preemption-killed attempt
            del running[index]
        job.maps_completed += 1
        self._free_map_slots += 1
        if job.map_stage_complete and job.map_stage_end is None:
            job.map_stage_end = self._now
            self._push_event(self._now, _ALL_MAPS, job.job_id, -1)
            if job.num_reduces == 0:
                self._maybe_depart(job)
        else:
            # Completing a map may lift the job back under its slot cap or
            # across the reduce slow-start threshold.
            self._offer_map(job)
        self._offer_reduce(job)
        self._allocate()

    def _on_all_maps_finished(self, job: Job, _ti: int, _seq: int) -> None:
        """Rewrite the job's infinite filler reduces to real durations.

        Each first-wave reduce task ``i`` now finishes at
        ``map_stage_end + first_shuffle[i] + reduce[i]``; its shuffle/
        reduce phase boundary is recorded for the progress experiments.
        """
        fillers = self._fillers.pop(job.job_id, None)
        if not fillers:
            return
        profile = job.profile
        running = self._running_tasks.get((job.job_id, "reduce")) if self._preempt else None
        for index in fillers:
            if self.shuffle_model is not None:
                shuffle_end = self._now + self._model_shuffle(job, index, True)
            else:
                shuffle_end = self._now + profile.first_shuffle_duration(index)
            end = shuffle_end + profile.reduce_duration(index)
            if self._preempt:
                entry = running.get(index) if running else None
                record = entry[2] if entry else None
            else:
                # Without preemption, indices are assigned sequentially,
                # so the index doubles as the record position.
                record = job.reduce_records[index] if self.record_tasks else None
            if record is not None:
                record.shuffle_end = shuffle_end
                record.end = end
            dep_seq = self._push_event(end, _RED_DEP, job.job_id, index)
            if self._preempt and entry is not None:
                running[index] = (dep_seq, entry[1], entry[2])

    def _model_shuffle(self, job: Job, index: int, first_wave: bool) -> float:
        """Price one shuffle through the pluggable model."""
        concurrent = self.cluster.reduce_slots - self._free_reduce_slots
        return self.shuffle_model.shuffle_duration(
            ShuffleContext(
                job=job,
                index=index,
                first_wave=first_wave,
                concurrent_shuffles=max(concurrent, 1),
            )
        )

    # ------------------------------------------------------------------ #
    # reduce tasks
    # ------------------------------------------------------------------ #

    def _on_reduce_arrival(self, job: Job, index: int, _seq: int) -> None:
        profile = job.profile
        if not job.map_stage_complete:
            # First wave, overlapping the map stage: an infinite filler
            # occupying the slot until ALL_MAPS_FINISHED rewrites it.
            record = None
            if self.record_tasks:
                record = TaskRecord(
                    kind="reduce", job_id=job.job_id, index=index,
                    start=self._now, first_wave=True,
                )
                job.reduce_records.append(record)
                self._records.append(record)
            self._fillers.setdefault(job.job_id, []).append(index)
            if self._preempt:
                self._running_tasks.setdefault((job.job_id, "reduce"), {})[index] = (
                    None, self._now, record,
                )
            return

        first_wave = job.map_stage_end is not None and self._now <= job.map_stage_end
        if self.shuffle_model is not None:
            shuffle = self._model_shuffle(job, index, first_wave)
        elif first_wave:
            shuffle = profile.first_shuffle_duration(index)
        else:
            shuffle = profile.typical_shuffle_duration(index)
        shuffle_end = self._now + shuffle
        end = shuffle_end + profile.reduce_duration(index)
        record = None
        if self.record_tasks:
            record = TaskRecord(
                kind="reduce", job_id=job.job_id, index=index, start=self._now,
                end=end, shuffle_end=shuffle_end, first_wave=first_wave,
            )
            job.reduce_records.append(record)
            self._records.append(record)
        dep_seq = self._push_event(end, _RED_DEP, job.job_id, index)
        if self._preempt:
            self._running_tasks.setdefault((job.job_id, "reduce"), {})[index] = (
                dep_seq, self._now, record,
            )

    def _on_reduce_departure(self, job: Job, index: int, seq: int) -> None:
        if self._preempt:
            running = self._running_tasks.get((job.job_id, "reduce"))
            entry = running.get(index) if running else None
            if entry is None or entry[0] != seq:
                return  # stale departure of a preemption-killed attempt
            del running[index]
        job.reduces_completed += 1
        self._free_reduce_slots += 1
        self._maybe_depart(job)
        self._offer_reduce(job)
        self._allocate()

    # ------------------------------------------------------------------ #
    # slot allocation (the job-master decision loop)
    # ------------------------------------------------------------------ #

    def _dispatch_map(self, job: Job) -> None:
        self._free_map_slots -= 1
        if job.requeued_maps:
            index = job.requeued_maps.pop()
        else:
            index = job.next_map_index
            job.next_map_index += 1
        job.maps_dispatched += 1
        if job.start_time is None:
            job.start_time = self._now
        self._push_event(self._now, _MAP_ARR, job.job_id, index)

    def _dispatch_reduce(self, job: Job) -> None:
        self._free_reduce_slots -= 1
        if job.requeued_reduces:
            index = job.requeued_reduces.pop()
        else:
            index = job.next_reduce_index
            job.next_reduce_index += 1
        job.reduces_dispatched += 1
        if job.start_time is None:
            job.start_time = self._now
        self._push_event(self._now, _RED_ARR, job.job_id, index)

    def _kill_tasks(self, victim: Job, kind: str, count: int) -> int:
        """Preemption: kill up to ``count`` running tasks of ``victim``.

        Hadoop preempts by killing — the attempt's progress is lost and
        the task index returns to the pending pool to rerun from scratch.
        The youngest attempts are killed first (least work discarded).
        Returns the number of tasks actually killed.
        """
        running = self._running_tasks.get((victim.job_id, kind))
        if not running:
            return 0
        # Decorate-sort on the start time with a C-level key: stable
        # sort + reverse=True keeps equal-start attempts in dict
        # (insertion) order — exactly the order the old
        # ``key=lambda kv: -start`` ascending sort produced, so kill
        # order (and thus the event digest) is unchanged, minus the
        # per-item lambda call and tuple indexing.
        youngest_first = [
            (start, index, dep_seq, record)
            for index, (dep_seq, start, record) in running.items()
        ]
        youngest_first.sort(key=itemgetter(0), reverse=True)
        killed = 0
        for _start, index, dep_seq, record in youngest_first[:count]:
            del running[index]
            if record is not None:
                record.end = self._now
                record.killed = True
            if kind == "map":
                victim.maps_dispatched -= 1
                victim.requeued_maps.append(index)
                self._free_map_slots += 1
            else:
                victim.reduces_dispatched -= 1
                victim.requeued_reduces.append(index)
                self._free_reduce_slots += 1
                if dep_seq is None:
                    # A filler awaiting the map stage: cancel its rewrite.
                    filler_list = self._fillers.get(victim.job_id)
                    if filler_list and index in filler_list:
                        filler_list.remove(index)
            killed += 1
        if killed:
            # The victim regained headroom under its caps.
            self._offer_map(victim)
            self._offer_reduce(victim)
        return killed

    def _allocate(self) -> None:
        """Assign free slots to tasks as dictated by the scheduling policy."""
        if self._fast:
            self._allocate_static()
        else:
            self._allocate_dynamic()

    def _allocate_static(self) -> None:
        jobs = self._jobs
        heap = self._map_heap
        while self._free_map_slots > 0 and heap:
            job = jobs[heap[0][1]]
            if not self._map_eligible(job):
                heappop(heap)
                job.in_map_heap = False
                continue
            self._dispatch_map(job)
        heap = self._reduce_heap
        while self._free_reduce_slots > 0 and heap:
            job = jobs[heap[0][1]]
            if not self._reduce_eligible(job):
                heappop(heap)
                job.in_reduce_heap = False
                continue
            self._dispatch_reduce(job)

    def _allocate_dynamic(self) -> None:
        """The paper's narrow interface: ask the policy per free slot."""
        scheduler = self.scheduler
        while self._free_map_slots > 0:
            candidates = [j for j in self._job_q if self._map_eligible(j)]
            if not candidates:
                break
            job = scheduler.choose_next_map_task(candidates)
            if job is None:
                break
            self._dispatch_map(job)
        while self._free_reduce_slots > 0:
            candidates = [j for j in self._job_q if self._reduce_eligible(j)]
            if not candidates:
                break
            job = scheduler.choose_next_reduce_task(candidates)
            if job is None:
                break
            self._dispatch_reduce(job)


def simulate(
    trace: Sequence[TraceJob],
    scheduler: Scheduler,
    cluster: Optional[ClusterConfig] = None,
    *,
    engine: str = "columnar",
    **engine_kwargs: Any,
) -> SimulationResult:
    """One-shot convenience wrapper: build an engine and run ``trace``.

    ``engine`` selects the execution path: ``"columnar"`` (default)
    runs the vectorized kernel where it applies and transparently falls
    back to the object engine elsewhere; ``"object"`` forces the
    classic object-per-event loop (see ``docs/engine-internals.md``).
    Both paths produce bit-identical event digests.
    """
    if engine == "columnar":
        from .kernel import ColumnarEngine

        eng: Any = ColumnarEngine(cluster or ClusterConfig(), scheduler, **engine_kwargs)
    elif engine == "object":
        eng = SimulatorEngine(cluster or ClusterConfig(), scheduler, **engine_kwargs)
    else:
        raise ValueError(f"engine must be 'object' or 'columnar', got {engine!r}")
    return eng.run(trace)
