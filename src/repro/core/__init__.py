"""SimMR core: the discrete-event simulator engine and its data model."""

from .cluster import ClusterConfig
from .columns import TraceColumns, columns_from_trace, trace_from_columns
from .engine import SimulatorEngine, simulate
from .kernel import ColumnarEngine
from .events import Event, EventQueue, EventType
from .job import Job, JobProfile, JobState, PhaseStats, TaskRecord, TraceJob
from .metrics import (
    UtilizationReport,
    concurrency_series,
    queueing_delays,
    slot_seconds,
    stage_breakdown,
    utilization,
)
from .results import JobResult, SimulationResult
from .shuffle import NetworkShuffleModel, ShuffleContext, ShuffleModel, TraceShuffleModel
from .results_io import jobs_to_csv, load_result, result_from_dict, result_to_dict, save_result

__all__ = [
    "ClusterConfig",
    "SimulatorEngine",
    "ColumnarEngine",
    "TraceColumns",
    "columns_from_trace",
    "simulate",
    "trace_from_columns",
    "Event",
    "EventQueue",
    "EventType",
    "Job",
    "JobProfile",
    "JobState",
    "PhaseStats",
    "TaskRecord",
    "TraceJob",
    "JobResult",
    "SimulationResult",
    "jobs_to_csv",
    "load_result",
    "result_from_dict",
    "result_to_dict",
    "save_result",
    "NetworkShuffleModel",
    "ShuffleContext",
    "ShuffleModel",
    "TraceShuffleModel",
    "UtilizationReport",
    "concurrency_series",
    "queueing_delays",
    "slot_seconds",
    "stage_breakdown",
    "utilization",
]
