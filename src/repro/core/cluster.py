"""Cluster configuration for the simulator engine.

The SimMR engine simulates the Hadoop *job master*: it only needs to know
how many map slots and reduce slots the cluster offers in aggregate (paper
Section III: "It is a non-goal to simulate details of the TaskTracker
nodes").  Node-level structure lives in :mod:`repro.hadoop`, the
fine-grained substrate used for validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["ClusterConfig"]


@dataclass(frozen=True, slots=True)
class ClusterConfig:
    """Aggregate slot capacity of the simulated cluster.

    The paper's testbed is 64 worker nodes with 1 map and 1 reduce slot
    each (Section IV-B), i.e. ``ClusterConfig(64, 64)`` — the default.
    """

    map_slots: int = 64
    reduce_slots: int = 64

    def __post_init__(self) -> None:
        if self.map_slots < 1:
            raise ValueError(f"map_slots must be >= 1, got {self.map_slots}")
        if self.reduce_slots < 0:
            raise ValueError(f"reduce_slots must be >= 0, got {self.reduce_slots}")

    @classmethod
    def per_node(
        cls, nodes: int, map_slots_per_node: int = 1, reduce_slots_per_node: int = 1
    ) -> "ClusterConfig":
        """Build an aggregate config from a node count and per-node slots."""
        if nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {nodes}")
        return cls(nodes * map_slots_per_node, nodes * reduce_slots_per_node)

    @property
    def total_slots(self) -> int:
        return self.map_slots + self.reduce_slots

    def slot_accounting_error(
        self,
        free_map_slots: int,
        free_reduce_slots: int,
        running_maps: int,
        running_reduces: int,
    ) -> Optional[str]:
        """Describe a violated slot-conservation invariant, or ``None``.

        At every point of a simulation ``free + running == capacity``
        must hold per slot kind, with ``0 <= free <= capacity``.  The
        runtime sanitizer (``repro.sanitize``) evaluates this after each
        handled event; a non-None return pinpoints which side leaked.
        """
        for kind, free, running, cap in (
            ("map", free_map_slots, running_maps, self.map_slots),
            ("reduce", free_reduce_slots, running_reduces, self.reduce_slots),
        ):
            if not 0 <= free <= cap:
                return f"free {kind} slots {free} outside [0, {cap}]"
            if free + running != cap:
                return (
                    f"{kind} slot conservation broken: free {free} + "
                    f"running {running} != capacity {cap}"
                )
        return None
