"""Derived metrics over simulation results.

The paper's headline metric is the *relative deadline exceeded* utility
(already on :class:`~repro.core.results.SimulationResult`); cluster
operators additionally reason about slot utilization, queueing delay and
stage breakdowns when sizing clusters — the "what-if questions" SimMR is
built to answer (Section VII).  This module computes those from the
task-level records of a run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .cluster import ClusterConfig
from .results import SimulationResult

__all__ = [
    "UtilizationReport",
    "utilization",
    "slot_seconds",
    "queueing_delays",
    "stage_breakdown",
    "concurrency_series",
]


def slot_seconds(result: SimulationResult, kind: Optional[str] = None) -> float:
    """Total busy slot-seconds of the run (optionally one task kind).

    For reduce tasks this counts the full slot occupation — shuffle
    (including filler time waiting for the map stage) plus reduce phase —
    because the slot is held for all of it.
    """
    return sum(
        r.end - r.start
        for r in result.task_records
        if kind is None or r.kind == kind
    )


@dataclass(frozen=True, slots=True)
class UtilizationReport:
    """Average busy fraction of the cluster's slots over the run."""

    map_utilization: float
    reduce_utilization: float
    makespan: float
    map_slot_seconds: float
    reduce_slot_seconds: float
    map_slots: int
    reduce_slots: int

    @property
    def overall(self) -> float:
        """Busy fraction across all slots of both kinds."""
        capacity = (self.map_slots + self.reduce_slots) * self.makespan
        if capacity <= 0:
            return 0.0
        return (self.map_slot_seconds + self.reduce_slot_seconds) / capacity


def utilization(result: SimulationResult, cluster: ClusterConfig) -> UtilizationReport:
    """Average map/reduce slot utilization over the run's makespan."""
    if not result.task_records:
        raise ValueError(
            "utilization needs task records; run the engine with record_tasks=True"
        )
    makespan = result.makespan
    if makespan <= 0:
        return UtilizationReport(0.0, 0.0, 0.0, 0.0, 0.0, cluster.map_slots, cluster.reduce_slots)
    map_busy = slot_seconds(result, "map")
    reduce_busy = slot_seconds(result, "reduce")
    return UtilizationReport(
        map_utilization=map_busy / (cluster.map_slots * makespan),
        reduce_utilization=(
            reduce_busy / (cluster.reduce_slots * makespan) if cluster.reduce_slots else 0.0
        ),
        makespan=makespan,
        map_slot_seconds=map_busy,
        reduce_slot_seconds=reduce_busy,
        map_slots=cluster.map_slots,
        reduce_slots=cluster.reduce_slots,
    )


def queueing_delays(result: SimulationResult) -> dict[int, float]:
    """Per-job delay between submission and first task dispatch.

    Under saturation this is the dominant component of the deadline
    misses in Figures 7-8.
    """
    return {
        j.job_id: j.start_time - j.submit_time
        for j in result.jobs
        if j.start_time is not None
    }


def stage_breakdown(result: SimulationResult, job_id: int) -> dict[str, float]:
    """One job's time decomposed into map / shuffle / reduce task-seconds.

    Filler waiting time (shuffle slots held while the map stage runs) is
    part of ``shuffle`` — that slot time is really spent, which is why
    MinEDF's minimal allocations matter.
    """
    maps = result.task_records_for(job_id, "map")
    reduces = result.task_records_for(job_id, "reduce")
    if not maps and not reduces:
        raise KeyError(f"no task records for job {job_id}")
    shuffle = sum(r.shuffle_end - r.start for r in reduces if r.shuffle_end is not None)
    reduce_phase = sum(r.end - r.shuffle_end for r in reduces if r.shuffle_end is not None)
    return {
        "map": sum(r.end - r.start for r in maps),
        "shuffle": shuffle,
        "reduce": reduce_phase,
    }


def concurrency_series(
    result: SimulationResult,
    kind: str,
    points: int = 100,
    job_id: Optional[int] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """``(times, running)`` — concurrent tasks of ``kind`` over the run.

    The data behind the Figure 1/2-style progress plots; restrict to one
    job with ``job_id``.
    """
    if kind not in ("map", "reduce"):
        raise ValueError(f"kind must be 'map' or 'reduce', got {kind!r}")
    if points < 2:
        raise ValueError("points must be >= 2")
    records = [
        r
        for r in result.task_records
        if r.kind == kind and (job_id is None or r.job_id == job_id)
    ]
    times = np.linspace(0.0, max(result.makespan, 1e-9), points)
    if not records:
        return times, np.zeros(points, dtype=np.int64)
    starts = np.array([r.start for r in records])
    ends = np.array([r.end for r in records])
    running = (
        (times[:, None] >= starts[None, :]) & (times[:, None] < ends[None, :])
    ).sum(axis=1)
    return times, running
