"""Pluggable shuffle-phase models.

The paper's future work (Section VII): "We intend to analyze how SimMR
can ... be integrated with complementary simulation tools, e.g., network
simulators for modeling the shuffle phase."  This module is that
integration seam: the engine can delegate shuffle-duration decisions to
a :class:`ShuffleModel` instead of reading the recorded durations.

* :class:`TraceShuffleModel` — the paper's (and the engine's default)
  behaviour: durations come from the job profile's first/typical shuffle
  arrays.
* :class:`NetworkShuffleModel` — a capacity model of the cluster fabric:
  each reduce pulls its partition over a shared bisection bandwidth,
  fair-shared among the reduces currently shuffling (optionally capped
  per flow by the node NIC).  Durations *grow under contention*, which
  recorded traces cannot express — the behaviour a network simulator
  would add.

Models see the engine's state through a narrow
:class:`ShuffleContext`: the job, task index, whether this is a
first-wave (post-map-stage) shuffle, and how many reduces are shuffling
concurrently.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover
    from .job import Job

__all__ = ["ShuffleContext", "ShuffleModel", "TraceShuffleModel", "NetworkShuffleModel"]


@dataclass(frozen=True, slots=True)
class ShuffleContext:
    """What a shuffle model may observe when pricing one shuffle."""

    job: "Job"
    index: int
    #: True for the first reduce wave: only the non-overlapping part
    #: (after the map stage) is being priced.
    first_wave: bool
    #: Reduce tasks occupying slots at this instant (including this one).
    concurrent_shuffles: int


class ShuffleModel(ABC):
    """Prices the shuffle phase of one reduce task, in seconds."""

    @abstractmethod
    def shuffle_duration(self, ctx: ShuffleContext) -> float:
        """Duration of the (non-overlapping part of the) shuffle."""


class TraceShuffleModel(ShuffleModel):
    """The default: replay the profile's recorded shuffle durations."""

    def shuffle_duration(self, ctx: ShuffleContext) -> float:
        profile = ctx.job.profile
        if ctx.first_wave:
            return profile.first_shuffle_duration(ctx.index)
        return profile.typical_shuffle_duration(ctx.index)


BytesFn = Union[float, Callable[["Job", int], float]]


class NetworkShuffleModel(ShuffleModel):
    """Shuffle durations from data volume over shared fabric bandwidth.

    Parameters
    ----------
    bytes_per_reduce:
        Bytes each reduce pulls — a constant, or ``f(job, index)`` (e.g.
        fed from Rumen's ``reduceShuffleBytes`` counters).
    bisection_bandwidth:
        Aggregate cross-section bandwidth shared by all concurrent
        shuffles, in bytes/second.
    per_flow_cap:
        Optional per-reduce ceiling (the node NIC), bytes/second.
    first_wave_fraction:
        Fraction of a first-wave reduce's pull that remains *after* the
        map stage completes (the engine prices only the non-overlapping
        part; the rest overlapped map execution).  The default 1/3
        mirrors the final-map-wave share of a 3-wave job.
    """

    def __init__(
        self,
        bytes_per_reduce: BytesFn,
        bisection_bandwidth: float,
        *,
        per_flow_cap: float | None = None,
        first_wave_fraction: float = 1.0 / 3.0,
    ) -> None:
        if bisection_bandwidth <= 0:
            raise ValueError(f"bisection_bandwidth must be > 0, got {bisection_bandwidth}")
        if per_flow_cap is not None and per_flow_cap <= 0:
            raise ValueError(f"per_flow_cap must be > 0, got {per_flow_cap}")
        if not 0.0 < first_wave_fraction <= 1.0:
            raise ValueError(
                f"first_wave_fraction must be in (0, 1], got {first_wave_fraction}"
            )
        self.bytes_per_reduce = bytes_per_reduce
        self.bisection_bandwidth = float(bisection_bandwidth)
        self.per_flow_cap = per_flow_cap
        self.first_wave_fraction = first_wave_fraction

    def _bytes(self, job: "Job", index: int) -> float:
        if callable(self.bytes_per_reduce):
            volume = float(self.bytes_per_reduce(job, index))
        else:
            volume = float(self.bytes_per_reduce)
        if volume < 0:
            raise ValueError(f"bytes_per_reduce produced a negative volume {volume}")
        return volume

    def shuffle_duration(self, ctx: ShuffleContext) -> float:
        volume = self._bytes(ctx.job, ctx.index)
        if ctx.first_wave:
            volume *= self.first_wave_fraction
        flows = max(ctx.concurrent_shuffles, 1)
        rate = self.bisection_bandwidth / flows
        if self.per_flow_cap is not None:
            rate = min(rate, self.per_flow_cap)
        return volume / rate
