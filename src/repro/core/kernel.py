"""Columnar simulation kernel: wave-batched replay over contiguous buffers.

:class:`ColumnarEngine` is the high-throughput counterpart of
:class:`~repro.core.engine.SimulatorEngine`.  The object engine walks a
binary heap one event at a time — seven event types, one handler call,
one allocation scan per pop.  The kernel exploits the structure of the
static-priority schedule to avoid materialising most of those events:

* **decision points only.**  With a static-priority policy and no
  preemption, the schedule is fully determined by job arrivals, reduce
  slow-start gate crossings, and slot releases.  The kernel keeps a heap
  for exactly those, and resolves each map/reduce *dispatch* with a
  constant-time chain step (``start = max(slot_release, availability)``)
  instead of a ``MAP_TASK_ARRIVAL``/``MAP_TASK_DEPARTURE`` event pair.
* **columnar wave math.**  Per-job completion data is derived with
  vectorized numpy reductions over the contiguous duration buffers that
  :class:`~repro.core.columns.TraceColumns` hands out as zero-copy
  views: map-wave finish times are ``starts + durations`` on the whole
  vector, the map-stage end is a single ``max`` reduction, the reduce
  slow-start gate is an ``np.lexsort`` order statistic, and first-wave
  reduce completion times are one fused ``(mse + first_shuffle) +
  reduce`` vector expression.
* **bit-identical event digests.**  When an event-digest consumer is
  attached (or ``record_events=True``), the kernel reconstructs the full
  event stream — including the heap's ``(time, type, seq)`` tie-breaking
  — sorts it with one ``np.lexsort``, and streams it through the digest
  in a single packed-buffer update.  The digest is byte-for-byte the one
  the object engine produces, which is what lets the simsan divergence
  toolchain gate this refactor (see ``docs/engine-internals.md``).

The kernel has two modes.  **Pass mode** (the original design above)
covers static-priority, non-preemptive runs.  **Segmented-replay mode**
widens the envelope to preemptive runs and to dynamic schedulers that
opt into the :class:`~repro.schedulers.base.ColumnarSchedulerMixin`
contract (Fair, dynamic policy trees): a single inlined event loop that
reproduces the object engine's heap mechanics bit-for-bit — epochs
between scheduler decision points replayed with precomputed duration
columns, preemption kills sliced out of the running-attempt tables with
the object engine's exact decorate-sort victim order, and dynamic
priorities recomputed vectorially from the
:class:`~repro.core.columns.SchedulerColumns` state arrays instead of
per-dispatch candidate scans.  The event digest is fed in one
packed-buffer update at the end of the run.

What still falls back to the object engine is a short list: a pluggable
shuffle model, workflow dependencies (``depends_on``), a
state-inspecting sanitizer, and dynamic schedulers without the columnar
contract (Capacity, Flex, DynamicPriority).  ``ColumnarEngine`` is
always safe to use; :attr:`ColumnarEngine.last_path` reports which path
a run took and :attr:`ColumnarEngine.last_kernel_mode` which kernel
mode.
"""

from __future__ import annotations

import math
import os
from heapq import heapify, heappop, heappush, heapreplace
from operator import itemgetter
from typing import TYPE_CHECKING, Any, Optional, Sequence

import numpy as np

from .cluster import ClusterConfig
from .columns import SchedulerColumns, TraceColumns
from .engine import SimulatorEngine
from .job import Job, JobState, TaskRecord, TraceJob
from .results import JobResult, SimulationResult
from .walltime import elapsed_since, perf_seconds
from ..schedulers.base import Scheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .shuffle import ShuffleModel

__all__ = ["ColumnarEngine"]

_INF = math.inf

# Event-type priorities (values of repro.core.events.EventType).
_MAP_DEP = 0
_ALL_MAPS = 1
_RED_DEP = 2
_JOB_DEP = 3
_JOB_ARR = 4
_MAP_ARR = 5
_RED_ARR = 6


def _cycled(arr: np.ndarray, n: int) -> np.ndarray:
    """``arr`` extended cyclically to length ``n`` (bit-exact copies).

    Mirrors :meth:`~repro.core.job.JobProfile.map_duration`'s
    deterministic ``index % size`` indexing as one vectorized operation.
    """
    if arr.size == n:
        return arr
    return np.resize(arr, n)


class _KJob:
    """Per-job kernel state: columnar dispatch logs + derived wave data."""

    __slots__ = (
        "job", "idx", "submit", "M", "R", "key", "cap_m", "cap_r",
        # map side
        "mdl", "md_np", "mstarts", "mseqs", "mseq_runs", "mdispatched",
        "mcompleted", "finishes", "mseq_arr", "mse", "fm",
        # reduce slow-start gate
        "gate_count", "gate_time", "gate_etype", "gate_tie",
        # reduce side
        "fsl", "tsl", "rdl", "fel", "fs_np", "ts_np", "rd_np", "fe_np",
        "rstarts", "rseqs", "rseq_runs", "rdispatched", "rcompleted",
        "nfillers", "maxend", "maxend_i",
        # event-loop flags (capped modes)
        "arrived", "gated", "in_mheap", "in_rheap",
        "completed", "completion_time",
    )

    def __init__(self, job: Job, idx: int, gate_count: int) -> None:
        self.job = job
        self.idx = idx
        self.submit = job.submit_time
        self.M = job.num_maps
        self.R = job.num_reduces
        self.key = (job.sched_key, idx)
        self.cap_m = job.wanted_map_slots
        self.cap_r = job.wanted_reduce_slots
        profile = job.profile
        if self.M:
            self.md_np = _cycled(profile.map_durations, self.M)
            self.mdl = self.md_np.tolist()
        else:
            self.md_np = None
            self.mdl = None
        self.mstarts: list[float] = []
        self.mseqs: Optional[list[int]] = None       # capped-mode per-task seqs
        self.mseq_runs: list[tuple[int, int]] = []   # uncapped (first_seq, count)
        self.mdispatched = 0
        self.mcompleted = 0
        self.finishes: Optional[np.ndarray] = None
        self.mseq_arr: Optional[np.ndarray] = None
        # Map-less jobs complete their map stage at submission.
        self.mse = self.submit if self.M == 0 else _INF
        self.fm = -1
        self.gate_count = gate_count
        self.gate_time: Optional[float] = None
        self.gate_etype = _JOB_ARR
        self.gate_tie = idx
        self.fsl = self.tsl = self.rdl = self.fel = None
        self.fs_np = self.ts_np = self.rd_np = self.fe_np = None
        self.rstarts: list[float] = []
        self.rseqs: Optional[list[int]] = None
        self.rseq_runs: list[tuple[int, int]] = []
        self.rdispatched = 0
        self.rcompleted = 0
        self.nfillers = 0
        self.maxend = -_INF
        self.maxend_i = -1
        self.arrived = False
        self.gated = False
        self.in_mheap = False
        self.in_rheap = False
        self.completed = False
        self.completion_time: Optional[float] = None

    def mseq_array(self) -> np.ndarray:
        """Global dispatch sequence numbers of this job's maps, in order."""
        if self.mseq_arr is None:
            if self.mseqs is not None:
                self.mseq_arr = np.asarray(self.mseqs, dtype=np.int64)
            elif self.mseq_runs:
                self.mseq_arr = np.concatenate(
                    [np.arange(s, s + c, dtype=np.int64) for s, c in self.mseq_runs]
                )
            else:
                self.mseq_arr = np.empty(0, dtype=np.int64)
        return self.mseq_arr

    def rseq_array(self) -> np.ndarray:
        """Global dispatch sequence numbers of this job's reduces."""
        if self.rseqs is not None:
            return np.asarray(self.rseqs, dtype=np.int64)
        if self.rseq_runs:
            return np.concatenate(
                [np.arange(s, s + c, dtype=np.int64) for s, c in self.rseq_runs]
            )
        return np.empty(0, dtype=np.int64)


class ColumnarEngine:
    """Drop-in engine running the columnar kernel where it applies.

    Constructor signature matches :class:`~repro.core.engine.
    SimulatorEngine`; :meth:`run` additionally accepts a
    :class:`~repro.core.columns.TraceColumns` directly (the kernel
    consumes the zero-copy duration views it hands out).

    After :meth:`run`, :attr:`last_path` is ``"kernel"`` or ``"object"``
    and :attr:`fallback_reason` names why the object engine was used
    (``None`` on the kernel path).
    """

    def __init__(
        self,
        cluster: ClusterConfig,
        scheduler: Scheduler,
        *,
        min_map_percent_completed: float = 0.05,
        record_tasks: bool = True,
        record_events: bool = False,
        preemption: bool = False,
        shuffle_model: "ShuffleModel | None" = None,
        sanitize: Optional[bool] = None,
        sanitizer: Any = None,
    ) -> None:
        if not 0.0 <= min_map_percent_completed <= 1.0:
            raise ValueError(
                "min_map_percent_completed must be in [0, 1], got "
                f"{min_map_percent_completed}"
            )
        self.cluster = cluster
        self.scheduler = scheduler
        self.min_map_percent_completed = min_map_percent_completed
        self.record_tasks = record_tasks
        self.record_events = record_events
        self.preemption = preemption
        self.shuffle_model = shuffle_model
        # Same sanitize-resolution rules as the object engine.
        if sanitizer is None:
            if sanitize is None:
                sanitize = os.environ.get("SIMMR_SANITIZE", "") not in (
                    "", "0", "false", "False",
                )
            if sanitize:
                from ..sanitize.sanitizer import Sanitizer as _Sanitizer

                sanitizer = _Sanitizer()
        elif sanitize is False:
            sanitizer = None
        self.sanitizer = sanitizer
        self.last_path: Optional[str] = None
        #: Which kernel mode the last kernel-path run used: ``"passes"``
        #: (vectorized multi-pass, static non-preemptive) or ``"replay"``
        #: (segmented replay: preemption and/or columnar dynamic policy).
        self.last_kernel_mode: Optional[str] = None
        self.fallback_reason: Optional[str] = None

    # ------------------------------------------------------------------ #
    # envelope
    # ------------------------------------------------------------------ #

    @staticmethod
    def _preemption_inert(scheduler: Scheduler) -> bool:
        """True when ``preemption=True`` provably cannot kill anything.

        A scheduler that never overrides
        :meth:`~repro.schedulers.base.Scheduler.preemption_requests`
        (or was built with ``preemptive=False``) always answers with no
        kill requests, so the run's event stream is identical to the
        non-preemptive one and the fast pass-mode kernel stays valid.
        """
        if type(scheduler).preemption_requests is Scheduler.preemption_requests:
            return True
        return getattr(scheduler, "preemptive", None) is False

    def _fallback_reason(self, trace: Sequence[TraceJob]) -> Optional[str]:
        """Why this run needs the object engine, or None for the kernel.

        Pass mode covers static-priority schedules without preemption;
        segmented-replay mode adds preemptive runs and dynamic policies
        carrying the :class:`~repro.schedulers.base.
        ColumnarSchedulerMixin` contract.  What remains is a short
        list.  A state-inspecting sanitizer needs the object engine's
        per-event state to check invariants against, so it forces the
        fallback (the observe-only :class:`~repro.sanitize.digest.
        DigestRecorder` declares ``inspects_state = False`` and stays on
        the kernel).
        """
        if self.shuffle_model is not None:
            return "pluggable shuffle model"
        scheduler = self.scheduler
        if not scheduler.static_priority and not getattr(
            scheduler, "columnar_capable", False
        ):
            return (
                f"dynamic scheduler {scheduler.name!r} without the "
                "columnar contract"
            )
        san = self.sanitizer
        if san is not None and getattr(san, "inspects_state", True):
            return "state-inspecting sanitizer"
        if any(tj.depends_on is not None for tj in trace):
            return "workflow dependencies (depends_on)"
        return None

    def run(self, trace: Sequence[TraceJob] | TraceColumns) -> SimulationResult:
        """Simulate the trace; kernel when possible, object engine otherwise."""
        if isinstance(trace, TraceColumns):
            trace = trace.jobs()
        reason = self._fallback_reason(trace)
        if reason is not None:
            self.last_path = "object"
            self.last_kernel_mode = None
            self.fallback_reason = reason
            engine = SimulatorEngine(
                self.cluster,
                self.scheduler,
                min_map_percent_completed=self.min_map_percent_completed,
                record_tasks=self.record_tasks,
                record_events=self.record_events,
                preemption=self.preemption,
                shuffle_model=self.shuffle_model,
                sanitize=False if self.sanitizer is None else None,
                sanitizer=self.sanitizer,
            )
            result = engine.run(trace)
            result.engine_path = "object"
            result.fallback_reason = reason
            return result
        self.last_path = "kernel"
        self.fallback_reason = None
        scheduler = self.scheduler
        if not scheduler.static_priority or (
            self.preemption and not self._preemption_inert(scheduler)
        ):
            self.last_kernel_mode = "replay"
            result = self._run_replay(trace)
        else:
            self.last_kernel_mode = "passes"
            result = self._run_kernel(trace)
        result.engine_path = "kernel"
        result.fallback_reason = None
        return result

    # ------------------------------------------------------------------ #
    # segmented replay (preemption / columnar dynamic schedulers)
    # ------------------------------------------------------------------ #

    def _run_replay(self, trace: Sequence[TraceJob]) -> SimulationResult:
        """Event replay with kernel-resident state: the wide-envelope mode.

        Covers what pass mode cannot: live preemption and dynamic
        schedulers carrying the columnar contract.  The schedule here is
        *not* precomputable, so the loop replays the object engine's
        heap mechanics exactly — same ``(time, type, seq)`` tuples, same
        handler effects, hence bit-identical event streams — but with
        its per-event costs stripped:

        * handlers are inlined into one branch chain ordered by event
          frequency (no dict dispatch, no bound-method calls);
        * per-task durations come from cyclic duration *lists*
          precomputed per job (``_cycled(...).tolist()``), replacing the
          profile accessors' numpy-scalar extraction on every
          arrival/rewrite;
        * dynamic-policy decisions are vectorized: the kernel maintains
          :class:`~repro.core.columns.SchedulerColumns` state arrays and
          resolves each epoch's dispatch with eligibility masks plus the
          policy's ``columnar_key_columns`` and one ``np.lexsort``,
          instead of rebuilding candidate lists and evaluating Python
          keys per job per dispatch;
        * the event digest is fed in one packed-buffer update after the
          run (pop order is collected as four flat columns), not one
          ``observe_pop`` call per event.

        Preemption kills reuse the object engine's decorate-sort victim
        order verbatim, including the stale-departure protocol: a killed
        attempt's orphaned departure event still pops (counted and
        digested) and is recognized by its stale sequence number.
        """
        wall_start = perf_seconds()
        SimulatorEngine._validate_dependencies(trace)
        scheduler = self.scheduler
        cluster = self.cluster
        mmpc = self.min_map_percent_completed
        record_tasks = self.record_tasks
        n = len(trace)
        jobs = [Job(i, tj) for i, tj in enumerate(trace)]

        # Cyclic per-task duration lists: the profile accessors'
        # ``index % size`` lookup, amortized to one list index per event.
        # Shuffle fallbacks mirror JobProfile.first_shuffle_duration /
        # typical_shuffle_duration (each substitutes the other's array
        # when its own is empty).
        mdl: list[list[float]] = [[]] * n
        fsl: list[list[float]] = [[]] * n
        tsl: list[list[float]] = [[]] * n
        rdl: list[list[float]] = [[]] * n
        for i, job in enumerate(jobs):
            profile = job.profile
            if job.num_maps:
                mdl[i] = _cycled(profile.map_durations, job.num_maps).tolist()
            if job.num_reduces:
                fs_arr = (
                    profile.first_shuffle_durations
                    if profile.first_shuffle_durations.size
                    else profile.typical_shuffle_durations
                )
                ts_arr = (
                    profile.typical_shuffle_durations
                    if profile.typical_shuffle_durations.size
                    else profile.first_shuffle_durations
                )
                fsl[i] = _cycled(fs_arr, job.num_reduces).tolist()
                tsl[i] = _cycled(ts_arr, job.num_reduces).tolist()
                rdl[i] = _cycled(profile.reduce_durations, job.num_reduces).tolist()

        # The event heap, seeded exactly like the object engine: one
        # JOB_ARRIVAL per trace entry with seq = trace index.
        heap: list[tuple[float, int, int, int, int]] = [
            (tj.submit_time, _JOB_ARR, i, i, -1) for i, tj in enumerate(trace)
        ]
        heapify(heap)
        seq_c = n

        free_m = cluster.map_slots
        free_r = cluster.reduce_slots
        job_q: list[Job] = []
        fillers: dict[int, list[int]] = {}
        preempt = self.preemption
        # (job_id -> {index: (dep_seq | None for fillers, start, record)});
        # one dict per kind, mirroring the object engine's (jid, kind) keys.
        _RT = dict[int, tuple[Optional[int], float, Optional[TaskRecord]]]
        rt_map: dict[int, _RT] = {}
        rt_red: dict[int, _RT] = {}
        records: list[TaskRecord] = []
        fast = scheduler.static_priority
        track = not fast
        mheap: list[tuple[tuple, int]] = []
        rheap: list[tuple[tuple, int]] = []
        view = SchedulerColumns(jobs, cluster)
        key_columns: Any = None
        if track:
            getattr(scheduler, "columnar_bind")(view)
            key_columns = getattr(scheduler, "columnar_key_columns")
        v_gate = view.gate
        v_active = view.active
        v_mdisp = view.mdisp
        v_mcomp = view.mcomp
        v_rdisp = view.rdisp
        v_rcomp = view.rcomp
        v_nmaps = view.nmaps
        v_nreds = view.nreds
        v_capm = view.capm
        v_capr = view.capr

        collect = self.sanitizer is not None or self.record_events
        ev_t: list[float] = []
        ev_e: list[int] = []
        ev_j: list[int] = []
        ev_k: list[int] = []
        app_t = ev_t.append
        app_e = ev_e.append
        app_j = ev_j.append
        app_k = ev_k.append

        push = heappush
        _RUNNING = JobState.RUNNING

        def offer_map(job: Job) -> None:
            if fast and not job.in_map_heap:
                if job.state is not _RUNNING or job.maps_dispatched >= job.num_maps:
                    return
                cap = job.wanted_map_slots
                if cap is not None and job.maps_dispatched - job.maps_completed >= cap:
                    return
                job.in_map_heap = True
                push(mheap, (job.sched_key, job.job_id))

        def offer_reduce(job: Job) -> None:
            if fast and not job.in_reduce_heap:
                if (
                    job.state is not _RUNNING
                    or job.reduces_dispatched >= job.num_reduces
                    or job.maps_completed < job.reduce_gate
                ):
                    return
                cap = job.wanted_reduce_slots
                if (
                    cap is not None
                    and job.reduces_dispatched - job.reduces_completed >= cap
                ):
                    return
                job.in_reduce_heap = True
                push(rheap, (job.sched_key, job.job_id))

        def maybe_depart(job: Job, now: float) -> None:
            nonlocal seq_c
            if job.is_complete and job.state is not JobState.COMPLETED:
                job.state = JobState.COMPLETED
                job.completion_time = now
                job_q.remove(job)
                scheduler.on_job_departure(job, now)
                push(heap, (now, _JOB_DEP, seq_c, job.job_id, -1))
                seq_c += 1
                if track:
                    v_active[job.job_id] = False
                    if now > view.now:
                        view.now = now

        def kill_tasks(victim: Job, kind_map: bool, count: int, now: float) -> None:
            nonlocal free_m, free_r
            vid = victim.job_id
            running = rt_map.get(vid) if kind_map else rt_red.get(vid)
            if not running:
                return
            # Decorate-sort identical to SimulatorEngine._kill_tasks:
            # stable reverse sort on start time keeps equal-start attempts
            # in dict insertion order — youngest attempts killed first.
            youngest_first = [
                (start, index, dep_seq, record)
                for index, (dep_seq, start, record) in running.items()
            ]
            youngest_first.sort(key=itemgetter(0), reverse=True)
            killed = 0
            for _start, index, dep_seq, record in youngest_first[:count]:
                del running[index]
                if record is not None:
                    record.end = now
                    record.killed = True
                if kind_map:
                    victim.maps_dispatched -= 1
                    victim.requeued_maps.append(index)
                    free_m += 1
                    if track:
                        v_mdisp[vid] -= 1.0
                else:
                    victim.reduces_dispatched -= 1
                    victim.requeued_reduces.append(index)
                    free_r += 1
                    if track:
                        v_rdisp[vid] -= 1.0
                    if dep_seq is None:
                        # A filler awaiting the map stage: cancel its rewrite.
                        filler_list = fillers.get(vid)
                        if filler_list and index in filler_list:
                            filler_list.remove(index)
                killed += 1
            if killed:
                offer_map(victim)
                offer_reduce(victim)

        def dispatch(job: Job, now: float, kind_map: bool) -> None:
            nonlocal free_m, free_r, seq_c
            jid = job.job_id
            if kind_map:
                free_m -= 1
                if job.requeued_maps:
                    index = job.requeued_maps.pop()
                else:
                    index = job.next_map_index
                    job.next_map_index = index + 1
                job.maps_dispatched += 1
                if job.start_time is None:
                    job.start_time = now
                push(heap, (now, _MAP_ARR, seq_c, jid, index))
            else:
                free_r -= 1
                if job.requeued_reduces:
                    index = job.requeued_reduces.pop()
                else:
                    index = job.next_reduce_index
                    job.next_reduce_index = index + 1
                job.reduces_dispatched += 1
                if job.start_time is None:
                    job.start_time = now
                push(heap, (now, _RED_ARR, seq_c, jid, index))
            seq_c += 1

        def allocate_static(now: float) -> None:
            while free_m > 0 and mheap:
                job = jobs[mheap[0][1]]
                cap = job.wanted_map_slots
                if (
                    job.state is not _RUNNING
                    or job.maps_dispatched >= job.num_maps
                    or (
                        cap is not None
                        and job.maps_dispatched - job.maps_completed >= cap
                    )
                ):
                    heappop(mheap)
                    job.in_map_heap = False
                    continue
                dispatch(job, now, True)
            while free_r > 0 and rheap:
                job = jobs[rheap[0][1]]
                cap = job.wanted_reduce_slots
                if (
                    job.state is not _RUNNING
                    or job.reduces_dispatched >= job.num_reduces
                    or job.maps_completed < job.reduce_gate
                    or (
                        cap is not None
                        and job.reduces_dispatched - job.reduces_completed >= cap
                    )
                ):
                    heappop(rheap)
                    job.in_reduce_heap = False
                    continue
                dispatch(job, now, False)

        def allocate_dynamic(now: float) -> None:
            # Vectorized epoch decision: one eligibility mask per side,
            # updated in place for the dispatched job only (nothing else
            # changes between dispatches of the same epoch), then the
            # policy's key columns + one lexsort with the kernel-appended
            # job_id tie-break.  ``min(candidates, key=...)`` with a
            # total key picks the same job regardless of candidate
            # order, so increasing-id candidates are sound.
            if free_m > 0:
                el = v_active & (v_mdisp < v_nmaps) & (v_mdisp - v_mcomp < v_capm)
                while free_m > 0:
                    cand = el.nonzero()[0]
                    k = cand.size
                    if k == 0:
                        break
                    if k == 1:
                        pick = int(cand[0])
                    else:
                        view.queue_depth = float(k)
                        view.free_map = float(free_m)
                        view.free_reduce = float(free_r)
                        cols = key_columns(view, cand, "map")
                        order = np.lexsort((cand,) + tuple(reversed(cols)))
                        pick = int(cand[order[0]])
                    dispatch(jobs[pick], now, True)
                    d = v_mdisp[pick] + 1.0
                    v_mdisp[pick] = d
                    el[pick] = d < v_nmaps[pick] and d - v_mcomp[pick] < v_capm[pick]
            if free_r > 0:
                el = (
                    v_active
                    & (v_rdisp < v_nreds)
                    & (v_mcomp >= v_gate)
                    & (v_rdisp - v_rcomp < v_capr)
                )
                while free_r > 0:
                    cand = el.nonzero()[0]
                    k = cand.size
                    if k == 0:
                        break
                    if k == 1:
                        pick = int(cand[0])
                    else:
                        view.queue_depth = float(k)
                        view.free_map = float(free_m)
                        view.free_reduce = float(free_r)
                        cols = key_columns(view, cand, "reduce")
                        order = np.lexsort((cand,) + tuple(reversed(cols)))
                        pick = int(cand[order[0]])
                    dispatch(jobs[pick], now, False)
                    d = v_rdisp[pick] + 1.0
                    v_rdisp[pick] = d
                    el[pick] = d < v_nreds[pick] and d - v_rcomp[pick] < v_capr[pick]

        allocate = allocate_static if fast else allocate_dynamic

        processed = 0
        record: Optional[TaskRecord]
        while heap:
            now, etype, seq, jid, ti = heappop(heap)
            processed += 1
            if collect:
                app_t(now)
                app_e(etype)
                app_j(jid)
                app_k(ti)
            job = jobs[jid]
            if etype == _MAP_DEP:
                if preempt:
                    running = rt_map.get(jid)
                    entry = running.get(ti) if running else None
                    if entry is None or entry[0] != seq:
                        continue  # stale departure of a killed attempt
                    del running[ti]  # type: ignore[union-attr]
                job.maps_completed += 1
                free_m += 1
                if track:
                    v_mcomp[jid] += 1.0
                if job.maps_completed >= job.num_maps and job.map_stage_end is None:
                    job.map_stage_end = now
                    push(heap, (now, _ALL_MAPS, seq_c, jid, -1))
                    seq_c += 1
                    if job.num_reduces == 0:
                        maybe_depart(job, now)
                else:
                    offer_map(job)
                offer_reduce(job)
                allocate(now)
            elif etype == _MAP_ARR:
                end = now + mdl[jid][ti]
                record = None
                if record_tasks:
                    record = TaskRecord(
                        kind="map", job_id=jid, index=ti, start=now, end=end
                    )
                    job.map_records.append(record)
                    records.append(record)
                push(heap, (end, _MAP_DEP, seq_c, jid, ti))
                if preempt:
                    d_map = rt_map.get(jid)
                    if d_map is None:
                        d_map = {}
                        rt_map[jid] = d_map
                    d_map[ti] = (seq_c, now, record)
                seq_c += 1
            elif etype == _RED_DEP:
                if preempt:
                    running = rt_red.get(jid)
                    entry = running.get(ti) if running else None
                    if entry is None or entry[0] != seq:
                        continue  # stale departure of a killed attempt
                    del running[ti]  # type: ignore[union-attr]
                job.reduces_completed += 1
                free_r += 1
                if track:
                    v_rcomp[jid] += 1.0
                maybe_depart(job, now)
                offer_reduce(job)
                allocate(now)
            elif etype == _RED_ARR:
                if job.maps_completed < job.num_maps:
                    # First wave overlapping the map stage: an infinite
                    # filler, rewritten by ALL_MAPS_FINISHED.
                    record = None
                    if record_tasks:
                        record = TaskRecord(
                            kind="reduce", job_id=jid, index=ti, start=now,
                            first_wave=True,
                        )
                        job.reduce_records.append(record)
                        records.append(record)
                    fl = fillers.get(jid)
                    if fl is None:
                        fillers[jid] = [ti]
                    else:
                        fl.append(ti)
                    if preempt:
                        d_red = rt_red.get(jid)
                        if d_red is None:
                            d_red = {}
                            rt_red[jid] = d_red
                        d_red[ti] = (None, now, record)
                else:
                    mse = job.map_stage_end
                    first_wave = mse is not None and now <= mse
                    shuffle = fsl[jid][ti] if first_wave else tsl[jid][ti]
                    shuffle_end = now + shuffle
                    end = shuffle_end + rdl[jid][ti]
                    record = None
                    if record_tasks:
                        record = TaskRecord(
                            kind="reduce", job_id=jid, index=ti, start=now,
                            end=end, shuffle_end=shuffle_end,
                            first_wave=first_wave,
                        )
                        job.reduce_records.append(record)
                        records.append(record)
                    push(heap, (end, _RED_DEP, seq_c, jid, ti))
                    if preempt:
                        d_red = rt_red.get(jid)
                        if d_red is None:
                            d_red = {}
                            rt_red[jid] = d_red
                        d_red[ti] = (seq_c, now, record)
                    seq_c += 1
            elif etype == _ALL_MAPS:
                fl2 = fillers.pop(jid, None)
                if fl2:
                    fs_j = fsl[jid]
                    rd_j = rdl[jid]
                    running = rt_red.get(jid) if preempt else None
                    for index in fl2:
                        shuffle_end = now + fs_j[index]
                        end = shuffle_end + rd_j[index]
                        if preempt:
                            entry = running.get(index) if running else None
                            record = entry[2] if entry else None
                        else:
                            entry = None
                            record = (
                                job.reduce_records[index] if record_tasks else None
                            )
                        if record is not None:
                            record.shuffle_end = shuffle_end
                            record.end = end
                        push(heap, (end, _RED_DEP, seq_c, jid, index))
                        if preempt and entry is not None:
                            running[index] = (  # type: ignore[index]
                                seq_c, entry[1], entry[2],
                            )
                        seq_c += 1
            elif etype == _JOB_ARR:
                job.state = _RUNNING
                job.reduce_gate = mmpc * job.num_maps
                if job.num_maps == 0:
                    job.map_stage_end = now
                job_q.append(job)
                scheduler.on_job_arrival(job, now, cluster)
                if fast:
                    job.sched_key = scheduler.priority_key(job)
                    offer_map(job)
                    offer_reduce(job)
                else:
                    v_gate[jid] = job.reduce_gate
                    cap_m = job.wanted_map_slots
                    if cap_m is not None:
                        v_capm[jid] = float(cap_m)
                    cap_r = job.wanted_reduce_slots
                    if cap_r is not None:
                        v_capr[jid] = float(cap_r)
                    v_active[jid] = True
                    if now > view.now:
                        view.now = now
                if preempt:
                    others = [j for j in job_q if j is not job]
                    for victim, vkind, count in scheduler.preemption_requests(
                        job, others, cluster, free_m, free_r
                    ):
                        if victim.state is _RUNNING and count > 0:
                            kill_tasks(victim, vkind == "map", count, now)
                allocate(now)
            # else: _JOB_DEP — bookkeeping already done in maybe_depart.

        stuck = [j for j in jobs if j.state is not JobState.COMPLETED]
        if stuck:
            names = ", ".join(f"{j.job_id}:{j.name}" for j in stuck[:5])
            more = "..." if len(stuck) > 5 else ""
            raise RuntimeError(
                f"simulation stalled with {len(stuck)} unfinished job(s) "
                f"({names}{more}): the cluster cannot run their tasks (e.g. "
                "reduce tasks with zero reduce slots) or the policy never "
                "schedules them"
            )

        san = self.sanitizer
        if san is not None:
            from ..sanitize.digest import EventDigest

            san.begin_run(self, trace)
            digest = getattr(san, "digest", None)
            t_arr = np.asarray(ev_t, dtype=np.float64)
            e_arr = np.asarray(ev_e, dtype=np.int64)
            j_arr = np.asarray(ev_j, dtype=np.int64)
            k_arr = np.asarray(ev_k, dtype=np.int64)
            if isinstance(digest, EventDigest):
                digest.update_many(t_arr, e_arr, j_arr, k_arr)
            else:  # pragma: no cover - custom observe-only sanitizers
                for i in range(len(t_arr)):
                    san.observe_pop(
                        float(t_arr[i]), int(e_arr[i]), i,
                        int(j_arr[i]), int(k_arr[i]),
                    )
            san.end_run(self)

        event_log: list = []
        if self.record_events:
            from .events import Event, EventType

            # Collected in true pop order already — no sort needed.
            event_log = [
                Event(t_i, EventType(e_i), j_i, k_i if k_i >= 0 else None)
                for t_i, e_i, j_i, k_i in zip(ev_t, ev_e, ev_j, ev_k)
            ]

        wall = elapsed_since(wall_start)
        makespan = max(
            (j.completion_time for j in jobs if j.completion_time is not None),
            default=0.0,
        )
        return SimulationResult(
            scheduler_name=scheduler.name,
            jobs=[JobResult.from_job(j) for j in jobs],
            task_records=records,
            makespan=makespan,
            events_processed=processed,
            wall_clock_seconds=wall,
            event_log=event_log,
        )

    # ------------------------------------------------------------------ #
    # kernel
    # ------------------------------------------------------------------ #

    def _run_kernel(self, trace: Sequence[TraceJob]) -> SimulationResult:
        wall_start = perf_seconds()
        SimulatorEngine._validate_dependencies(trace)
        scheduler = self.scheduler
        cluster = self.cluster
        mmpc = self.min_map_percent_completed
        jobs = [Job(i, tj) for i, tj in enumerate(trace)]

        # Arrival processing order: (submit_time, trace index) — the pop
        # order of the object engine's JOB_ARRIVAL events.
        order = sorted(range(len(jobs)), key=lambda i: (jobs[i].submit_time, i))
        states: list[_KJob] = [None] * len(jobs)  # type: ignore[list-item]
        for i in order:
            job = jobs[i]
            job.state = JobState.RUNNING
            job.reduce_gate = mmpc * job.num_maps
            if job.num_maps == 0:
                job.map_stage_end = job.submit_time
            scheduler.on_job_arrival(job, job.submit_time, cluster)
            job.sched_key = scheduler.priority_key(job)
            gate_val = job.reduce_gate
            gate_count = 0 if gate_val <= 0 else math.ceil(gate_val)
            states[i] = _KJob(job, i, gate_count)

        arr_states = [states[i] for i in order]
        uncapped_m = all(st.cap_m is None for st in states)
        uncapped_r = all(st.cap_r is None for st in states)

        if uncapped_m:
            self._map_pass_chain(arr_states)
        else:
            self._map_pass_capped(arr_states)
        self._derive_map_results(states)

        gated = self._build_gates(states)
        if uncapped_r:
            self._reduce_pass_chain(gated)
        else:
            self._reduce_pass_capped(gated)

        # Completion, departures, stall detection ----------------------------
        completion_order: list[tuple[float, int, int]] = []
        for st in states:
            maps_done = st.M == 0 or (
                st.mdispatched == st.M  # every dispatched map completes
            )
            if not maps_done:
                continue
            if st.R == 0:
                st.completed = True
                st.completion_time = st.mse
            elif st.rdispatched == st.R and st.maxend < _INF:
                st.completed = True
                st.completion_time = st.maxend
            if st.completed:
                job = st.job
                job.state = JobState.COMPLETED
                job.completion_time = st.completion_time
                job.map_stage_end = st.mse
                completion_order.append((st.completion_time, st.idx, st.idx))
        for st in states:
            if st.mstarts or st.rstarts:
                first_m = st.mstarts[0] if st.mstarts else _INF
                first_r = st.rstarts[0] if st.rstarts else _INF
                st.job.start_time = min(first_m, first_r)
            if st.M and st.mse < _INF and not st.completed:
                st.job.map_stage_end = st.mse

        # Departure hooks in completion order.  The static-priority
        # contract (constant priority_key) means the hook cannot feed
        # back into scheduling, so batching it here is observationally
        # identical for any conforming policy.
        completion_order.sort()
        for when, _tie, idx in completion_order:
            scheduler.on_job_departure(states[idx].job, when)

        stuck = [j for j in jobs if j.state is not JobState.COMPLETED]
        if stuck:
            names = ", ".join(f"{j.job_id}:{j.name}" for j in stuck[:5])
            more = "..." if len(stuck) > 5 else ""
            raise RuntimeError(
                f"simulation stalled with {len(stuck)} unfinished job(s) "
                f"({names}{more}): the cluster cannot run their tasks (e.g. "
                "reduce tasks with zero reduce slots) or the policy never "
                "schedules them"
            )

        processed = sum(
            2 + 2 * st.M + 2 * st.R + (1 if st.M else 0) for st in states
        )

        records: list[TaskRecord] = []
        if self.record_tasks:
            records = self._build_records(states)

        event_log: list = []
        san = self.sanitizer
        if san is not None or self.record_events:
            event_log = self._emit_events(trace, states, processed)

        wall = elapsed_since(wall_start)
        makespan = max(
            (j.completion_time for j in jobs if j.completion_time is not None),
            default=0.0,
        )
        return SimulationResult(
            scheduler_name=scheduler.name,
            jobs=[JobResult.from_job(j) for j in jobs],
            task_records=records,
            makespan=makespan,
            events_processed=processed,
            wall_clock_seconds=wall,
            event_log=event_log,
        )

    # ------------------------------------------------------------------ #
    # map pass
    # ------------------------------------------------------------------ #

    def _map_pass_chain(self, arr_states: list[_KJob]) -> None:
        """Uncapped map dispatch: slot-release chain loop.

        With no slot caps, every free slot goes to the eligible job with
        the smallest priority key, so each dispatch is one chain step:
        ``start = max(earliest slot release, job availability)``.  The
        next-arrival boundary preserves the event heap's tie-breaking
        (a ``MAP_TASK_DEPARTURE`` at time *t* is handled before a
        ``JOB_ARRIVAL`` at *t*).
        """
        slots = self.cluster.map_slots
        if slots <= 0:
            return
        pool = [0.0] * slots  # already a valid heap
        arrivals = [st for st in arr_states if st.M > 0]
        n_arr = len(arrivals)
        ai = 0
        pending: list[tuple[tuple, int]] = []  # (key, order position)
        by_pos: dict[int, _KJob] = {}
        mseq = 0
        while True:
            while pending and by_pos[pending[0][1]].mdispatched >= by_pos[pending[0][1]].M:
                heappop(pending)
            if not pending:
                if ai >= n_arr:
                    break
                st = arrivals[ai]
                by_pos[ai] = st
                heappush(pending, (st.key, ai))
                ai += 1
                continue
            st = by_pos[pending[0][1]]
            a_j = st.submit
            boundary = arrivals[ai].submit if ai < n_arr else _INF
            mdl = st.mdl
            starts_append = st.mstarts.append
            k = st.mdispatched
            limit = st.M
            seq0 = mseq
            while k < limit:
                t0 = pool[0]
                start = t0 if t0 > a_j else a_j
                if start > boundary:
                    break
                heapreplace(pool, start + mdl[k])
                starts_append(start)
                k += 1
            if k > st.mdispatched:
                st.mseq_runs.append((seq0, k - st.mdispatched))
                mseq += k - st.mdispatched
                st.mdispatched = k
            if k < limit:
                # Blocked by the arrival boundary: admit the next job.
                st2 = arrivals[ai]
                by_pos[ai] = st2
                heappush(pending, (st2.key, ai))
                ai += 1

    def _map_pass_capped(self, arr_states: list[_KJob]) -> None:
        """Slot-capped map dispatch: exact event-replay of the map side.

        Runs the object engine's arrival/departure/allocate cycle for
        map events only (reduce events provably never change map-side
        eligibility), with the same lazy priority heap.
        """
        states_by_idx = {st.idx: st for st in arr_states}
        trig: list[tuple] = [
            (st.submit, _JOB_ARR, st.idx, st.idx) for st in arr_states if st.M > 0
        ]
        heapify(trig)
        free = self.cluster.map_slots
        mheap: list[tuple[tuple, int]] = []
        mseq = 0
        release_k: dict[int, _KJob] = {}
        while trig:
            now, etype, _tie, idx = heappop(trig)
            st = states_by_idx[idx] if idx in states_by_idx else release_k[idx]
            if etype == _JOB_ARR:
                st.arrived = True
            else:
                st.mcompleted += 1
                free += 1
            if not st.in_mheap and self._map_eligible(st):
                st.in_mheap = True
                heappush(mheap, (st.key, st.idx))
            while free > 0 and mheap:
                s2 = states_by_idx[mheap[0][1]]
                if not self._map_eligible(s2):
                    heappop(mheap)
                    s2.in_mheap = False
                    continue
                free -= 1
                k = s2.mdispatched
                s2.mdispatched = k + 1
                s2.mstarts.append(now)
                if s2.mseqs is None:
                    s2.mseqs = []
                s2.mseqs.append(mseq)
                heappush(trig, (now + s2.mdl[k], _MAP_DEP, mseq, s2.idx))
                mseq += 1

    @staticmethod
    def _map_eligible(st: _KJob) -> bool:
        if not st.arrived or st.mdispatched >= st.M:
            return False
        cap = st.cap_m
        return cap is None or st.mdispatched - st.mcompleted < cap

    def _derive_map_results(self, states: list[_KJob]) -> None:
        """Vectorized wave reductions: finishes, map-stage end, gate event."""
        for st in states:
            if st.M == 0 or not st.mdispatched:
                continue
            starts = np.asarray(st.mstarts)
            fin = starts + st.md_np[: st.mdispatched]
            st.finishes = fin
            seqs = st.mseq_array()
            if st.mdispatched == st.M:
                st.mse = float(fin.max())
                # Last occurrence of the max: the final departure's
                # dispatch sequence breaks (time, seq) ties.
                last = int(len(fin) - 1 - fin[::-1].argmax())
                st.fm = int(seqs[last])
            k = st.gate_count
            if 0 < k <= st.mdispatched:
                # The k-th map departure in (finish, dispatch-seq) pop
                # order crosses the reduce slow-start gate.
                gorder = np.lexsort((seqs, fin))
                gi = int(gorder[k - 1])
                st.gate_time = float(fin[gi])
                st.gate_etype = _MAP_DEP
                st.gate_tie = int(seqs[gi])
            elif k == 0:
                st.gate_time = st.submit
        # Map-less / zero-gate jobs become reduce-eligible at arrival.
        for st in states:
            if st.M == 0 or st.gate_count == 0:
                st.gate_time = st.submit

    # ------------------------------------------------------------------ #
    # reduce pass
    # ------------------------------------------------------------------ #

    def _build_gates(self, states: list[_KJob]) -> list[_KJob]:
        """Jobs entering the reduce pass, sorted by gate event key.

        Precomputes each job's reduce-phase duration vectors and the
        fused first-wave completion expression ``(mse + first_shuffle) +
        reduce`` — one vectorized pass over the columnar views.
        """
        gated: list[_KJob] = []
        for st in states:
            if st.R == 0 or st.gate_time is None:
                continue
            profile = st.job.profile
            fs_arr = (
                profile.first_shuffle_durations
                if profile.first_shuffle_durations.size
                else profile.typical_shuffle_durations
            )
            ts_arr = (
                profile.typical_shuffle_durations
                if profile.typical_shuffle_durations.size
                else profile.first_shuffle_durations
            )
            st.fs_np = _cycled(fs_arr, st.R)
            st.ts_np = _cycled(ts_arr, st.R)
            st.rd_np = _cycled(profile.reduce_durations, st.R)
            st.fe_np = (st.mse + st.fs_np) + st.rd_np
            st.fsl = st.fs_np.tolist()
            st.tsl = st.ts_np.tolist()
            st.rdl = st.rd_np.tolist()
            st.fel = st.fe_np.tolist()
            gated.append(st)
        gated.sort(key=lambda s: (s.gate_time, s.gate_etype, s.gate_tie))
        return gated

    def _reduce_pass_chain(self, gated: list[_KJob]) -> None:
        """Uncapped reduce dispatch: chain loop over gate availability.

        Same structure as the map chain loop, with two twists: the
        availability event is the slow-start gate crossing (a
        ``MAP_TASK_DEPARTURE`` or the job's own arrival), and each
        dispatch classifies itself as filler / first-wave / typical by
        comparing its start against the map-stage end.
        """
        slots = self.cluster.reduce_slots
        if slots <= 0 or not gated:
            return
        pool = [0.0] * slots
        n_arr = len(gated)
        ai = 0
        pending: list[tuple[tuple, int]] = []
        by_pos: dict[int, _KJob] = {}
        rseq = 0
        while True:
            while pending and by_pos[pending[0][1]].rdispatched >= by_pos[pending[0][1]].R:
                heappop(pending)
            if not pending:
                if ai >= n_arr:
                    break
                st = gated[ai]
                st.gated = True
                by_pos[ai] = st
                heappush(pending, (st.key, ai))
                ai += 1
                continue
            st = by_pos[pending[0][1]]
            g_j = st.gate_time
            if ai < n_arr:
                nxt = gated[ai]
                boundary, b_etype = nxt.gate_time, nxt.gate_etype
            else:
                boundary, b_etype = _INF, -1
            mse = st.mse
            fel = st.fel
            tsl = st.tsl
            rdl = st.rdl
            starts_append = st.rstarts.append
            k = st.rdispatched
            limit = st.R
            seq0 = rseq
            maxend = st.maxend
            maxend_i = st.maxend_i
            while k < limit:
                t0 = pool[0]
                if t0 > g_j:
                    start = t0
                    # A RED_DEP release at the boundary time is handled
                    # before a JOB_ARRIVAL gate but after a MAP_DEP gate.
                    if start > boundary or (start == boundary and b_etype != _JOB_ARR):
                        break
                else:
                    start = g_j
                if start == _INF:
                    break  # only permanently-occupied (filler) slots left
                end = fel[k] if start <= mse else (start + tsl[k]) + rdl[k]
                heapreplace(pool, end)
                starts_append(start)
                if end >= maxend:
                    maxend = end
                    maxend_i = k
                k += 1
            st.maxend = maxend
            st.maxend_i = maxend_i
            if k > st.rdispatched:
                st.rseq_runs.append((seq0, k - st.rdispatched))
                rseq += k - st.rdispatched
                st.rdispatched = k
            if k < limit:
                if ai >= n_arr:
                    break  # stalled: dead slots or zero capacity left
                st2 = gated[ai]
                st2.gated = True
                by_pos[ai] = st2
                heappush(pending, (st2.key, ai))
                ai += 1

    def _reduce_pass_capped(self, gated: list[_KJob]) -> None:
        """Slot-capped reduce dispatch: exact event-replay of the reduce side.

        Trigger heap carries gate crossings and reduce departures with
        the object engine's full ``(time, type, push-order)`` keys, so
        cap headroom unlocks in the identical order.
        """
        free = self.cluster.reduce_slots
        by_idx = {st.idx: st for st in gated}
        trig: list[tuple] = [
            (st.gate_time, st.gate_etype, st.gate_tie, st.idx, -1) for st in gated
        ]
        heapify(trig)
        rheap: list[tuple[tuple, int]] = []
        rseq = 0
        while trig:
            now, etype, _tie, idx, _i = heappop(trig)
            st = by_idx[idx]
            if etype == _RED_DEP:
                st.rcompleted += 1
                free += 1
            else:
                st.gated = True
            if not st.in_rheap and self._reduce_eligible(st):
                st.in_rheap = True
                heappush(rheap, (st.key, st.idx))
            while free > 0 and rheap:
                s2 = by_idx[rheap[0][1]]
                if not self._reduce_eligible(s2):
                    heappop(rheap)
                    s2.in_rheap = False
                    continue
                free -= 1
                i = s2.rdispatched
                s2.rdispatched = i + 1
                s2.rstarts.append(now)
                if s2.rseqs is None:
                    s2.rseqs = []
                s2.rseqs.append(rseq)
                mse = s2.mse
                if now < mse:
                    # Filler: departure is pushed by ALL_MAPS_FINISHED,
                    # whose heap position is (mse, 1, final-map-seq).
                    pos = s2.nfillers
                    s2.nfillers = pos + 1
                    end = s2.fel[i]
                    tie = (mse, _ALL_MAPS, s2.fm, pos)
                else:
                    # now >= mse here, so <= means the first-wave boundary.
                    end = s2.fel[i] if now <= mse else (now + s2.tsl[i]) + s2.rdl[i]
                    tie = (now, _RED_ARR, rseq, 0)
                rseq += 1
                if end >= s2.maxend:
                    s2.maxend = end
                    s2.maxend_i = i
                if end < _INF:
                    heappush(trig, (end, _RED_DEP, tie, s2.idx, i))

    @staticmethod
    def _reduce_eligible(st: _KJob) -> bool:
        if not st.gated or st.rdispatched >= st.R:
            return False
        cap = st.cap_r
        return cap is None or st.rdispatched - st.rcompleted < cap

    # ------------------------------------------------------------------ #
    # derived outputs
    # ------------------------------------------------------------------ #

    def _reduce_columns(self, st: _KJob) -> tuple:
        """Vectorized reduce-task columns: (starts, ends, shuffle_ends,
        first_wave mask, filler mask) for the dispatched reduces."""
        n = st.rdispatched
        starts = np.asarray(st.rstarts)
        fs = st.fs_np[:n]
        ts = st.ts_np[:n]
        rd = st.rd_np[:n]
        fw = starts <= st.mse            # fillers + first wave
        filler = starts < st.mse
        shuffle_end = np.where(fw, st.mse + fs, starts + ts)
        ends = np.where(fw, st.fe_np[:n], shuffle_end + rd)
        return starts, ends, shuffle_end, fw, filler

    def _build_records(self, states: list[_KJob]) -> list[TaskRecord]:
        """Task records in the object engine's global append order.

        The engine appends one record per ``*_TASK_ARRIVAL`` pop, so the
        global order is ``(start, arrival-event type, dispatch seq)``.
        """
        keyed: list[tuple[float, int, int, TaskRecord]] = []
        for st in states:
            job = st.job
            jid = st.idx
            if st.mdispatched:
                fins = st.finishes.tolist()
                seqs = st.mseq_array().tolist()
                for k, (start, end, seq) in enumerate(
                    zip(st.mstarts, fins, seqs)
                ):
                    rec = TaskRecord(
                        kind="map", job_id=jid, index=k, start=start, end=end
                    )
                    job.map_records.append(rec)
                    keyed.append((start, _MAP_ARR, seq, rec))
            if st.rdispatched:
                starts, ends, shuffle_end, fw, _filler = self._reduce_columns(st)
                seqs = st.rseq_array().tolist()
                for i, (start, end, se, first, seq) in enumerate(
                    zip(
                        starts.tolist(),
                        ends.tolist(),
                        shuffle_end.tolist(),
                        fw.tolist(),
                        seqs,
                    )
                ):
                    rec = TaskRecord(
                        kind="reduce",
                        job_id=jid,
                        index=i,
                        start=start,
                        end=end,
                        shuffle_end=se,
                        first_wave=first,
                    )
                    job.reduce_records.append(rec)
                    keyed.append((start, _RED_ARR, seq, rec))
        keyed.sort(key=lambda t: (t[0], t[1], t[2]))
        return [rec for _t, _e, _s, rec in keyed]

    def _emit_events(
        self, trace: Sequence[TraceJob], states: list[_KJob], processed: int
    ) -> list:
        """Reconstruct the full event stream in heap pop order.

        Events are materialized as numeric columns — time, type, and up
        to five tie-breaking components encoding each event's heap
        sequence provenance — sorted with one ``np.lexsort``, and fed to
        the digest as a single packed-buffer update.  The resulting
        stream is bit-identical to the object engine's pop sequence
        (asserted against the arithmetic event count).
        """
        t_parts: list[np.ndarray] = []
        e_parts: list[np.ndarray] = []
        c_parts: list[np.ndarray] = []  # (n, 5) tie columns
        j_parts: list[np.ndarray] = []
        k_parts: list[np.ndarray] = []

        def block(times, etype, ties, jid, tasks):
            n = len(times)
            t_parts.append(np.asarray(times, dtype=np.float64))
            e_parts.append(np.full(n, etype, dtype=np.int64))
            tie_block = np.zeros((n, 5), dtype=np.float64)
            for col, vals in enumerate(ties):
                tie_block[:, col] = vals
            c_parts.append(tie_block)
            j_parts.append(
                np.full(n, jid, dtype=np.int64)
                if np.isscalar(jid)
                else np.asarray(jid, dtype=np.int64)
            )
            k_parts.append(
                np.full(n, tasks, dtype=np.int64)
                if np.isscalar(tasks)
                else np.asarray(tasks, dtype=np.int64)
            )

        n_jobs = len(states)
        submits = np.asarray([st.submit for st in states])
        block(submits, _JOB_ARR, [np.arange(n_jobs)], np.arange(n_jobs), -1)

        for st in states:
            jid = st.idx
            if st.mdispatched:
                starts = np.asarray(st.mstarts)
                seqs = st.mseq_array()
                idxs = np.arange(st.mdispatched)
                block(starts, _MAP_ARR, [seqs], jid, idxs)
                block(st.finishes, _MAP_DEP, [seqs], jid, idxs)
                if st.mdispatched == st.M:
                    block([st.mse], _ALL_MAPS, [[st.fm]], jid, -1)
            if st.rdispatched:
                starts, ends, _se, _fw, filler = self._reduce_columns(st)
                seqs = st.rseq_array()
                idxs = np.arange(st.rdispatched)
                block(starts, _RED_ARR, [seqs], jid, idxs)
                # Departure tie = the departure event's push site: the
                # ALL_MAPS rewrite for fillers, the RED_ARR pop otherwise.
                pos = np.cumsum(filler) - 1
                c1 = np.where(filler, st.mse, starts)
                c2 = np.where(filler, _ALL_MAPS, _RED_ARR)
                c3 = np.where(filler, st.fm, seqs)
                c4 = np.where(filler, pos, 0)
                block(ends, _RED_DEP, [c1, c2, c3, c4], jid, idxs)
            if st.completed:
                if st.R == 0:
                    dep_tie = [[_MAP_DEP], [st.fm], [0], [0], [0]]
                else:
                    i = st.maxend_i
                    if st.rstarts[i] < st.mse:
                        n_fillers_before = sum(
                            1 for s in st.rstarts[: i + 1] if s < st.mse
                        )
                        dep_tie = [
                            [_RED_DEP], [st.mse], [_ALL_MAPS], [st.fm],
                            [n_fillers_before - 1],
                        ]
                    else:
                        seqs = st.rseq_array()
                        dep_tie = [
                            [_RED_DEP], [st.rstarts[i]], [_RED_ARR],
                            [int(seqs[i])], [0],
                        ]
                block([st.completion_time], _JOB_DEP, dep_tie, jid, -1)

        t = np.concatenate(t_parts)
        e = np.concatenate(e_parts)
        c = np.concatenate(c_parts)
        jcol = np.concatenate(j_parts)
        kcol = np.concatenate(k_parts)
        if len(t) != processed:
            raise RuntimeError(
                f"columnar kernel event-count mismatch: emitted {len(t)}, "
                f"expected {processed}"
            )
        order = np.lexsort((c[:, 4], c[:, 3], c[:, 2], c[:, 1], c[:, 0], e, t))
        t = t[order]
        e = e[order]
        jcol = jcol[order]
        kcol = kcol[order]

        san = self.sanitizer
        if san is not None:
            from ..sanitize.digest import EventDigest

            san.begin_run(self, trace)
            digest = getattr(san, "digest", None)
            if isinstance(digest, EventDigest):
                digest.update_many(t, e, jcol, kcol)
            else:  # pragma: no cover - custom observe-only sanitizers
                for i in range(len(t)):
                    san.observe_pop(
                        float(t[i]), int(e[i]), i, int(jcol[i]), int(kcol[i])
                    )
            san.end_run(self)

        event_log: list = []
        if self.record_events:
            from .events import Event, EventType

            event_log = [
                Event(time, EventType(et), jid, ti if ti >= 0 else None)
                for time, et, jid, ti in zip(
                    t.tolist(), e.tolist(), jcol.tolist(), kcol.tolist()
                )
            ]
        return event_log
