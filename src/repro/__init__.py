"""SimMR — a trace-driven MapReduce simulation environment.

A from-scratch reproduction of *"Play It Again, SimMR!"* (A. Verma,
L. Cherkasova, R. H. Campbell — IEEE CLUSTER 2011): a fast, accurate
discrete-event simulator of the Hadoop job master for evaluating
resource-allocation and job-scheduling policies, plus everything the
paper's evaluation depends on — trace generation (MRProfiler and
Synthetic TraceGen), a trace database, deadline-driven schedulers
(MinEDF/MaxEDF) backed by the ARIA performance model, a fine-grained
Hadoop cluster emulator used as validation ground truth, and a
reimplementation of the Mumak/Rumen baseline.

Quickstart::

    import numpy as np
    from repro import ClusterConfig, FIFOScheduler, TraceJob, simulate
    from repro.workloads import app_spec

    profile = app_spec("WordCount").make_profile(np.random.default_rng(0))
    result = simulate([TraceJob(profile, 0.0)], FIFOScheduler(), ClusterConfig(64, 64))
    print(result.jobs[0].duration)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured record of every table and figure.
"""

from .core import (
    ClusterConfig,
    Event,
    EventQueue,
    EventType,
    Job,
    JobProfile,
    JobResult,
    JobState,
    PhaseStats,
    SimulationResult,
    SimulatorEngine,
    ColumnarEngine,
    TaskRecord,
    TraceJob,
    simulate,
)
from .parallel import ResultCache, SchedulerSpec, SimTask, simulate_many
from .planner import ClusterPlanner
from .service import ServiceClient, ServiceConfig, ServiceReply, SimulationServer
from .sweep import GridPoint, SweepCell, SweepResult, expand_grid, run_sweep
from .schedulers import (
    CapacityScheduler,
    CappedFIFOScheduler,
    FairScheduler,
    FIFOScheduler,
    MaxEDFScheduler,
    MinEDFScheduler,
    Scheduler,
    make_scheduler,
)

__version__ = "1.0.0"

__all__ = [
    "ClusterPlanner",
    "GridPoint",
    "SweepCell",
    "SweepResult",
    "expand_grid",
    "run_sweep",
    "ResultCache",
    "SchedulerSpec",
    "SimTask",
    "simulate_many",
    "ServiceClient",
    "ServiceConfig",
    "ServiceReply",
    "SimulationServer",
    "ClusterConfig",
    "Event",
    "EventQueue",
    "EventType",
    "Job",
    "JobProfile",
    "JobResult",
    "JobState",
    "PhaseStats",
    "SimulationResult",
    "SimulatorEngine",
    "ColumnarEngine",
    "TaskRecord",
    "TraceJob",
    "simulate",
    "CapacityScheduler",
    "CappedFIFOScheduler",
    "FairScheduler",
    "FIFOScheduler",
    "MaxEDFScheduler",
    "MinEDFScheduler",
    "Scheduler",
    "make_scheduler",
    "__version__",
]
