"""The ``simmr check`` gate: static lint + dynamic sanitizer in one pass.

``simmr lint`` proves code properties; a sanitized replay proves run
properties.  :func:`run_check` bundles both:

1. **Static half** — run the simlint registry (including the
   cross-module rules DET004/SIM004/API002) over the requested paths.
2. **Dynamic half** — for each requested scheduling policy, replay a
   trace twice on independently built engines with a collecting
   sanitizer attached (:func:`repro.sanitize.digest.dual_run`), then
   report every invariant violation and any replay divergence.

The trace is either loaded from a file or synthesised from the paper's
six-application mix with deadlines, so deadline-driven policies
(MinEDF/MaxEDF) exercise their slot-demand paths too.  The CLI wrapper
(``simmr check``) renders the report as text or JSON and exits non-zero
on any finding, violation or divergence.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

from ..analysis.baseline import BaselineEntry, load_baseline, partition_findings
from ..analysis.config import LintConfig
from ..analysis.findings import Finding, Severity
from ..analysis.reporter import render_text, summarize
from ..analysis.runner import lint_paths
from ..core.cluster import ClusterConfig
from ..core.engine import SimulatorEngine
from ..core.job import TraceJob
from .digest import DivergenceReport, dual_run
from .sanitizer import Violation

__all__ = [
    "PolicyCheck",
    "SchedulerCheck",
    "CheckReport",
    "default_check_trace",
    "run_check",
]

#: One static-path policy, one dynamic-path policy, one deadline/demand
#: policy — together they cover every engine allocation path.
DEFAULT_SCHEDULERS = ("fifo", "fair", "minedf")


@dataclass(frozen=True, slots=True)
class SchedulerCheck:
    """Dynamic-half result for one scheduling policy."""

    scheduler: str
    events: int
    makespan: float
    violations: tuple[Violation, ...]
    divergence: DivergenceReport

    @property
    def ok(self) -> bool:
        return not self.violations and not self.divergence.diverged

    def to_dict(self) -> dict:
        return {
            "scheduler": self.scheduler,
            "ok": self.ok,
            "events": self.events,
            "makespan": self.makespan,
            "violations": [
                {
                    "check_id": v.check_id,
                    "message": v.message,
                    "time": v.time,
                    "event_index": v.event_index,
                }
                for v in self.violations
            ],
            "divergence": self.divergence.to_dict(),
        }


@dataclass(frozen=True, slots=True)
class PolicyCheck:
    """Policy-half result: POL00x validation of one policy tree.

    ``digest``/``static`` describe the certified document (empty/None
    when the document failed schema validation outright).
    """

    policy: str
    findings: tuple[Finding, ...]
    digest: str = ""
    static: Optional[bool] = None

    @property
    def ok(self) -> bool:
        return not any(f.severity is Severity.ERROR for f in self.findings)

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "ok": self.ok,
            "digest": self.digest,
            "static": self.static,
            "findings": [f.to_dict() for f in self.findings],
        }


@dataclass(frozen=True, slots=True)
class CheckReport:
    """Combined outcome of the static and dynamic halves.

    ``findings`` are the *gating* static findings (with a baseline in
    play: only those absent from it); ``baselined`` is the accepted
    debt matched against the baseline, reported but not failing; a
    ``stale`` baseline entry — recorded debt that no longer fires —
    fails the gate so the ledger shrinks as debt is paid down.
    """

    findings: tuple[Finding, ...]
    runs: tuple[SchedulerCheck, ...]
    baselined: tuple[Finding, ...] = ()
    stale: tuple[BaselineEntry, ...] = ()
    policies: tuple[PolicyCheck, ...] = ()

    @property
    def ok(self) -> bool:
        return (not self.findings and not self.stale
                and all(r.ok for r in self.runs)
                and all(p.ok for p in self.policies))

    def merged_findings(self) -> list[dict]:
        """Lint, sanitizer and policy findings as ONE tagged list.

        Consumers of ``simmr check --format json`` previously had to
        stitch the static and dynamic halves together themselves (and
        most forgot the dynamic one).  Each entry carries a ``source``
        discriminator — ``"lint"`` for static findings, ``"sanitizer"``
        for runtime violations and replay divergences, ``"policy"`` for
        POL00x policy-tree certification findings — over an otherwise
        source-shaped payload.
        """
        merged: list[dict] = [
            {"source": "lint", **f.to_dict()} for f in self.findings
        ]
        for policy in self.policies:
            for f in policy.findings:
                merged.append({
                    "source": "policy",
                    "policy": policy.policy,
                    **f.to_dict(),
                })
        for run in self.runs:
            for v in run.violations:
                merged.append({
                    "source": "sanitizer",
                    "scheduler": run.scheduler,
                    "check_id": v.check_id,
                    "message": v.message,
                    "time": v.time,
                    "event_index": v.event_index,
                })
            if run.divergence.diverged:
                merged.append({
                    "source": "sanitizer",
                    "scheduler": run.scheduler,
                    "check_id": "DIVERGENCE",
                    "message": run.divergence.describe(),
                })
        return merged

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "findings": self.merged_findings(),
            "static": {
                "summary": summarize(self.findings),
                "findings": [f.to_dict() for f in self.findings],
                "baselined": len(self.baselined),
                "stale_baseline_entries": [e.format() for e in self.stale],
            },
            "dynamic": [r.to_dict() for r in self.runs],
            "policy": [p.to_dict() for p in self.policies],
        }

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render_text(self) -> str:
        lines = ["== static (simlint) =="]
        lines.append(render_text(self.findings))
        if self.baselined:
            lines.append(
                f"simlint: {len(self.baselined)} baselined finding(s) "
                f"(accepted debt, not gating)"
            )
        for entry in self.stale:
            lines.append(
                f"simlint: stale baseline entry (no longer fires, remove "
                f"it): {entry.format()}"
            )
        lines.append("")
        lines.append("== dynamic (simsan) ==")
        if not self.runs:
            lines.append("simsan: no dynamic runs requested")
        for run in self.runs:
            status = "ok" if run.ok else "FAIL"
            lines.append(
                f"{run.scheduler:10} {status:4} {run.events} events, "
                f"makespan {run.makespan:.1f}s, "
                f"{len(run.violations)} violation(s), "
                f"{'diverged' if run.divergence.diverged else 'replay identical'}"
            )
            for v in run.violations:
                lines.append(f"  {v}")
            if run.divergence.diverged:
                lines.append(f"  {run.divergence.describe()}")
        if self.policies:
            lines.append("")
            lines.append("== policy (POL00x certification) ==")
            for policy in self.policies:
                status = "ok" if policy.ok else "FAIL"
                shape = ("static" if policy.static
                         else "dynamic" if policy.static is not None else "?")
                lines.append(
                    f"{policy.policy:18} {status:4} {shape:8} "
                    f"digest {policy.digest or '-'} "
                    f"{len(policy.findings)} finding(s)"
                )
                for f in policy.findings:
                    lines.append(f"  {f.format()}")
        lines.append("")
        lines.append(f"simmr check: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def default_check_trace(jobs: int = 12, seed: int = 7) -> list[TraceJob]:
    """A small deterministic mixed workload with deadlines.

    Sampled from the paper's six-application mix with a fixed seed so
    every ``simmr check`` invocation replays the same trace; deadlines
    (factor 3 of the ARIA lower bound) give MinEDF/MaxEDF real work.
    """
    from ..trace.arrivals import ExponentialArrivals
    from ..trace.deadlines import DeadlineFactorPolicy
    from ..trace.synthetic import SyntheticTraceGen
    from ..workloads.apps import make_app_specs

    cluster = ClusterConfig(64, 64)
    gen = SyntheticTraceGen(
        list(make_app_specs().values()),
        ExponentialArrivals(60.0),
        deadline_policy=DeadlineFactorPolicy(3.0, cluster),
        seed=seed,
    )
    return gen.generate(jobs)


def run_check(
    paths: Sequence[Path] = (),
    *,
    config: Optional[LintConfig] = None,
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    trace: Optional[Sequence[TraceJob]] = None,
    jobs: int = 12,
    seed: int = 7,
    cluster: Optional[ClusterConfig] = None,
    slowstart: float = 0.05,
    static: bool = True,
    dynamic: bool = True,
    baseline: Optional[Path] = None,
    policy: bool = True,
    policy_files: Sequence[Path] = (),
) -> CheckReport:
    """Run the combined static + dynamic + policy correctness gate.

    ``baseline`` points at a committed accepted-findings JSON (see
    :mod:`repro.analysis.baseline`); static findings it records do not
    fail the gate, findings it does not record do, and entries that no
    longer fire fail it as stale.

    The policy half (``policy=True``) certifies the built-in example
    trees (:data:`repro.policy.EXAMPLE_POLICIES`) plus any
    ``policy_files`` (JSON documents on disk) with the POL00x rules;
    ERROR-severity policy findings fail the gate, and every finding is
    merged into the ``--format json`` report under ``source: policy``.
    """
    from ..schedulers import make_scheduler

    findings: tuple[Finding, ...] = ()
    baselined: tuple[Finding, ...] = ()
    stale: tuple[BaselineEntry, ...] = ()
    if static and paths:
        findings = tuple(lint_paths(paths, config=config or LintConfig()))
        if baseline is not None:
            new, matched, stale_entries = partition_findings(
                findings, load_baseline(baseline)
            )
            findings = tuple(new)
            baselined = tuple(matched)
            stale = tuple(stale_entries)

    runs: list[SchedulerCheck] = []
    if dynamic:
        check_trace = list(trace) if trace is not None else default_check_trace(jobs, seed)
        check_cluster = cluster or ClusterConfig(64, 64)
        for name in schedulers:

            def factory(name: str = name) -> SimulatorEngine:
                return SimulatorEngine(
                    check_cluster,
                    make_scheduler(name),
                    min_map_percent_completed=slowstart,
                )

            outcome = dual_run(factory, check_trace)
            runs.append(
                SchedulerCheck(
                    scheduler=name,
                    events=outcome.results[0].events_processed,
                    makespan=outcome.results[0].makespan,
                    violations=outcome.violations[0] + outcome.violations[1],
                    divergence=outcome.report,
                )
            )
    policies: list[PolicyCheck] = []
    if policy:
        from ..policy import EXAMPLE_POLICIES, policy_digest, validate_policy

        documents: list[tuple[str, object]] = [
            (name, doc) for name, doc in sorted(EXAMPLE_POLICIES.items())
        ]
        for path in policy_files:
            try:
                documents.append((str(path), path.read_text()))
            except OSError as exc:
                policies.append(PolicyCheck(
                    policy=str(path),
                    findings=(Finding(
                        path=str(path), line=0, col=0, rule_id="POL001",
                        severity=Severity.ERROR,
                        message=f"unreadable policy file: {exc}",
                    ),),
                ))
        for label, document in documents:
            report = validate_policy(document, label=label)
            doc = report.doc
            policies.append(PolicyCheck(
                policy=label,
                findings=report.findings,
                digest=policy_digest(doc) if doc is not None else "",
                static=doc.is_static() if doc is not None else None,
            ))

    return CheckReport(
        findings=tuple(findings),
        runs=tuple(runs),
        baselined=baselined,
        stale=stale,
        policies=tuple(policies),
    )
