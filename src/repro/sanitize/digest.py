"""Streamed event digests and replay-divergence detection.

The determinism contract (``docs/linting.md``) promises that replaying
one trace twice yields the *identical* event stream.  Static analysis
(DET001/DET002/DET004) proves the absence of known nondeterminism
sources; this module checks the contract *empirically*: each sanitized
run streams every popped event ``(time, type, job_id, task_index)``
into a BLAKE2b digest, and :func:`dual_run` executes the same trace on
two independently built engines and compares the fingerprints.  When
they disagree the kept event streams are diffed to name the first
diverging event — the point to start debugging from.

The digest deliberately excludes the heap sequence number: two runs
that schedule the same tasks at the same times in the same order are
equivalent even if internal push counters drift (they do not today,
but the contract is about observable behaviour).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from ..core.events import EventType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.engine import SimulatorEngine
    from ..core.job import TraceJob
    from ..core.results import SimulationResult
    from .sanitizer import Violation

__all__ = [
    "EventDigest",
    "DigestRecorder",
    "DivergenceReport",
    "DualRunOutcome",
    "compare_digests",
    "dual_run",
    "trace_digest",
]

# One packed record per event: float64 time + three int32 fields.
_PACK = struct.Struct("<dlll").pack

#: The same 20-byte packed layout as ``_PACK``, as a numpy record dtype
#: (field dtypes listed explicitly → packed, no alignment padding), so a
#: whole event stream can be hashed in one buffer update.
_PACK_DTYPE = [
    ("time", "<f8"),
    ("etype", "<i4"),
    ("job_id", "<i4"),
    ("task_index", "<i4"),
]


def trace_digest(trace: Sequence["TraceJob"]) -> str:
    """Content digest of a replayable trace (the cache-key input).

    BLAKE2b over the canonical JSON of the trace's
    :func:`~repro.trace.schema.trace_to_dict` document (sorted keys, no
    whitespace), so two traces digest equally iff they would serialize
    identically — the same identity the trace files and the trace
    database use.  :mod:`repro.parallel` keys its content-addressed
    result cache on this together with the scheduler and engine
    configuration.
    """
    import json

    from ..trace.schema import trace_to_dict

    payload = json.dumps(trace_to_dict(trace), sort_keys=True, separators=(",", ":"))
    return blake2b(payload.encode(), digest_size=16).hexdigest()


def _describe_event(event: tuple[float, int, int, int]) -> str:
    time, etype, job_id, task_index = event
    try:
        name = EventType(etype).name
    except ValueError:  # pragma: no cover - defensive
        name = f"type{etype}"
    task = "" if task_index < 0 else f", task {task_index}"
    return f"{name}(job {job_id}{task}) at t={time:g}"


class EventDigest:
    """Order-sensitive fingerprint of a simulation's event stream.

    ``update`` is called once per popped event by a
    :class:`~repro.sanitize.sanitizer.Sanitizer` carrying this digest.
    With ``keep_events=True`` (the default) the raw
    ``(time, type, job_id, task_index)`` tuples are retained so a
    mismatch can be localised to the first diverging event; disable it
    to fingerprint huge traces in O(1) memory.
    """

    __slots__ = ("keep_events", "count", "events", "_hash")

    def __init__(self, *, keep_events: bool = True) -> None:
        self.keep_events = keep_events
        self.reset()

    def reset(self) -> None:
        self.count = 0
        self.events: list[tuple[float, int, int, int]] = []
        self._hash = blake2b(digest_size=16)

    def update(self, time: float, etype: int, job_id: int, task_index: int) -> None:
        self._hash.update(_PACK(time, etype, job_id, task_index))
        self.count += 1
        if self.keep_events:
            self.events.append((time, etype, job_id, task_index))

    def update_many(self, times, etypes, job_ids, task_indices) -> None:
        """Bulk :meth:`update`: whole event stream in one hash call.

        Accepts parallel arrays (any numpy-coercible sequences) and
        hashes them through the exact ``_PACK`` byte layout — one packed
        record buffer, one BLAKE2b update — so the digest is
        byte-for-byte what per-event :meth:`update` calls would produce.
        This is what lets the columnar kernel fingerprint a
        400k-event run without paying 400k python-level hash calls.
        """
        import numpy as np

        rec = np.empty(len(times), dtype=_PACK_DTYPE)
        rec["time"] = times
        rec["etype"] = etypes
        rec["job_id"] = job_ids
        rec["task_index"] = task_indices
        self._hash.update(rec.tobytes())
        self.count += len(rec)
        if self.keep_events:
            self.events.extend(
                zip(
                    rec["time"].tolist(),
                    rec["etype"].tolist(),
                    rec["job_id"].tolist(),
                    rec["task_index"].tolist(),
                )
            )

    def hexdigest(self) -> str:
        return self._hash.hexdigest()


class DigestRecorder:
    """Minimal sanitizer stand-in that *only* streams the event digest.

    Implements the four engine hooks (``begin_run`` / ``observe_pop`` /
    ``observe_handled`` / ``end_run``) that the sanitized run-loop
    branch calls, but performs no invariant checking — one digest update
    per popped event and nothing else.  This is what the sweep layers
    (:mod:`repro.sweep`, :mod:`repro.parallel`) install to fingerprint
    every run cheaply: the full :class:`~repro.sanitize.sanitizer.Sanitizer`
    costs roughly a 5x slowdown, the recorder a few percent.

    The digest is identical to the one a full sanitizer carrying the
    same :class:`EventDigest` would produce (both hash the popped
    ``(time, type, job_id, task_index)`` stream), so fingerprints from
    checked and unchecked runs are directly comparable.
    """

    __slots__ = ("digest", "violations")

    #: Observe-only: never reads engine state, so the columnar kernel
    #: can serve it from the reconstructed event stream instead of
    #: falling back to the object engine (the full Sanitizer inspects
    #: per-event engine state and declares ``inspects_state = True``).
    inspects_state = False

    def __init__(self, digest: Optional[EventDigest] = None) -> None:
        self.digest = digest if digest is not None else EventDigest(keep_events=False)
        #: Always empty — kept so callers can treat any installed
        #: sanitizer uniformly (``engine.sanitizer.violations``).
        self.violations: list = []

    def begin_run(self, engine: "SimulatorEngine", trace: Sequence["TraceJob"]) -> None:
        self.digest.reset()

    def observe_pop(
        self, time: float, etype: int, seq: int, job_id: int, task_index: int
    ) -> None:
        self.digest.update(time, etype, job_id, task_index)

    def observe_handled(self, engine: "SimulatorEngine", job: object, etype: int) -> None:
        pass

    def end_run(self, engine: "SimulatorEngine") -> None:
        pass

    def hexdigest(self) -> str:
        return self.digest.hexdigest()


@dataclass(frozen=True, slots=True)
class DivergenceReport:
    """Outcome of comparing two runs' event digests (check ``DIV001``)."""

    diverged: bool
    digest_a: str
    digest_b: str
    count_a: int
    count_b: int
    #: Index (0-based) of the first differing event, when both digests
    #: kept their event streams; None for digest-only comparisons.
    first_index: Optional[int] = None
    event_a: Optional[tuple[float, int, int, int]] = None
    event_b: Optional[tuple[float, int, int, int]] = None

    def describe(self) -> str:
        if not self.diverged:
            return f"runs identical: {self.count_a} events, digest {self.digest_a}"
        if self.first_index is None:
            return (
                f"DIV001: runs diverged (digest {self.digest_a} != "
                f"{self.digest_b}, {self.count_a} vs {self.count_b} events)"
            )
        a = _describe_event(self.event_a) if self.event_a else "<stream ended>"
        b = _describe_event(self.event_b) if self.event_b else "<stream ended>"
        return (
            f"DIV001: runs diverged at event #{self.first_index}: "
            f"first run saw {a}, second run saw {b}"
        )

    def to_dict(self) -> dict:
        return {
            "diverged": self.diverged,
            "digest_a": self.digest_a,
            "digest_b": self.digest_b,
            "count_a": self.count_a,
            "count_b": self.count_b,
            "first_index": self.first_index,
            "event_a": list(self.event_a) if self.event_a else None,
            "event_b": list(self.event_b) if self.event_b else None,
        }


def compare_digests(a: EventDigest, b: EventDigest) -> DivergenceReport:
    """Compare two per-run digests, localising the first mismatch."""
    diverged = a.hexdigest() != b.hexdigest() or a.count != b.count
    first_index = None
    event_a = None
    event_b = None
    if diverged and a.keep_events and b.keep_events:
        limit = max(len(a.events), len(b.events))
        for i in range(limit):
            ea = a.events[i] if i < len(a.events) else None
            eb = b.events[i] if i < len(b.events) else None
            if ea != eb:
                first_index, event_a, event_b = i, ea, eb
                break
    return DivergenceReport(
        diverged=diverged,
        digest_a=a.hexdigest(),
        digest_b=b.hexdigest(),
        count_a=a.count,
        count_b=b.count,
        first_index=first_index,
        event_a=event_a,
        event_b=event_b,
    )


@dataclass(frozen=True, slots=True)
class DualRunOutcome:
    """Everything :func:`dual_run` learned from replaying a trace twice."""

    report: DivergenceReport
    results: tuple["SimulationResult", "SimulationResult"]
    violations: tuple[tuple["Violation", ...], tuple["Violation", ...]] = field(
        default=((), ())
    )

    @property
    def ok(self) -> bool:
        return not self.report.diverged and not any(self.violations)


def dual_run(
    engine_factory: Callable[[], "SimulatorEngine"],
    trace: Sequence["TraceJob"],
    *,
    keep_events: bool = True,
) -> DualRunOutcome:
    """Replay ``trace`` twice on independently built engines and compare.

    ``engine_factory`` must return a *fresh* engine **and** a fresh
    scheduler on every call — reusing a scheduler would let first-run
    state leak into the second run and mask (or fabricate) divergence.
    Each engine gets a fresh collecting sanitizer (``fail_fast=False``)
    carrying an :class:`EventDigest`, replacing any sanitizer the
    factory installed; invariant violations are reported alongside the
    divergence verdict rather than raised.
    """
    from .sanitizer import Sanitizer

    digests: list[EventDigest] = []
    results = []
    violations = []
    for _ in range(2):
        engine = engine_factory()
        digest = EventDigest(keep_events=keep_events)
        engine.sanitizer = Sanitizer(fail_fast=False, digest=digest)
        results.append(engine.run(trace))
        digests.append(digest)
        violations.append(tuple(engine.sanitizer.violations))
    return DualRunOutcome(
        report=compare_digests(digests[0], digests[1]),
        results=(results[0], results[1]),
        violations=(violations[0], violations[1]),
    )
