"""Runtime invariant checks for the SimMR simulator engine.

A :class:`Sanitizer` instance hooks the four engine callbacks
(``begin_run`` / ``observe_pop`` / ``observe_handled`` / ``end_run``)
that :class:`~repro.core.engine.SimulatorEngine` invokes on its sanitized
run-loop branch.  Each check has a stable identifier (catalogued in
``docs/sanitizer.md``) so violations can be asserted on in tests and
grepped in CI logs:

========  =============================================================
``EVT001``  events popped out of ``(time, type, seq)`` order — a handler
            scheduled an event in the simulated past ("time travel")
``EVT002``  event with a negative simulated timestamp
``SLT001``  map/reduce slot conservation broken (``free + running !=
            capacity`` or free slots out of ``[0, capacity]``)
``LIF001``  completion counter out of bounds (regressed, exceeded the
            task count, or exceeded the dispatch counter)
``LIF002``  completion counter changed outside the matching departure
            event, or jumped by more than one per event
``LIF003``  illegal job state transition (the only legal path is
            PENDING -> RUNNING -> COMPLETED)
``LIF004``  completion bookkeeping broken (COMPLETED with unfinished
            tasks, missing ``completion_time``, or a completion time
            that later changed)
``LIF005``  dispatch counter regressed without preemption enabled
``OVL001``  reduce-task phase bounds violated: a filler never rewritten,
            ``start <= shuffle_end <= end`` broken, a first-wave shuffle
            finishing before the map stage, or a first-wave reduce
            starting after it
``OVL002``  recorded task duration disagrees with the trace profile
``FIN001``  slots not fully returned at end of run
========  =============================================================

With ``fail_fast=True`` (the default — what ``SIMMR_SANITIZE=1`` gives
you) the first violation raises :class:`SimsanViolation` at the exact
event that broke the invariant, so the failure is attributable.  With
``fail_fast=False`` violations accumulate on :attr:`Sanitizer.violations`
for inspection — the mode :func:`repro.sanitize.digest.dual_run` and
``simmr check`` use.

The sanitizer reads engine state; it never mutates it, so a sanitized
run's schedule is byte-identical to an unsanitized one (the divergence
digest relies on this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from ..core.job import Job, JobState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.engine import SimulatorEngine
    from ..core.job import TraceJob
    from .digest import EventDigest

__all__ = ["Violation", "SimsanViolation", "Sanitizer"]

# Tolerance for floating-point phase arithmetic (durations are sums of
# float64 trace values; exact equality would be too strict only when a
# shuffle model recomputes durations).
_EPS = 1e-9

# Event-type ints, mirrored from the engine's hot-loop constants.
_MAP_DEP = 0
_RED_DEP = 2

_LEGAL_TRANSITIONS = {
    JobState.PENDING: (JobState.PENDING, JobState.RUNNING),
    JobState.RUNNING: (JobState.RUNNING, JobState.COMPLETED),
    JobState.COMPLETED: (JobState.COMPLETED,),
}


@dataclass(frozen=True, slots=True)
class Violation:
    """One detected invariant violation.

    ``event_index`` is the 1-based position in the popped event stream
    (0 for violations found at ``end_run``); ``time`` is the simulated
    time of that event.
    """

    check_id: str
    message: str
    time: float
    event_index: int

    def __str__(self) -> str:
        return (
            f"{self.check_id} at t={self.time:g} "
            f"(event #{self.event_index}): {self.message}"
        )


class SimsanViolation(RuntimeError):
    """Raised by a ``fail_fast`` sanitizer at the first violation."""

    def __init__(self, violation: Violation) -> None:
        super().__init__(str(violation))
        self.violation = violation


class Sanitizer:
    """Event-granular invariant checker attached to a simulator engine.

    One sanitizer serves one engine; ``begin_run`` resets all per-run
    state (including collected violations), so re-running the engine
    re-checks from scratch.  Attach an :class:`~repro.sanitize.digest.
    EventDigest` via ``digest`` to additionally fingerprint the event
    stream for replay-divergence comparison.
    """

    __slots__ = (
        "fail_fast",
        "digest",
        "violations",
        "_cluster",
        "_preempt",
        "_last_key",
        "_events",
        "_now",
        "_snaps",
    )

    #: Invariant checks read per-event engine state (slot counters, job
    #: lifecycle), so the columnar kernel cannot serve this sanitizer
    #: from a reconstructed event stream — it falls back to the object
    #: engine.  Observe-only consumers (DigestRecorder) set this False.
    inspects_state = True

    def __init__(
        self,
        *,
        fail_fast: bool = True,
        digest: "EventDigest | None" = None,
    ) -> None:
        self.fail_fast = fail_fast
        self.digest = digest
        self.violations: list[Violation] = []
        self._cluster = None
        self._preempt = False
        self._last_key: Optional[tuple[float, int, int]] = None
        self._events = 0
        self._now = 0.0
        # job_id -> (state, maps_dispatched, maps_completed,
        #            reduces_dispatched, reduces_completed, completion_time)
        self._snaps: dict[int, tuple] = {}

    # ------------------------------------------------------------------ #
    # engine callbacks
    # ------------------------------------------------------------------ #

    def begin_run(self, engine: "SimulatorEngine", trace: Sequence["TraceJob"]) -> None:
        """Reset per-run state; called by the engine before the first pop."""
        self.violations = []
        self._cluster = engine.cluster
        self._preempt = engine.preemption
        self._last_key = None
        self._events = 0
        self._now = 0.0
        self._snaps = {}
        if self.digest is not None:
            self.digest.reset()

    def observe_pop(
        self, now: float, etype: int, seq: int, job_id: int, task_index: int
    ) -> None:
        """Check heap-pop order; called for every event, before handling."""
        self._events += 1
        self._now = now
        if now < 0.0:
            self._violate("EVT002", f"event has negative simulated time {now!r}")
        key = (now, etype, seq)
        last = self._last_key
        if last is not None and key < last:
            self._violate(
                "EVT001",
                f"event {key} popped after {last}: a handler scheduled an "
                "event in the simulated past",
            )
        self._last_key = key
        if self.digest is not None:
            self.digest.update(now, etype, job_id, task_index)

    def observe_handled(self, engine: "SimulatorEngine", job: Job, etype: int) -> None:
        """Check slot conservation and the handled job's lifecycle."""
        running_maps = 0
        running_reduces = 0
        for j in engine._job_q:
            running_maps += j.maps_dispatched - j.maps_completed
            running_reduces += j.reduces_dispatched - j.reduces_completed
        err = engine.cluster.slot_accounting_error(
            engine._free_map_slots,
            engine._free_reduce_slots,
            running_maps,
            running_reduces,
        )
        if err is not None:
            self._violate("SLT001", err)
        self._check_lifecycle(job, etype)

    def end_run(self, engine: "SimulatorEngine") -> None:
        """Whole-run checks once the event heap has drained."""
        cluster = engine.cluster
        if engine._free_map_slots != cluster.map_slots:
            self._violate(
                "FIN001",
                f"run ended with {engine._free_map_slots}/{cluster.map_slots} "
                "map slots free: a map slot leaked",
                final=True,
            )
        if engine._free_reduce_slots != cluster.reduce_slots:
            self._violate(
                "FIN001",
                f"run ended with {engine._free_reduce_slots}/"
                f"{cluster.reduce_slots} reduce slots free: a reduce slot "
                "leaked",
                final=True,
            )
        jobs = engine._jobs
        for rec in engine._records:
            if rec.killed:
                continue  # preempted attempt: end is the kill time
            job = jobs[rec.job_id]
            where = f"{rec.kind} task {rec.job_id}.{rec.index}"
            if rec.kind == "map":
                expected = job.profile.map_duration(rec.index)
                if not math.isclose(
                    rec.end - rec.start, expected, rel_tol=1e-9, abs_tol=_EPS
                ):
                    self._violate(
                        "OVL002",
                        f"{where} ran for {rec.end - rec.start!r}s but the "
                        f"profile says {expected!r}s",
                        final=True,
                    )
                continue
            if not math.isfinite(rec.end) or rec.shuffle_end is None:
                self._violate(
                    "OVL001",
                    f"{where} is still an infinite filler: ALL_MAPS_FINISHED "
                    "never rewrote its duration",
                    final=True,
                )
                continue
            if not (rec.start - _EPS <= rec.shuffle_end <= rec.end + _EPS):
                self._violate(
                    "OVL001",
                    f"{where} phase boundary out of order: start={rec.start!r}, "
                    f"shuffle_end={rec.shuffle_end!r}, end={rec.end!r}",
                    final=True,
                )
            if engine.shuffle_model is None:
                expected = job.profile.reduce_duration(rec.index)
                if not math.isclose(
                    rec.end - rec.shuffle_end, expected, rel_tol=1e-9, abs_tol=_EPS
                ):
                    self._violate(
                        "OVL002",
                        f"{where} reduce phase ran for "
                        f"{rec.end - rec.shuffle_end!r}s but the profile says "
                        f"{expected!r}s",
                        final=True,
                    )
            mse = job.map_stage_end
            if rec.first_wave and mse is not None:
                if rec.start > mse + _EPS:
                    self._violate(
                        "OVL001",
                        f"{where} is marked first-wave but started at "
                        f"{rec.start!r}, after the map stage ended at {mse!r}",
                        final=True,
                    )
                if rec.shuffle_end < mse - _EPS:
                    self._violate(
                        "OVL001",
                        f"{where} first-wave shuffle finished at "
                        f"{rec.shuffle_end!r}, before the last map at {mse!r} "
                        "— overlapping shuffles cannot finish before the map "
                        "stage (paper Section III-B)",
                        final=True,
                    )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _check_lifecycle(self, job: Job, etype: int) -> None:
        snap = self._snaps.get(job.job_id)
        if snap is None:
            snap = (JobState.PENDING, 0, 0, 0, 0, None)
        prev_state, pmd, pmc, prd, prc, pct = snap
        state = job.state
        md, mc = job.maps_dispatched, job.maps_completed
        rd, rc = job.reduces_dispatched, job.reduces_completed
        ct = job.completion_time
        name = f"job {job.job_id} ({job.name})"

        if state not in _LEGAL_TRANSITIONS[prev_state]:
            self._violate(
                "LIF003",
                f"{name} jumped from {prev_state.value} to {state.value}",
            )
        for kind, completed, prev_completed, dispatched, total, dep in (
            ("map", mc, pmc, md, job.num_maps, _MAP_DEP),
            ("reduce", rc, prc, rd, job.num_reduces, _RED_DEP),
        ):
            if completed < prev_completed:
                self._violate(
                    "LIF001",
                    f"{name} {kind}s_completed regressed "
                    f"{prev_completed} -> {completed}",
                )
            elif completed > total:
                self._violate(
                    "LIF001",
                    f"{name} completed {completed} {kind}s of {total}: a task "
                    "completed twice",
                )
            elif completed > dispatched:
                self._violate(
                    "LIF001",
                    f"{name} completed {completed} {kind}s but only "
                    f"{dispatched} were dispatched",
                )
            delta = completed - prev_completed
            if delta > 1:
                self._violate(
                    "LIF002",
                    f"{name} completed {delta} {kind} tasks in one event",
                )
            elif delta == 1 and etype != dep:
                self._violate(
                    "LIF002",
                    f"{name} {kind}s_completed advanced outside a {kind} "
                    "departure event",
                )
        if not self._preempt and (md < pmd or rd < prd):
            self._violate(
                "LIF005",
                f"{name} dispatch counters regressed (maps {pmd} -> {md}, "
                f"reduces {prd} -> {rd}) with preemption disabled",
            )
        if state is JobState.COMPLETED:
            if not job.is_complete:
                self._violate(
                    "LIF004",
                    f"{name} marked COMPLETED with {mc}/{job.num_maps} maps "
                    f"and {rc}/{job.num_reduces} reduces done",
                )
            if ct is None:
                self._violate(
                    "LIF004", f"{name} is COMPLETED but has no completion_time"
                )
        if pct is not None and ct != pct:
            self._violate(
                "LIF004", f"{name} completion_time changed {pct!r} -> {ct!r}"
            )
        self._snaps[job.job_id] = (state, md, mc, rd, rc, ct)

    def _violate(self, check_id: str, message: str, *, final: bool = False) -> None:
        violation = Violation(
            check_id=check_id,
            message=message,
            time=self._now,
            event_index=0 if final else self._events,
        )
        if self.fail_fast:
            raise SimsanViolation(violation)
        self.violations.append(violation)
