"""simsan — the SimMR runtime simulation sanitizer.

Static analysis (:mod:`repro.analysis`) proves properties of the *code*;
this package checks properties of a *run*.  An opt-in instrumentation
layer (``SIMMR_SANITIZE=1``, ``simmr replay --sanitize``, or an explicit
``SimulatorEngine(..., sanitize=True)``) hooks the engine's event loop
and verifies, at event granularity:

* event-time monotonicity and heap pop order (``EVT*``),
* map/reduce slot conservation against the cluster capacity (``SLT*``),
* the per-task/job lifecycle state machine — arrival before dispatch,
  no double-completion, counters within bounds (``LIF*``),
* the paper's filler-reduce / first-shuffle overlap bounds (``OVL*``),
* and, via a streamed event digest, bit-exact replay equivalence of two
  runs of the same trace (``DIV*``; :func:`~repro.sanitize.digest.dual_run`).

When disabled the engine runs its original unchecked loop — the branch
is taken once per ``run()``, so the off path has zero per-event cost
(``benchmarks/bench_sanitizer_overhead.py`` asserts it).

``simmr check`` (:mod:`repro.sanitize.check`) bundles the static and
dynamic halves into one gate.  See ``docs/sanitizer.md``.
"""

from .digest import (
    DigestRecorder,
    DivergenceReport,
    DualRunOutcome,
    EventDigest,
    compare_digests,
    dual_run,
    trace_digest,
)
from .sanitizer import Sanitizer, SimsanViolation, Violation

__all__ = [
    "Sanitizer",
    "SimsanViolation",
    "Violation",
    "DigestRecorder",
    "EventDigest",
    "trace_digest",
    "DivergenceReport",
    "DualRunOutcome",
    "compare_digests",
    "dual_run",
]
