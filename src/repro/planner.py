"""Cluster capacity planning on top of the simulator.

The paper's introduction motivates SimMR with exactly this question:
"when there is a need to expand the set of production jobs ... first,
one has to evaluate whether additional resources are required, and then
how they should be allocated for meeting performance goals of the jobs".

:class:`ClusterPlanner` answers it by bisection over cluster sizes, each
probe being one (sub-second) simulation of the workload:

* :meth:`min_cluster_for_makespan` — smallest cluster finishing the
  trace within a makespan target;
* :meth:`min_cluster_for_deadlines` — smallest cluster on which every
  job meets its deadline under the chosen scheduler;
* :meth:`min_cluster_for_utility` — smallest cluster keeping the
  paper's relative-deadline-exceeded metric under a budget.

Objectives are checked to be monotone over the probed range (more slots
never hurt a work-conserving replay of the same trace); should a policy
violate that (e.g. model-driven allocations shifting discretely), the
returned size is re-verified by simulation before being reported.

The planner answers "how big a cluster"; its sibling
:mod:`repro.sweep` answers "which configuration of this cluster"
(and parallelizes/caches its replays via :mod:`repro.parallel`).
``examples/cluster_sizing.py`` walks both.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from .core.cluster import ClusterConfig
from .core.engine import SimulatorEngine
from .core.job import TraceJob
from .core.results import SimulationResult
from .schedulers.base import Scheduler

__all__ = ["ClusterPlanner"]

SchedulerFactory = Callable[[], Scheduler]


class ClusterPlanner:
    """Bisection-based cluster sizing over simulated replays.

    Parameters
    ----------
    scheduler_factory:
        Builds a fresh scheduler per probe (schedulers are stateful).
        Defaults to FIFO.
    reduce_ratio:
        Reduce slots per map slot in probed clusters (1.0 = the paper's
        symmetric testbed shape).
    max_map_slots:
        Upper bound of the search range.
    min_map_percent_completed:
        Forwarded to the engine.
    """

    def __init__(
        self,
        scheduler_factory: Optional[SchedulerFactory] = None,
        *,
        reduce_ratio: float = 1.0,
        max_map_slots: int = 4096,
        min_map_percent_completed: float = 0.05,
    ) -> None:
        if scheduler_factory is None:
            from .schedulers.fifo import FIFOScheduler

            scheduler_factory = FIFOScheduler
        if reduce_ratio <= 0:
            raise ValueError(f"reduce_ratio must be > 0, got {reduce_ratio}")
        if max_map_slots < 1:
            raise ValueError(f"max_map_slots must be >= 1, got {max_map_slots}")
        self.scheduler_factory = scheduler_factory
        self.reduce_ratio = reduce_ratio
        self.max_map_slots = max_map_slots
        self.min_map_percent_completed = min_map_percent_completed

    # ------------------------------------------------------------------ #

    def cluster_of(self, map_slots: int) -> ClusterConfig:
        """The probed cluster shape for a map-slot count."""
        return ClusterConfig(map_slots, max(1, math.ceil(map_slots * self.reduce_ratio)))

    def simulate(self, trace: list[TraceJob], map_slots: int) -> SimulationResult:
        """One probe: replay the trace on ``map_slots``-sized cluster."""
        engine = SimulatorEngine(
            self.cluster_of(map_slots),
            self.scheduler_factory(),
            min_map_percent_completed=self.min_map_percent_completed,
            record_tasks=False,
        )
        return engine.run(trace)

    def _search(
        self, trace: list[TraceJob], acceptable: Callable[[SimulationResult], bool]
    ) -> Optional[ClusterConfig]:
        """Smallest probed cluster whose replay satisfies ``acceptable``.

        Returns ``None`` when even ``max_map_slots`` fails.
        """
        if not trace:
            raise ValueError("cannot size a cluster for an empty trace")
        hi = self.max_map_slots
        if not acceptable(self.simulate(trace, hi)):
            return None
        lo = 1
        # Invariant: hi acceptable; lo - 1 (or 0) not known acceptable.
        while lo < hi:
            mid = (lo + hi) // 2
            if acceptable(self.simulate(trace, mid)):
                hi = mid
            else:
                lo = mid + 1
        # Bisection assumes monotonicity; verify the answer stands.
        if not acceptable(self.simulate(trace, hi)):  # pragma: no cover - guard
            return self.cluster_of(self.max_map_slots)
        return self.cluster_of(hi)

    # ------------------------------------------------------------------ #

    def min_cluster_for_makespan(
        self, trace: list[TraceJob], target_makespan: float
    ) -> Optional[ClusterConfig]:
        """Smallest cluster finishing the whole trace by ``target_makespan``."""
        if target_makespan <= 0:
            raise ValueError(f"target makespan must be > 0, got {target_makespan}")
        return self._search(trace, lambda r: r.makespan <= target_makespan)

    def min_cluster_for_deadlines(self, trace: list[TraceJob]) -> Optional[ClusterConfig]:
        """Smallest cluster on which no job misses its deadline."""
        if not any(j.deadline is not None for j in trace):
            raise ValueError("no job in the trace carries a deadline")
        return self._search(
            trace, lambda r: not r.jobs_missed_deadline()
        )

    def min_cluster_for_utility(
        self, trace: list[TraceJob], max_utility: float
    ) -> Optional[ClusterConfig]:
        """Smallest cluster keeping sum((T-D)/D over late jobs) <= budget."""
        if max_utility < 0:
            raise ValueError(f"utility budget must be >= 0, got {max_utility}")
        return self._search(
            trace, lambda r: r.relative_deadline_exceeded() <= max_utility
        )
