"""Compile a validated policy tree into a live :class:`Scheduler`.

The compiler decides the cheapest scheduler shape the tree admits:

* every feature static → a :class:`CompiledStaticPolicy`
  (:class:`~repro.schedulers.base.StaticPriorityScheduler` subclass):
  the engine serves it from the O(log n) heap fast path and the
  columnar kernel accepts it, exactly like hand-written FIFO/EDF;
* any dynamic feature → a :class:`CompiledDynamicPolicy` evaluated per
  decision on the dynamic allocation path, like Fair.

Either way the priority key is ``(tree(job), submit_time, job_id)`` —
the forced tie-break makes every compiled policy a total order, so
replays are digest-reproducible by construction (an evolve winner's
pinned event digest is stable across processes and machines).

Trees compile to nests of plain closures (one per node) over
module-level feature accessors — no per-decision dict lookups or
interpretation overhead.  Single-term, unweighted leaves (what ``pick``
desugars to) collapse to a direct accessor call, which is what keeps a
tree-FIFO within 2x of hand-written FIFO per decision
(``BENCH_policy.json``).

Compiled schedulers hold closures and are deliberately *not* picklable;
they cross process boundaries symbolically instead, as the ``policy``
:class:`~repro.parallel.executor.SchedulerSpec` kind whose kwargs carry
the canonical tree JSON (see :func:`policy_spec`).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence, Union

import numpy as np

from ..core.cluster import ClusterConfig
from ..core.job import Job
from ..schedulers.base import ColumnarSchedulerMixin, Scheduler, StaticPriorityScheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.columns import SchedulerColumns
from .dsl import (
    FEATURES,
    Leaf,
    Node,
    PolicyDoc,
    Predicate,
    canonical_policy_json,
    policy_digest,
)
from .validate import parse_policy

__all__ = [
    "CompiledDynamicPolicy",
    "CompiledStaticPolicy",
    "compile_policy",
    "policy_spec",
]

_INF = math.inf

_OP_TABLE: dict[str, Callable[[float, float], bool]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class _EvalContext:
    """Per-decision state a dynamic tree may read.

    One instance lives on the scheduler and is refreshed in place per
    decision (no allocation on the hot path).  ``now`` is the narrow
    interface's only clock: the time of the last job arrival/departure
    hook — deterministic, hence digest-stable, though it lags task-level
    events (the interface exposes nothing finer; documented in
    docs/policies.md).
    """

    __slots__ = ("now", "queue_depth", "free_map", "free_reduce", "_work")

    def __init__(self) -> None:
        self.now = 0.0
        self.queue_depth = 0.0
        self.free_map = 0.0
        self.free_reduce = 0.0
        self._work: dict[int, float] = {}

    def total_work(self, job: Job) -> float:
        value = self._work.get(job.job_id)
        if value is None:
            value = job.profile.total_task_seconds()
            self._work[job.job_id] = value
        return value


_Accessor = Callable[[Job, _EvalContext], float]


def _deadline(job: Job, ctx: _EvalContext) -> float:
    return job.deadline if job.deadline is not None else _INF


def _relative_deadline(job: Job, ctx: _EvalContext) -> float:
    if job.deadline is None:
        return _INF
    return job.deadline - job.submit_time


def _deadline_slack(job: Job, ctx: _EvalContext) -> float:
    if job.deadline is None:
        return _INF
    return job.deadline - ctx.now


_ACCESSORS: dict[str, _Accessor] = {
    "submit_time": lambda job, ctx: job.submit_time,
    "deadline": _deadline,
    "relative_deadline": _relative_deadline,
    "has_deadline": lambda job, ctx: 1.0 if job.deadline is not None else 0.0,
    "num_maps": lambda job, ctx: float(job.num_maps),
    "num_reduces": lambda job, ctx: float(job.num_reduces),
    "total_tasks": lambda job, ctx: float(job.num_maps + job.num_reduces),
    "total_work": lambda job, ctx: ctx.total_work(job),
    "avg_map_duration": lambda job, ctx: job.profile.map_stats.avg,
    "avg_reduce_duration": lambda job, ctx: job.profile.reduce_stats.avg,
    "queue_depth": lambda job, ctx: ctx.queue_depth,
    "job_age": lambda job, ctx: ctx.now - job.submit_time,
    "deadline_slack": _deadline_slack,
    "map_fraction_completed": lambda job, ctx: job.map_fraction_completed(),
    "pending_maps": lambda job, ctx: float(job.pending_maps),
    "pending_reduces": lambda job, ctx: float(job.pending_reduces),
    "running_maps": lambda job, ctx: float(job.running_maps),
    "running_reduces": lambda job, ctx: float(job.running_reduces),
    "free_map_slots": lambda job, ctx: ctx.free_map,
    "free_reduce_slots": lambda job, ctx: ctx.free_reduce,
}
assert set(_ACCESSORS) == set(FEATURES), "accessor table drifted from vocabulary"


def _compile_leaf(leaf: Leaf) -> _Accessor:
    terms = tuple(
        (_ACCESSORS[term.feature], term.weight) for term in leaf.score_terms()
    )
    bias = 0.0 if leaf.pick is not None else leaf.bias
    if len(terms) == 1 and terms[0][1] == 1.0 and bias == 0.0:
        accessor = terms[0][0]

        def evaluate_direct(job: Job, ctx: _EvalContext) -> float:
            value = accessor(job, ctx)
            return value if value == value else _INF

        return evaluate_direct

    def evaluate(job: Job, ctx: _EvalContext) -> float:
        score = bias
        for accessor, weight in terms:
            score += weight * accessor(job, ctx)
        # nan (inf - inf across terms) would make comparisons
        # order-dependent; collapse it to "last" deterministically.
        return score if score == score else _INF

    return evaluate


def _compile_node(node: Node) -> _Accessor:
    if isinstance(node, Leaf):
        return _compile_leaf(node)
    assert isinstance(node, Predicate)
    accessor = _ACCESSORS[node.feature]
    op = _OP_TABLE[node.op]
    value = node.value
    then = _compile_node(node.then)
    otherwise = _compile_node(node.otherwise)

    def evaluate(job: Job, ctx: _EvalContext) -> float:
        if op(accessor(job, ctx), value):
            return then(job, ctx)
        return otherwise(job, ctx)

    return evaluate


# -- columnar evaluation (the kernel's vectorized epoch decisions) --------
#
# Every feature in the vocabulary is kernel-resident: derivable from the
# per-job state arrays the columnar kernel maintains in
# :class:`~repro.core.columns.SchedulerColumns`.  Each source below is
# the vectorized twin of the scalar accessor above — same float64
# arithmetic on the same operand values, so tree scores (and hence the
# dispatch choices and the event digest) are bit-identical between the
# object loop and the kernel.

_ColumnSource = Callable[["SchedulerColumns", Any], Any]


def _mfc_columns(view: "SchedulerColumns", ids: Any) -> Any:
    # Scalar twin returns 1.0 for map-less jobs, else mcomp / nmaps
    # (int/int true division == float64 division of exact values).
    nmaps = view.nmaps[ids]
    out = np.ones_like(nmaps)
    np.divide(view.mcomp[ids], nmaps, out=out, where=nmaps > 0.0)
    return out


_COLUMN_SOURCES: dict[str, _ColumnSource] = {
    "submit_time": lambda v, ids: v.submit[ids],
    "deadline": lambda v, ids: v.deadline[ids],
    "relative_deadline": lambda v, ids: v.rel_deadline[ids],
    "has_deadline": lambda v, ids: v.has_deadline[ids],
    "num_maps": lambda v, ids: v.nmaps[ids],
    "num_reduces": lambda v, ids: v.nreds[ids],
    "total_tasks": lambda v, ids: v.total_tasks[ids],
    "total_work": lambda v, ids: v.total_work[ids],
    "avg_map_duration": lambda v, ids: v.avg_map[ids],
    "avg_reduce_duration": lambda v, ids: v.avg_reduce[ids],
    "queue_depth": lambda v, ids: v.queue_depth,
    "job_age": lambda v, ids: v.now - v.submit[ids],
    "deadline_slack": lambda v, ids: v.deadline[ids] - v.now,
    "map_fraction_completed": _mfc_columns,
    "pending_maps": lambda v, ids: (v.nmaps - v.mdisp)[ids],
    "pending_reduces": lambda v, ids: (v.nreds - v.rdisp)[ids],
    "running_maps": lambda v, ids: (v.mdisp - v.mcomp)[ids],
    "running_reduces": lambda v, ids: (v.rdisp - v.rcomp)[ids],
    "free_map_slots": lambda v, ids: v.free_map,
    "free_reduce_slots": lambda v, ids: v.free_reduce,
}
assert set(_COLUMN_SOURCES) == set(FEATURES), (
    "columnar source table drifted from vocabulary"
)


def _compile_leaf_columns(leaf: Leaf) -> _ColumnSource:
    terms = tuple(
        (_COLUMN_SOURCES[term.feature], term.weight) for term in leaf.score_terms()
    )
    bias = 0.0 if leaf.pick is not None else leaf.bias
    if len(terms) == 1 and terms[0][1] == 1.0 and bias == 0.0:
        source = terms[0][0]

        def evaluate_direct(view: "SchedulerColumns", ids: Any) -> Any:
            value = source(view, ids)
            return np.where(value == value, value, _INF)

        return evaluate_direct

    def evaluate(view: "SchedulerColumns", ids: Any) -> Any:
        # Accumulate left to right, exactly like the scalar loop — the
        # IEEE result of a float sum depends on term order.
        score: Any = bias
        for source, weight in terms:
            score = score + weight * source(view, ids)
        return np.where(score == score, score, _INF)

    return evaluate


def _compile_node_columns(node: Node) -> _ColumnSource:
    if isinstance(node, Leaf):
        return _compile_leaf_columns(node)
    assert isinstance(node, Predicate)
    source = _COLUMN_SOURCES[node.feature]
    op = _OP_TABLE[node.op]
    value = node.value
    then = _compile_node_columns(node.then)
    otherwise = _compile_node_columns(node.otherwise)

    def evaluate(view: "SchedulerColumns", ids: Any) -> Any:
        # The comparison lambdas are elementwise on arrays; evaluating
        # both branches and selecting is value-identical to the scalar
        # short-circuit (branch evaluation is pure).
        mask = op(source(view, ids), value)
        return np.where(mask, then(view, ids), otherwise(view, ids))

    return evaluate


class CompiledStaticPolicy(StaticPriorityScheduler):
    """A state-free tree as a static-priority policy (heap/kernel path)."""

    def __init__(self, doc: PolicyDoc) -> None:
        self.doc = doc
        self.name = f"policy:{doc.name}"
        self.digest = policy_digest(doc)
        self._evaluate = _compile_node(doc.tree)
        self._ctx = _EvalContext()

    def priority_key(self, job: Job) -> tuple:
        return (self._evaluate(job, self._ctx), job.submit_time, job.job_id)


class CompiledDynamicPolicy(ColumnarSchedulerMixin, Scheduler):
    """A state-reading tree, evaluated per decision like Fair.

    The decision context is maintained from the only state the narrow
    interface provides: the arrival/departure hooks (clock, cluster
    shape, active-job set) and the eligible-job queue itself.

    Every dynamic feature in the vocabulary is kernel-resident, so the
    class also carries the columnar contract: the kernel evaluates the
    same tree as one vectorized expression over its
    :class:`~repro.core.columns.SchedulerColumns` state arrays
    (``columnar_key_columns``), producing bit-identical scores and thus
    bit-identical event digests — an evolve winner's pinned digest is
    stable across both engine paths.
    """

    static_priority = False

    def __init__(self, doc: PolicyDoc) -> None:
        self.doc = doc
        self.name = f"policy:{doc.name}"
        self.digest = policy_digest(doc)
        self._evaluate = _compile_node(doc.tree)
        self._evaluate_columns = _compile_node_columns(doc.tree)
        self._ctx = _EvalContext()
        features = doc.features()
        self._uses_slots = bool(
            features & {"free_map_slots", "free_reduce_slots"}
        )
        self._active: dict[int, Job] = {}
        self._now = 0.0
        self._cluster: Optional[ClusterConfig] = None

    def on_job_arrival(self, job: Job, time: float, cluster: ClusterConfig) -> None:
        if time > self._now:
            self._now = time
        self._cluster = cluster
        self._active[job.job_id] = job

    def on_job_departure(self, job: Job, time: float) -> None:
        if time > self._now:
            self._now = time
        self._active.pop(job.job_id, None)
        self._ctx._work.pop(job.job_id, None)

    def _choose(self, job_queue: Sequence[Job]) -> Optional[Job]:
        if not job_queue:
            return None
        ctx = self._ctx
        ctx.now = self._now
        ctx.queue_depth = float(len(job_queue))
        if self._uses_slots:
            busy_maps = 0
            busy_reduces = 0
            # integer sums are order-independent, so the dict's
            # insertion order cannot leak into the result
            for active in self._active.values():  # simlint: disable=DET003
                busy_maps += active.running_maps
                busy_reduces += active.running_reduces
            cluster = self._cluster
            map_slots = cluster.map_slots if cluster is not None else 0
            reduce_slots = cluster.reduce_slots if cluster is not None else 0
            ctx.free_map = float(max(0, map_slots - busy_maps))
            ctx.free_reduce = float(max(0, reduce_slots - busy_reduces))
        evaluate = self._evaluate
        return min(
            job_queue,
            key=lambda job: (evaluate(job, ctx), job.submit_time, job.job_id),
        )

    def choose_next_map_task(self, job_queue: Sequence[Job]) -> Optional[Job]:
        return self._choose(job_queue)

    def choose_next_reduce_task(self, job_queue: Sequence[Job]) -> Optional[Job]:
        return self._choose(job_queue)

    def columnar_key_columns(
        self, view: "SchedulerColumns", ids: Any, kind: str
    ) -> tuple:
        """``(tree score, submit)`` columns; the kernel appends job_id.

        ``errstate`` silences the invalid-op warnings of ``inf - inf``
        intermediates that the scalar path produces silently; the nan
        results collapse to ``_INF`` per leaf either way.
        """
        with np.errstate(invalid="ignore"):
            score = np.asarray(self._evaluate_columns(view, ids), dtype=np.float64)
        if score.ndim == 0:
            score = np.broadcast_to(score, ids.shape)
        return (score, view.submit[ids])


def compile_policy(
    source: Union[str, bytes, dict, PolicyDoc], *, label: str = "<policy>"
) -> Union[CompiledStaticPolicy, CompiledDynamicPolicy]:
    """Validate (unless already parsed) and compile one policy tree.

    Raises :class:`~repro.policy.dsl.PolicyError` (carrying POL00x
    findings) on an invalid document.
    """
    doc = source if isinstance(source, PolicyDoc) else parse_policy(source, label=label)
    if doc.is_static():
        return CompiledStaticPolicy(doc)
    return CompiledDynamicPolicy(doc)


def policy_spec(source: Union[str, bytes, dict, PolicyDoc]) -> "Any":
    """The symbolic :class:`SchedulerSpec` for one validated policy.

    The spec's kwargs carry the *canonical* tree JSON, so equal policies
    get equal content identities regardless of input formatting —
    ``simulate_many``'s cache key and the per-worker rebuild both hang
    off that string.
    """
    from ..parallel.executor import SchedulerSpec

    doc = source if isinstance(source, PolicyDoc) else parse_policy(source)
    return SchedulerSpec(
        kind="policy",
        name=doc.name,
        kwargs=(("tree", canonical_policy_json(doc)),),
    )
