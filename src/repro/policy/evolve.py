"""`simmr evolve`: seeded evolutionary search over policy trees.

The killer scenario the DSL unlocks (ROADMAP item 3): instead of
replaying hand-written policies one at a time, *generate* candidate
trees, score each against a deadline workload with the parallel
executor, and breed the winners.  Everything is a pure function of the
seed: trace generation, the initial population, mutation and
tournament draws all come from one ``random.Random(seed)``, candidate
fitness is memoized by canonical policy digest, and ties sort by
digest — so the winning tree *and its replay event digest* are
reproducible across runs, machines and worker counts (the CI smoke and
a tier-1 test pin them).

Fitness is the paper's deadline utility: the sum over late jobs of
``(T - D) / D`` (:meth:`SimulationResult.relative_deadline_exceeded`),
with total makespan as the tie-breaker — lower is better on both.  A
candidate *wins* only if it strictly beats both hand-written baselines
(FIFO and MaxEDF) on that tuple; `EvolveResult.beats_baselines` records
whether the search found one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from ..core.cluster import ClusterConfig
from ..core.job import TraceJob
from ..parallel.executor import SchedulerSpec, SimTask, simulate_many
from .dsl import (
    FEATURES,
    MAX_DEPTH,
    MAX_NODES,
    MAX_TERMS,
    OPS,
    PICK_RULES,
    Leaf,
    Node,
    PolicyDoc,
    Predicate,
    ScoreTerm,
    canonical_policy_json,
    policy_digest,
)
from .compiler import policy_spec
from .validate import validate_policy

__all__ = ["EvolveConfig", "EvolveResult", "evolve", "random_policy"]

#: Plausible threshold-sampling range per feature (seconds, counts,
#: fractions).  Only steers the random generator — validation does not
#: care — so the ranges just need to overlap the values real workloads
#: produce, or every predicate degenerates to a constant branch.
_SAMPLE_RANGES: dict[str, tuple[float, float]] = {
    "submit_time": (0.0, 2000.0),
    "deadline": (0.0, 4000.0),
    "relative_deadline": (0.0, 2500.0),
    "has_deadline": (0.0, 1.0),
    "num_maps": (0.0, 64.0),
    "num_reduces": (0.0, 32.0),
    "total_tasks": (0.0, 96.0),
    "total_work": (0.0, 30000.0),
    "avg_map_duration": (0.0, 120.0),
    "avg_reduce_duration": (0.0, 250.0),
    "queue_depth": (0.0, 16.0),
    "job_age": (0.0, 1500.0),
    "deadline_slack": (-500.0, 2000.0),
    "map_fraction_completed": (0.0, 1.0),
    "pending_maps": (0.0, 64.0),
    "pending_reduces": (0.0, 32.0),
    "running_maps": (0.0, 64.0),
    "running_reduces": (0.0, 32.0),
    "free_map_slots": (0.0, 64.0),
    "free_reduce_slots": (0.0, 64.0),
}
assert set(_SAMPLE_RANGES) == set(FEATURES)

_FEATURE_NAMES = tuple(sorted(FEATURES))
_PICK_NAMES = tuple(sorted(PICK_RULES))

#: Fitness: (sum of relative deadline excess, sum of makespans).
Fitness = tuple[float, float]


# ------------------------------------------------------------------ #
# random generation and mutation (valid by construction)
# ------------------------------------------------------------------ #

def _random_weight(rng: random.Random) -> float:
    # Log-uniform magnitude: features span seconds to tens of
    # thousands of task-seconds, so useful weights span decades.
    sign = 1.0 if rng.random() < 0.7 else -1.0
    return round(sign * 10.0 ** rng.uniform(-2.0, 1.0), 6)


def _random_threshold(rng: random.Random, feature: str) -> float:
    lo, hi = _SAMPLE_RANGES[feature]
    return round(rng.uniform(lo, hi), 6)


def _random_leaf(rng: random.Random) -> Leaf:
    if rng.random() < 0.3:
        return Leaf(pick=rng.choice(_PICK_NAMES))
    n_terms = rng.randint(1, 3)
    terms = tuple(
        ScoreTerm(rng.choice(_FEATURE_NAMES), _random_weight(rng))
        for _ in range(n_terms)
    )
    bias = round(rng.uniform(-100.0, 100.0), 6) if rng.random() < 0.3 else 0.0
    return Leaf(terms=terms, bias=bias)


def _random_node(rng: random.Random, depth: int, max_depth: int) -> Node:
    if depth >= max_depth or rng.random() < 0.5:
        return _random_leaf(rng)
    feature = rng.choice(_FEATURE_NAMES)
    return Predicate(
        feature=feature,
        op=rng.choice(OPS),
        value=_random_threshold(rng, feature),
        then=_random_node(rng, depth + 1, max_depth),
        otherwise=_random_node(rng, depth + 1, max_depth),
    )


def random_policy(
    rng: random.Random, name: str, *, max_depth: int = 3
) -> PolicyDoc:
    """A random policy document, valid by construction."""
    return PolicyDoc(name=name, tree=_random_node(rng, 0, max_depth))


def _mutate_leaf(rng: random.Random, leaf: Leaf) -> Leaf:
    if leaf.pick is not None or rng.random() < 0.2:
        return _random_leaf(rng)
    choice = rng.random()
    terms = list(leaf.terms)
    index = rng.randrange(len(terms))
    if choice < 0.4:  # perturb one weight
        term = terms[index]
        terms[index] = ScoreTerm(
            term.feature, round(term.weight * rng.uniform(0.25, 4.0), 6) or 1e-6
        )
    elif choice < 0.6:  # swap one feature
        terms[index] = ScoreTerm(rng.choice(_FEATURE_NAMES), terms[index].weight)
    elif choice < 0.8 and len(terms) < MAX_TERMS:  # grow a term
        terms.append(ScoreTerm(rng.choice(_FEATURE_NAMES), _random_weight(rng)))
    elif len(terms) > 1:  # drop a term
        del terms[index]
    else:
        terms[index] = ScoreTerm(terms[index].feature, _random_weight(rng))
    return Leaf(terms=tuple(terms), bias=leaf.bias)


def _mutate_node(rng: random.Random, node: Node, depth: int) -> Node:
    if isinstance(node, Leaf):
        if rng.random() < 0.15 and depth + 1 < MAX_DEPTH:
            # grow: wrap the leaf in a fresh predicate
            feature = rng.choice(_FEATURE_NAMES)
            return Predicate(
                feature=feature,
                op=rng.choice(OPS),
                value=_random_threshold(rng, feature),
                then=node,
                otherwise=_random_leaf(rng),
            )
        return _mutate_leaf(rng, node)
    assert isinstance(node, Predicate)
    choice = rng.random()
    if choice < 0.15:  # prune: collapse onto one branch
        return node.then if rng.random() < 0.5 else node.otherwise
    if choice < 0.35:  # retune the threshold
        return Predicate(node.feature, node.op,
                         _random_threshold(rng, node.feature),
                         node.then, node.otherwise)
    if choice < 0.45:  # flip the operator
        return Predicate(node.feature, rng.choice(OPS), node.value,
                         node.then, node.otherwise)
    if choice < 0.55:  # rebase on another feature
        feature = rng.choice(_FEATURE_NAMES)
        return Predicate(feature, node.op, _random_threshold(rng, feature),
                         node.then, node.otherwise)
    # recurse into one branch
    if rng.random() < 0.5:
        return Predicate(node.feature, node.op, node.value,
                         _mutate_node(rng, node.then, depth + 1), node.otherwise)
    return Predicate(node.feature, node.op, node.value,
                     node.then, _mutate_node(rng, node.otherwise, depth + 1))


def _crossover(rng: random.Random, a: Node, b: Node) -> Node:
    """Replace one random subtree of ``a`` with one random subtree of ``b``."""
    donor = _random_subtree(rng, b)

    def graft(node: Node, depth: int) -> Node:
        if isinstance(node, Leaf) or rng.random() < 0.3 or depth + 1 >= MAX_DEPTH:
            return donor
        assert isinstance(node, Predicate)
        if rng.random() < 0.5:
            return Predicate(node.feature, node.op, node.value,
                             graft(node.then, depth + 1), node.otherwise)
        return Predicate(node.feature, node.op, node.value,
                         node.then, graft(node.otherwise, depth + 1))

    return graft(a, 0)


def _random_subtree(rng: random.Random, node: Node) -> Node:
    while isinstance(node, Predicate) and rng.random() < 0.5:
        node = node.then if rng.random() < 0.5 else node.otherwise
    return node


def _seed_population() -> list[PolicyDoc]:
    """Domain-knowledge primitives the search starts from."""
    docs = [
        PolicyDoc("fifo-tree", Leaf(pick="fifo")),
        PolicyDoc("edf-tree", Leaf(pick="edf")),
        PolicyDoc("sjf-tree", Leaf(pick="sjf")),
        PolicyDoc("slack-tree", Leaf(pick="least_slack")),
        PolicyDoc("edf-sjf", Leaf(terms=(
            ScoreTerm("deadline", 1.0), ScoreTerm("total_work", 1.0),
        ))),
        PolicyDoc("gated-edf", Predicate(
            "has_deadline", ">=", 0.5,
            Leaf(pick="edf"), Leaf(pick="sjf"),
        )),
    ]
    return docs


# ------------------------------------------------------------------ #
# the search
# ------------------------------------------------------------------ #

@dataclass(frozen=True)
class EvolveConfig:
    """Everything one `simmr evolve` run depends on (all seeded)."""

    seed: int = 0
    population: int = 12
    generations: int = 5
    tournament: int = 3
    elites: int = 2
    #: Deadline workload: ``traces`` independent synthetic traces of
    #: ``jobs`` jobs each, deadline factor over the ARIA solo bound.
    jobs: int = 24
    traces: int = 2
    mean_interarrival: float = 30.0
    deadline_factor: float = 1.4
    map_slots: int = 32
    reduce_slots: int = 32
    slowstart: float = 0.05
    #: Parallel executor fan-out for each generation's scoring batch
    #: (<=1 = in-process; results are identical either way).
    workers: int = 0

    @property
    def cluster(self) -> ClusterConfig:
        return ClusterConfig(self.map_slots, self.reduce_slots)


@dataclass
class EvolveResult:
    """The reproducible artifact of one search."""

    winner: PolicyDoc
    winner_json: str
    winner_digest: str
    winner_fitness: Fitness
    #: One replay event digest per workload trace — the proof the
    #: winner's behaviour (not just its text) is pinned.
    winner_event_digests: tuple[str, ...]
    baselines: dict[str, dict[str, Any]]
    history: list[dict[str, Any]] = field(default_factory=list)
    evaluations: int = 0
    simulated: int = 0

    @property
    def beats_baselines(self) -> bool:
        return all(
            self.winner_fitness < tuple(entry["fitness"])
            for entry in self.baselines.values()
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "winner": self.winner.to_dict(),
            "winner_json": self.winner_json,
            "winner_digest": self.winner_digest,
            "winner_fitness": list(self.winner_fitness),
            "winner_event_digests": list(self.winner_event_digests),
            "baselines": self.baselines,
            "beats_baselines": self.beats_baselines,
            "history": self.history,
            "evaluations": self.evaluations,
            "simulated": self.simulated,
        }


def _make_workload(config: EvolveConfig) -> dict[str, list[TraceJob]]:
    from ..trace.arrivals import ExponentialArrivals
    from ..trace.deadlines import DeadlineFactorPolicy
    from ..trace.synthetic import SyntheticTraceGen
    from ..workloads.apps import make_app_specs

    traces: dict[str, list[TraceJob]] = {}
    for index in range(config.traces):
        gen = SyntheticTraceGen(
            list(make_app_specs().values()),
            ExponentialArrivals(config.mean_interarrival),
            deadline_policy=DeadlineFactorPolicy(
                config.deadline_factor, config.cluster
            ),
            seed=config.seed * 7919 + index,
        )
        traces[f"evolve-{index}"] = gen.generate(config.jobs)
    return traces


def _score_specs(
    traces: dict[str, list[TraceJob]],
    specs: Sequence[SchedulerSpec],
    config: EvolveConfig,
) -> list[tuple[Fitness, tuple[str, ...]]]:
    """Fitness and per-trace event digests for each spec, in order."""
    trace_ids = sorted(traces)
    tasks = [
        SimTask(
            trace_id=trace_id,
            scheduler=spec,
            cluster=config.cluster,
            slowstart=config.slowstart,
        )
        for spec in specs
        for trace_id in trace_ids
    ]
    outcomes = simulate_many(
        traces, tasks, workers=config.workers, cache=None, digest=True
    )
    scored: list[tuple[Fitness, tuple[str, ...]]] = []
    per_spec = len(trace_ids)
    for start in range(0, len(outcomes), per_spec):
        chunk = outcomes[start:start + per_spec]
        utility = sum(o.result.relative_deadline_exceeded() for o in chunk)
        makespan = sum(o.result.makespan for o in chunk)
        digests = tuple(o.result.event_digest or "" for o in chunk)
        scored.append(((round(utility, 9), round(makespan, 6)), digests))
    return scored


ProgressFn = Callable[[int, dict[str, Any]], None]


def evolve(
    config: EvolveConfig = EvolveConfig(),
    *,
    progress: Optional[ProgressFn] = None,
) -> EvolveResult:
    """Run the seeded tournament search; see the module docstring.

    ``progress(generation, stats)`` is called after each generation with
    the row that also lands in ``result.history``.
    """
    rng = random.Random(config.seed)
    traces = _make_workload(config)

    # Population: domain primitives first, random trees for the rest,
    # deduplicated by canonical digest.
    population: list[PolicyDoc] = []
    seen: set[str] = set()

    def admit(doc: PolicyDoc) -> bool:
        digest = policy_digest(doc)
        if digest in seen:
            return False
        if not validate_policy(doc.to_dict()).ok:
            return False
        seen.add(digest)
        population.append(doc)
        return True

    for doc in _seed_population():
        if len(population) < config.population:
            admit(doc)
    attempt = 0
    while len(population) < config.population and attempt < 1000:
        attempt += 1
        admit(random_policy(rng, f"gen0-{attempt}"))

    memo: dict[str, tuple[Fitness, tuple[str, ...]]] = {}
    simulated = 0

    def score_all(docs: Sequence[PolicyDoc]) -> None:
        nonlocal simulated
        fresh = [d for d in docs if policy_digest(d) not in memo]
        # one batch per generation: this is where the parallel executor
        # earns its keep
        unique: dict[str, PolicyDoc] = {}
        for doc in fresh:
            unique.setdefault(policy_digest(doc), doc)
        ordered = list(unique.items())
        if not ordered:
            return
        specs = [policy_spec(doc) for _, doc in ordered]
        results = _score_specs(traces, specs, config)
        simulated += len(specs) * len(traces)
        for (digest, _), outcome in zip(ordered, results):
            memo[digest] = outcome

    def ranked(docs: Sequence[PolicyDoc]) -> list[PolicyDoc]:
        return sorted(docs, key=lambda d: (memo[policy_digest(d)][0],
                                           policy_digest(d)))

    def tournament(docs: Sequence[PolicyDoc]) -> PolicyDoc:
        entrants = [docs[rng.randrange(len(docs))]
                    for _ in range(min(config.tournament, len(docs)))]
        return ranked(entrants)[0]

    history: list[dict[str, Any]] = []
    score_all(population)
    for generation in range(config.generations):
        population = ranked(population)
        best = population[0]
        best_fit = memo[policy_digest(best)][0]
        row = {
            "generation": generation,
            "best": best.name,
            "best_digest": policy_digest(best),
            "best_fitness": list(best_fit),
            "population": len(population),
            "simulated": simulated,
        }
        history.append(row)
        if progress is not None:
            progress(generation, row)
        if generation == config.generations - 1:
            break

        next_gen = population[:config.elites]
        gen_seen = {policy_digest(d) for d in next_gen}
        child_index = 0
        guard = 0
        while len(next_gen) < config.population and guard < 500:
            guard += 1
            parent = tournament(population)
            if rng.random() < 0.25:
                other = tournament(population)
                tree = _crossover(rng, parent.tree, other.tree)
            else:
                tree = _mutate_node(rng, parent.tree, 0)
            child = PolicyDoc(f"g{generation + 1}-{child_index}", tree)
            report = validate_policy(child.to_dict())
            if not report.ok or len(list(child.nodes())) > MAX_NODES:
                continue
            digest = policy_digest(child)
            if digest in gen_seen:
                continue
            gen_seen.add(digest)
            next_gen.append(child)
            child_index += 1
        population = next_gen
        score_all(population)

    population = ranked(population)
    winner = population[0]
    winner_fitness, winner_digests = memo[policy_digest(winner)]

    baseline_specs = {
        "fifo": SchedulerSpec(kind="registry", name="fifo"),
        "maxedf": SchedulerSpec(kind="registry", name="maxedf"),
    }
    baseline_scores = _score_specs(
        traces, list(baseline_specs.values()), config
    )
    baselines = {
        name: {
            "fitness": list(fitness),
            "event_digests": list(digests),
        }
        for (name, _), (fitness, digests) in zip(
            baseline_specs.items(), baseline_scores
        )
    }

    return EvolveResult(
        winner=winner,
        winner_json=canonical_policy_json(winner),
        winner_digest=policy_digest(winner),
        winner_fitness=winner_fitness,
        winner_event_digests=winner_digests,
        baselines=baselines,
        history=history,
        evaluations=len(memo),
        simulated=simulated,
    )
