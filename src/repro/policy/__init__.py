"""Policy-tree DSL: scheduling policies as validated, compilable data.

ROADMAP item 3.  Four layers, one per module:

* :mod:`repro.policy.dsl` — the versioned JSON decision-tree grammar,
  the state-feature vocabulary, canonical serialization and content
  digests;
* :mod:`repro.policy.validate` — the POL00x static-validation rules
  (structure, vocabulary, bounds, reachability, the static contract)
  producing :class:`~repro.analysis.findings.Finding` records, shared
  with simlint's registry;
* :mod:`repro.policy.compiler` — compilation to a real
  :class:`~repro.schedulers.base.Scheduler` (static-priority where the
  tree is state-free, dynamic otherwise), plus the picklable ``policy``
  :class:`~repro.parallel.executor.SchedulerSpec` kind;
* :mod:`repro.policy.evolve` — `simmr evolve`, seeded
  generate/mutate/tournament search over trees scored against deadline
  workloads with the parallel executor.

See docs/policies.md for the grammar and the certification contract.
"""

from .compiler import (
    CompiledDynamicPolicy,
    CompiledStaticPolicy,
    compile_policy,
    policy_spec,
)
from .dsl import (
    FEATURES,
    MAX_DEPTH,
    MAX_NODES,
    MAX_TERMS,
    OPS,
    PICK_RULES,
    POLICY_VERSION,
    FeatureInfo,
    Leaf,
    PolicyDoc,
    PolicyError,
    Predicate,
    ScoreTerm,
    canonical_policy_json,
    policy_digest,
)
from .evolve import EvolveConfig, EvolveResult, evolve, random_policy
from .examples import EXAMPLE_POLICIES, example_policy
from .validate import MAX_POLICY_TEXT, PolicyReport, parse_policy, validate_policy

__all__ = [
    "EXAMPLE_POLICIES",
    "EvolveConfig",
    "EvolveResult",
    "FEATURES",
    "FeatureInfo",
    "Leaf",
    "MAX_DEPTH",
    "MAX_NODES",
    "MAX_POLICY_TEXT",
    "MAX_TERMS",
    "OPS",
    "PICK_RULES",
    "POLICY_VERSION",
    "PolicyDoc",
    "PolicyError",
    "PolicyReport",
    "Predicate",
    "ScoreTerm",
    "CompiledDynamicPolicy",
    "CompiledStaticPolicy",
    "canonical_policy_json",
    "compile_policy",
    "evolve",
    "example_policy",
    "parse_policy",
    "policy_digest",
    "policy_spec",
    "random_policy",
    "validate_policy",
]
