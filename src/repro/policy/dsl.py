"""The policy-tree DSL: scheduling policies as versioned JSON data.

ROADMAP item 3 ("schedulers as data, not code"): a policy is a small
decision tree over per-job and per-decision simulation state.  Interior
**predicate** nodes branch on one feature compared against a constant;
**leaf** nodes produce the job's priority — either a weighted sum of
features (``score``) or a named built-in ordering (``pick``).  Lower
priority dispatches first, and every compiled policy appends the
deterministic tie-break ``(submit_time, job_id)``, so a tree can never
express an ambiguous order.

This module owns the *representation*: the feature vocabulary, the node
dataclasses, and the canonical serialization (sorted-keys compact JSON)
whose BLAKE2b digest is the policy's content identity — the same string
that keys the result cache and the evolve memo.  Validation (the POL00x
rules) lives in :mod:`repro.policy.validate`; compilation to a live
:class:`~repro.schedulers.base.Scheduler` in
:mod:`repro.policy.compiler`.

Example document::

    {
      "version": 1,
      "name": "deadline-aware",
      "tree": {
        "if": {"feature": "has_deadline", "op": ">=", "value": 0.5},
        "then": {"score": [{"feature": "deadline_slack", "weight": 1.0},
                           {"feature": "total_work", "weight": 0.5}]},
        "else": {"pick": "fifo"}
      }
    }
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from hashlib import blake2b
from typing import Any, Iterator, Optional, Union

__all__ = [
    "FEATURES",
    "FeatureInfo",
    "Leaf",
    "MAX_DEPTH",
    "MAX_NODES",
    "MAX_TERMS",
    "OPS",
    "PICK_RULES",
    "POLICY_VERSION",
    "PolicyDoc",
    "PolicyError",
    "Predicate",
    "ScoreTerm",
    "canonical_policy_json",
    "policy_digest",
]

#: The one wire-format version this build understands.  Bumped only on
#: incompatible grammar changes; the parser rejects anything else so a
#: future document can never be silently misread.
POLICY_VERSION = 1

#: Comparison operators a predicate may use.  Equality is deliberately
#: absent: float equality on simulated quantities is a reproducibility
#: trap (a policy keyed on ``time == 300.0`` flips on representation
#: noise), and any closed condition is expressible with two inequalities.
OPS = ("<", "<=", ">", ">=")

#: Structural bounds (enforced as POL003).  Generous for hand-written
#: policies, tight enough that the service can validate and compile any
#: accepted tree in microseconds and `simmr evolve` cannot balloon.
MAX_DEPTH = 16
MAX_NODES = 128
MAX_TERMS = 8


@dataclass(frozen=True)
class FeatureInfo:
    """One name in the state vocabulary.

    ``static`` features are constant over a job's lifetime — a tree
    reading only those compiles to a
    :class:`~repro.schedulers.base.StaticPriorityScheduler` and rides
    the engine's heap fast path and the columnar kernel.  ``lo``/``hi``
    bound the feature's reachable values; the unreachable-branch
    analysis (POL004) starts from them.
    """

    name: str
    static: bool
    lo: float
    hi: float
    doc: str


_INF = math.inf

#: The state vocabulary.  Static features read the job template only;
#: dynamic features also read the decision context (simulated clock,
#: queue, slot occupancy) and force the dynamic allocation path.
FEATURES: dict[str, FeatureInfo] = {
    info.name: info
    for info in (
        # -- static: constant per job -------------------------------------
        FeatureInfo("submit_time", True, 0.0, _INF,
                    "job submission time (s)"),
        FeatureInfo("deadline", True, 0.0, _INF,
                    "absolute deadline (s); +inf when the job has none"),
        FeatureInfo("relative_deadline", True, 0.0, _INF,
                    "deadline - submit_time; +inf when the job has none"),
        FeatureInfo("has_deadline", True, 0.0, 1.0,
                    "1.0 when the job carries a deadline, else 0.0"),
        FeatureInfo("num_maps", True, 0.0, _INF,
                    "map task count"),
        FeatureInfo("num_reduces", True, 0.0, _INF,
                    "reduce task count"),
        FeatureInfo("total_tasks", True, 0.0, _INF,
                    "num_maps + num_reduces"),
        FeatureInfo("total_work", True, 0.0, _INF,
                    "sum of all task durations in the profile (s)"),
        FeatureInfo("avg_map_duration", True, 0.0, _INF,
                    "mean map task duration (s); 0 with no maps"),
        FeatureInfo("avg_reduce_duration", True, 0.0, _INF,
                    "mean reduce task duration (s); 0 with no reduces"),
        # -- dynamic: read per decision -----------------------------------
        FeatureInfo("queue_depth", False, 0.0, _INF,
                    "eligible jobs competing in this decision"),
        FeatureInfo("job_age", False, 0.0, _INF,
                    "now - submit_time (s)"),
        FeatureInfo("deadline_slack", False, -_INF, _INF,
                    "deadline - now (s); +inf when the job has none"),
        FeatureInfo("map_fraction_completed", False, 0.0, 1.0,
                    "wave progress: completed maps / num_maps"),
        FeatureInfo("pending_maps", False, 0.0, _INF,
                    "map tasks not yet dispatched"),
        FeatureInfo("pending_reduces", False, 0.0, _INF,
                    "reduce tasks not yet dispatched"),
        FeatureInfo("running_maps", False, 0.0, _INF,
                    "map tasks currently occupying slots"),
        FeatureInfo("running_reduces", False, 0.0, _INF,
                    "reduce tasks currently occupying slots"),
        FeatureInfo("free_map_slots", False, 0.0, _INF,
                    "cluster map slots not occupied by running tasks"),
        FeatureInfo("free_reduce_slots", False, 0.0, _INF,
                    "cluster reduce slots not occupied by running tasks"),
    )
}

#: Named built-in orderings a leaf may ``pick`` — sugar for the
#: equivalent single-term score, kept symbolic in the canonical form.
PICK_RULES: dict[str, str] = {
    "fifo": "submit_time",
    "edf": "deadline",
    "sjf": "total_work",
    "least_slack": "deadline_slack",
}


class PolicyError(ValueError):
    """A policy document that failed validation.

    ``findings`` carries the full :class:`~repro.analysis.findings.Finding`
    list (POL00x rule ids with JSON paths into the tree) so callers —
    the service's 4xx body, ``simmr check --format json`` — can report
    structure, not a flattened string.
    """

    def __init__(self, message: str, findings: tuple = ()) -> None:
        super().__init__(message)
        self.findings = tuple(findings)


@dataclass(frozen=True)
class ScoreTerm:
    """One ``weight * feature`` contribution to a leaf's priority."""

    feature: str
    weight: float

    def to_dict(self) -> dict[str, Any]:
        return {"feature": self.feature, "weight": self.weight}


@dataclass(frozen=True)
class Leaf:
    """A leaf action: priority = bias + sum of terms, or a named pick."""

    terms: tuple[ScoreTerm, ...] = ()
    bias: float = 0.0
    pick: Optional[str] = None

    def score_terms(self) -> tuple[ScoreTerm, ...]:
        """The terms after desugaring ``pick`` (used by the compiler)."""
        if self.pick is not None:
            return (ScoreTerm(PICK_RULES[self.pick], 1.0),)
        return self.terms

    def to_dict(self) -> dict[str, Any]:
        if self.pick is not None:
            return {"pick": self.pick}
        return {"score": [t.to_dict() for t in self.terms], "bias": self.bias}


@dataclass(frozen=True)
class Predicate:
    """An interior node: branch on ``feature op value``."""

    feature: str
    op: str
    value: float
    then: "Node"
    otherwise: "Node"

    def to_dict(self) -> dict[str, Any]:
        return {
            "if": {"feature": self.feature, "op": self.op, "value": self.value},
            "then": self.then.to_dict(),
            "else": self.otherwise.to_dict(),
        }


Node = Union[Leaf, Predicate]


@dataclass(frozen=True)
class PolicyDoc:
    """A parsed, schema-valid policy document."""

    name: str
    tree: Node
    #: The document's declared ``"static"`` claim (None = not declared).
    #: Declaring ``true`` is a *contract*: POL005 rejects the document if
    #: the tree reads any dynamic feature.
    declared_static: Optional[bool] = None
    version: int = POLICY_VERSION

    def nodes(self) -> Iterator[Node]:
        """Every node, preorder."""
        stack: list[Node] = [self.tree]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, Predicate):
                stack.append(node.otherwise)
                stack.append(node.then)

    def features(self) -> set[str]:
        """Every feature name the tree reads (picks desugared)."""
        used: set[str] = set()
        for node in self.nodes():
            if isinstance(node, Predicate):
                used.add(node.feature)
            else:
                used.update(t.feature for t in node.score_terms())
        return used

    def is_static(self) -> bool:
        """True when every referenced feature is constant per job."""
        return all(FEATURES[f].static for f in self.features())

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "version": self.version,
            "name": self.name,
            "tree": self.tree.to_dict(),
        }
        if self.declared_static is not None:
            doc["static"] = self.declared_static
        return doc


def canonical_policy_json(doc: PolicyDoc) -> str:
    """The policy's canonical text: sorted keys, no whitespace.

    Canonicalization is what makes a tree *content-addressable*: the
    same policy always serializes to the same bytes, so its digest keys
    the result cache, the evolve memo and the pinned-winner tests, and
    ``parse → serialize → parse`` is a fixed point (property-tested).
    """
    return json.dumps(doc.to_dict(), sort_keys=True, separators=(",", ":"))


def policy_digest(doc: PolicyDoc) -> str:
    """BLAKE2b content digest of the canonical serialization."""
    return blake2b(canonical_policy_json(doc).encode(), digest_size=16).hexdigest()
