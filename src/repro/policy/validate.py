"""Static validation of policy trees: the POL00x rule family.

Policies arrive as untrusted JSON (the service's ``policy`` scheduler
kind, `simmr evolve` mutants, files on disk), so validation mirrors how
simlint treats untrusted *source*: every defect becomes a
:class:`~repro.analysis.findings.Finding` with a rule id registered in
the shared :data:`~repro.analysis.rules.default_registry`, and a
document is *certified* exactly when it has no ERROR-severity findings.
The finding's ``path`` is ``<label>#<json-pointer>`` — a pointer into
the tree (``policy.json#/tree/then/if``), the DSL's analogue of
``file:line``.

Rules:

========  ========  ====================================================
POL001    error     document structure: bad JSON, wrong version, unknown
                    or missing keys, wrong types
POL002    error     vocabulary: unknown feature, operator or pick rule
POL003    error     bounds: tree too deep/large, too many score terms,
                    non-finite threshold/weight/bias, zero weight
POL004    warning   unreachable branch (interval analysis along the
                    root-to-leaf path)
POL005    error     static-contract violation: a document declaring
                    ``"static": true`` reads a dynamic feature
========  ========  ====================================================

POL004 is a warning — dead branches are wasteful, not unsafe — so it
does not block service acceptance; everything else does.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Optional

from ..analysis.findings import Finding, Severity
from .dsl import (
    FEATURES,
    MAX_DEPTH,
    MAX_NODES,
    MAX_TERMS,
    OPS,
    PICK_RULES,
    POLICY_VERSION,
    Leaf,
    Node,
    PolicyDoc,
    PolicyError,
    Predicate,
    ScoreTerm,
)

__all__ = [
    "MAX_POLICY_TEXT",
    "PolicyReport",
    "parse_policy",
    "validate_policy",
]

#: Size cap on a policy's JSON text — the service validates untrusted
#: submissions at request-parse time, so arbitrarily large documents
#: must be refused before they are even decoded (same reasoning as
#: :data:`repro.analysis.certify.MAX_INLINE_SOURCE`).
MAX_POLICY_TEXT = 64 * 1024

_DOC_KEYS = frozenset({"version", "name", "tree", "static"})
_PREDICATE_KEYS = frozenset({"if", "then", "else"})
_CONDITION_KEYS = frozenset({"feature", "op", "value"})
_NAME_CHARS = frozenset("abcdefghijklmnopqrstuvwxyz"
                        "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")


@dataclass(frozen=True)
class PolicyReport:
    """Outcome of validating one document."""

    doc: Optional[PolicyDoc]
    findings: tuple[Finding, ...]

    @property
    def errors(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.severity is Severity.ERROR)

    @property
    def ok(self) -> bool:
        """Certified: schema-valid and free of ERROR findings."""
        return self.doc is not None and not self.errors


class _Collector:
    def __init__(self, label: str) -> None:
        self.label = label
        self.findings: list[Finding] = []

    def report(self, rule_id: str, severity: Severity, pointer: str,
               message: str, hint: str = "") -> None:
        self.findings.append(Finding(
            path=f"{self.label}#{pointer}", line=0, col=0,
            rule_id=rule_id, severity=severity, message=message, hint=hint,
        ))

    def error(self, rule_id: str, pointer: str, message: str, hint: str = "") -> None:
        self.report(rule_id, Severity.ERROR, pointer, message, hint)


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_finite(out: _Collector, value: Any, pointer: str, what: str) -> bool:
    """Type (POL001) and finiteness (POL003) of one numeric field."""
    if not _is_number(value):
        out.error("POL001", pointer, f"{what} must be a number, got "
                  f"{type(value).__name__}")
        return False
    if not math.isfinite(float(value)):
        out.error("POL003", pointer, f"{what} must be finite, got {value!r}",
                  hint="non-finite constants make score arithmetic "
                  "order-dependent (inf - inf = nan)")
        return False
    return True


def _parse_leaf(raw: dict, pointer: str, out: _Collector) -> Optional[Leaf]:
    if "pick" in raw:
        extra = set(raw) - {"pick"}
        if extra:
            out.error("POL001", pointer,
                      f"'pick' leaf has unknown key(s): {sorted(extra)}")
            return None
        pick = raw["pick"]
        if not isinstance(pick, str):
            out.error("POL001", f"{pointer}/pick", "'pick' must be a string")
            return None
        if pick not in PICK_RULES:
            out.error("POL002", f"{pointer}/pick",
                      f"unknown pick rule {pick!r}",
                      hint=f"known: {sorted(PICK_RULES)}")
            return None
        return Leaf(pick=pick)

    extra = set(raw) - {"score", "bias"}
    if extra:
        out.error("POL001", pointer,
                  f"leaf has unknown key(s): {sorted(extra)}",
                  hint="a leaf is {'score': [...], 'bias': n} or {'pick': name}")
        return None
    terms_raw = raw.get("score")
    if not isinstance(terms_raw, list):
        out.error("POL001", f"{pointer}/score", "'score' must be a list of terms")
        return None
    if not terms_raw:
        out.error("POL003", f"{pointer}/score", "'score' must have at least one term")
        return None
    if len(terms_raw) > MAX_TERMS:
        out.error("POL003", f"{pointer}/score",
                  f"{len(terms_raw)} score terms exceed the {MAX_TERMS}-term bound")
        return None
    bias = raw.get("bias", 0.0)
    ok = _check_finite(out, bias, f"{pointer}/bias", "'bias'")
    terms: list[ScoreTerm] = []
    for i, term in enumerate(terms_raw):
        tp = f"{pointer}/score/{i}"
        if not isinstance(term, dict) or set(term) != {"feature", "weight"}:
            out.error("POL001", tp,
                      "a term must be exactly {'feature': name, 'weight': n}")
            ok = False
            continue
        feature, weight = term["feature"], term["weight"]
        if not isinstance(feature, str):
            out.error("POL001", f"{tp}/feature", "'feature' must be a string")
            ok = False
        elif feature not in FEATURES:
            out.error("POL002", f"{tp}/feature", f"unknown feature {feature!r}",
                      hint=f"known: {sorted(FEATURES)}")
            ok = False
        if not _check_finite(out, weight, f"{tp}/weight", "'weight'"):
            ok = False
        elif float(weight) == 0.0:
            out.error("POL003", f"{tp}/weight",
                      "'weight' must be non-zero",
                      hint="a zero weight is a no-op term, and 0 * inf "
                      "poisons the score with nan")
            ok = False
        if ok:
            terms.append(ScoreTerm(feature, float(weight)))
    if not ok:
        return None
    return Leaf(terms=tuple(terms), bias=float(bias))


def _parse_node(raw: Any, pointer: str, depth: int, out: _Collector,
                counter: list[int]) -> Optional[Node]:
    if not isinstance(raw, dict):
        out.error("POL001", pointer,
                  f"a node must be an object, got {type(raw).__name__}")
        return None
    counter[0] += 1
    if counter[0] > MAX_NODES:
        out.error("POL003", pointer,
                  f"tree exceeds the {MAX_NODES}-node bound")
        return None
    if "if" not in raw:
        return _parse_leaf(raw, pointer, out)

    if depth >= MAX_DEPTH:
        out.error("POL003", pointer,
                  f"tree exceeds the {MAX_DEPTH}-level depth bound")
        return None
    if set(raw) != _PREDICATE_KEYS:
        out.error("POL001", pointer,
                  f"a predicate must have exactly keys "
                  f"{sorted(_PREDICATE_KEYS)}, got {sorted(raw)}")
        return None
    cond = raw["if"]
    if not isinstance(cond, dict) or set(cond) != _CONDITION_KEYS:
        out.error("POL001", f"{pointer}/if",
                  f"'if' must be exactly {{'feature', 'op', 'value'}}")
        cond_ok = False
        feature = op = None
        value = 0.0
    else:
        cond_ok = True
        feature, op, value = cond["feature"], cond["op"], cond["value"]
        if not isinstance(feature, str):
            out.error("POL001", f"{pointer}/if/feature", "'feature' must be a string")
            cond_ok = False
        elif feature not in FEATURES:
            out.error("POL002", f"{pointer}/if/feature",
                      f"unknown feature {feature!r}",
                      hint=f"known: {sorted(FEATURES)}")
            cond_ok = False
        if not isinstance(op, str) or op not in OPS:
            out.error("POL002", f"{pointer}/if/op",
                      f"unknown operator {op!r}", hint=f"known: {list(OPS)}")
            cond_ok = False
        if not _check_finite(out, value, f"{pointer}/if/value", "'value'"):
            cond_ok = False
    then = _parse_node(raw["then"], f"{pointer}/then", depth + 1, out, counter)
    otherwise = _parse_node(raw["else"], f"{pointer}/else", depth + 1, out, counter)
    if not cond_ok or then is None or otherwise is None:
        return None
    assert isinstance(feature, str) and isinstance(op, str)
    return Predicate(feature, op, float(value), then, otherwise)


# ------------------------------------------------------------------ #
# POL004: unreachable branches, by interval analysis along each path
# ------------------------------------------------------------------ #

@dataclass(frozen=True)
class _Interval:
    """Feasible values of one feature on the current path (closed-ish:
    strictness collapses onto the endpoints, which only widens the set —
    the analysis may miss a dead branch but never flags a live one)."""

    lo: float
    hi: float

    def satisfiable(self, op: str, value: float) -> bool:
        if op == "<":
            return self.lo < value
        if op == "<=":
            return self.lo <= value
        if op == ">":
            return self.hi > value
        return self.hi >= value  # ">="

    def assume(self, op: str, value: float) -> "_Interval":
        if op in ("<", "<="):
            return _Interval(self.lo, min(self.hi, value))
        return _Interval(max(self.lo, value), self.hi)

    def refute(self, op: str, value: float) -> "_Interval":
        """The interval on the *else* branch (condition false)."""
        if op in ("<", "<="):
            return _Interval(max(self.lo, value), self.hi)
        return _Interval(self.lo, min(self.hi, value))


def _check_reachability(doc: PolicyDoc, out: _Collector) -> None:
    def walk(node: Node, pointer: str, bounds: dict[str, _Interval]) -> None:
        if not isinstance(node, Predicate):
            return
        info = FEATURES[node.feature]
        interval = bounds.get(node.feature, _Interval(info.lo, info.hi))
        for branch, child, suffix in (
            (interval.satisfiable(node.op, node.value), node.then, "then"),
            (_refutable(interval, node.op, node.value), node.otherwise, "else"),
        ):
            child_pointer = f"{pointer}/{suffix}"
            if not branch:
                out.report(
                    "POL004", Severity.WARNING, child_pointer,
                    f"branch is unreachable: {node.feature} is already "
                    f"bounded to [{interval.lo:g}, {interval.hi:g}] here",
                    hint="delete the dead branch or fix the comparison",
                )
                continue
            narrowed = dict(bounds)
            narrowed[node.feature] = (
                interval.assume(node.op, node.value) if suffix == "then"
                else interval.refute(node.op, node.value)
            )
            walk(child, child_pointer, narrowed)

    walk(doc.tree, "/tree", {})


def _refutable(interval: _Interval, op: str, value: float) -> bool:
    """Can the condition be false anywhere in ``interval``?"""
    if op == "<":
        return interval.hi >= value
    if op == "<=":
        return interval.hi > value
    if op == ">":
        return interval.lo <= value
    return interval.lo < value  # ">="


# ------------------------------------------------------------------ #
# the entry points
# ------------------------------------------------------------------ #

def validate_policy(raw: Any, *, label: str = "<policy>") -> PolicyReport:
    """Validate one untrusted policy document (text or decoded JSON).

    Never raises on bad input — every defect is returned as a finding,
    so the caller (service, CLI, evolve) decides how to present
    rejection.  ``report.ok`` is the certification verdict.
    """
    out = _Collector(label)
    if isinstance(raw, (str, bytes)):
        if len(raw) > MAX_POLICY_TEXT:
            out.error("POL003", "/",
                      f"policy text exceeds {MAX_POLICY_TEXT} bytes")
            return PolicyReport(None, tuple(out.findings))
        try:
            raw = json.loads(raw)
        except json.JSONDecodeError as exc:
            out.error("POL001", "/", f"policy is not valid JSON: {exc}")
            return PolicyReport(None, tuple(out.findings))

    if not isinstance(raw, dict):
        out.error("POL001", "/",
                  f"policy document must be an object, got {type(raw).__name__}")
        return PolicyReport(None, tuple(out.findings))

    unknown = set(raw) - _DOC_KEYS
    if unknown:
        out.error("POL001", "/", f"unknown document key(s): {sorted(unknown)}",
                  hint=f"known: {sorted(_DOC_KEYS)}")
    version = raw.get("version")
    if version != POLICY_VERSION:
        out.error("POL001", "/version",
                  f"'version' must be {POLICY_VERSION}, got {version!r}")
    name = raw.get("name")
    if not isinstance(name, str) or not 1 <= len(name) <= 64 \
            or not set(name) <= _NAME_CHARS:
        out.error("POL001", "/name",
                  "'name' must be 1-64 characters from [A-Za-z0-9._-]")
        name = None
    declared = raw.get("static")
    if declared is not None and not isinstance(declared, bool):
        out.error("POL001", "/static", "'static' must be a boolean")
        declared = None
    if "tree" not in raw:
        out.error("POL001", "/", "'tree' is required")
        return PolicyReport(None, tuple(out.findings))

    tree = _parse_node(raw["tree"], "/tree", 0, out, [0])
    if tree is None or name is None or out.findings and any(
        f.severity is Severity.ERROR for f in out.findings
    ):
        return PolicyReport(None, tuple(out.findings))

    doc = PolicyDoc(name=name, tree=tree, declared_static=declared)
    if declared is True:
        for feature in sorted(doc.features()):
            if not FEATURES[feature].static:
                out.error(
                    "POL005", "/static",
                    f"document declares 'static': true but the tree reads "
                    f"the dynamic feature {feature!r}",
                    hint="a static policy's priority must be constant per "
                    "job — the engine's heap fast path replays stale keys "
                    "otherwise; drop the claim or the dynamic feature",
                )
    _check_reachability(doc, out)
    if any(f.severity is Severity.ERROR for f in out.findings):
        return PolicyReport(None, tuple(out.findings))
    return PolicyReport(doc, tuple(out.findings))


def parse_policy(raw: Any, *, label: str = "<policy>") -> PolicyDoc:
    """Validate and return the typed document, or raise :class:`PolicyError`.

    The raised error carries the findings — callers that need the
    structured rejection (the service) catch and forward them.
    """
    report = validate_policy(raw, label=label)
    if report.doc is None or not report.ok:
        first = report.errors[0] if report.errors else report.findings[0]
        raise PolicyError(
            f"invalid policy: {first.rule_id} at {first.path}: {first.message}",
            findings=report.findings,
        )
    return report.doc
