"""Built-in example policy trees.

Three canonical documents used across the repo: the docs, the
``simmr check`` policy half, `examples/policy_search.py`, the service
tests and the benchmark all reference these instead of inventing
near-identical trees.  ``fifo-tree`` and ``edf-tree`` are the DSL
renditions of the hand-written FIFO and MaxEDF orderings — property
tests pin their replays *digest-identical* to the real schedulers,
which is the compiler's correctness anchor.
"""

from __future__ import annotations

import copy
from typing import Any

__all__ = ["EXAMPLE_POLICIES", "example_policy"]

#: name -> policy document (schema version 1).
EXAMPLE_POLICIES: dict[str, dict[str, Any]] = {
    # The DSL spelling of FIFOScheduler: order by submission time.
    "fifo-tree": {
        "version": 1,
        "name": "fifo-tree",
        "static": True,
        "tree": {"pick": "fifo"},
    },
    # The DSL spelling of MaxEDFScheduler: earliest deadline first,
    # deadline-free jobs last (the 'deadline' feature is +inf for them).
    "edf-tree": {
        "version": 1,
        "name": "edf-tree",
        "static": True,
        "tree": {"pick": "edf"},
    },
    # A dynamic tree exercising predicates and multi-term scores:
    # deadline jobs race by slack-per-work, best-effort jobs by age-
    # discounted size.  This is the document served by
    # examples/policies/deadline_aware.json.
    "deadline-aware": {
        "version": 1,
        "name": "deadline-aware",
        "tree": {
            "if": {"feature": "has_deadline", "op": ">=", "value": 0.5},
            "then": {
                "score": [
                    {"feature": "deadline_slack", "weight": 1.0},
                    {"feature": "total_work", "weight": 0.5},
                ],
                "bias": 0.0,
            },
            "else": {
                "score": [
                    {"feature": "total_work", "weight": 1.0},
                    {"feature": "job_age", "weight": -0.25},
                ],
                "bias": 100000.0,
            },
        },
    },
}


def example_policy(name: str) -> dict[str, Any]:
    """A deep copy of one built-in example document (safe to mutate)."""
    try:
        doc = EXAMPLE_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown example policy {name!r}; known: {sorted(EXAMPLE_POLICIES)}"
        ) from None
    return copy.deepcopy(doc)
