"""The ``simmr`` command-line interface.

Subcommands mirror the SimMR workflow (paper Figure 4):

* ``simmr generate`` — Synthetic TraceGen: sample a trace from the
  built-in workload models into a JSON trace file;
* ``simmr profile`` — MRProfiler: job templates from a JobTracker
  history log into a JSON trace file;
* ``simmr replay`` — Simulator Engine: replay a trace file under a
  scheduling policy and print per-job completion times;
* ``simmr compare`` — replay one trace under several policies and print
  the comparison;
* ``simmr experiment`` — regenerate a paper table/figure by id;
* ``simmr sweep`` — what-if sweep over (scheduler, cluster, slow-start)
  grids, parallelized over a worker pool and backed by the
  content-addressed result cache (``repro.parallel``,
  ``docs/performance.md``);
* ``simmr stats`` / ``compact`` / ``scale`` / ``diff-profiles`` /
  ``fit`` — trace inspection and manipulation;
* ``simmr trace pack`` / ``unpack`` — convert between the JSON trace
  format and the compact binary one (``repro.trace.binfmt``,
  ``docs/traces.md``); every trace-consuming subcommand accepts either;
* ``simmr cache stats`` / ``prune`` / ``clear`` — result-cache
  maintenance (the sqlite store otherwise grows unboundedly);
* ``simmr validate`` — the end-to-end accuracy loop, pass/fail;
* ``simmr lint`` — simlint: determinism & simulation-invariant static
  analysis over the source tree (see ``docs/linting.md``);
* ``simmr certify`` — signed effect-safety certificate for a scheduler
  class (cache-safe / parallel-safe / service-safe; same docs);
* ``simmr check`` — combined gate: simlint + sanitized dual-run replay
  + POL00x policy-tree certification (see ``docs/sanitizer.md``);
* ``simmr evolve`` — seeded evolutionary search over policy trees
  (``repro.policy``, ``docs/policies.md``), scored against a deadline
  workload and reported with a reproducible winner (tree JSON + replay
  event digest);
* ``simmr serve`` / ``simmr submit`` — the simulation service: a
  long-lived HTTP replay server with a bounded job queue, result-cache
  front and ``/metrics``, plus the matching client command
  (``repro.service``, ``docs/service.md``).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Optional, Sequence

from . import __version__
from .core.cluster import ClusterConfig
from .core.engine import simulate
from .schedulers import make_scheduler
from .trace.arrivals import ExponentialArrivals
from .trace.schema import load_trace, save_trace
from .trace.synthetic import SyntheticTraceGen

__all__ = ["main", "build_parser"]

_EXPERIMENTS = (
    "fig1", "fig2", "fig3", "table1", "fig5", "fig6", "fig7", "fig8",
    "preemption", "ablations", "zoo", "locality",
)

_CHECK_SCHEDULERS = ("fifo", "fair", "minedf")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="simmr",
        description="SimMR: trace-driven MapReduce simulation (CLUSTER 2011 reproduction)",
    )
    # The same version string that salts ResultCache keys — so "which
    # cache entries does this binary resurrect" is answerable from the
    # shell.
    parser.add_argument(
        "--version", action="version", version=f"simmr {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic trace file")
    gen.add_argument("output", type=Path, help="output trace JSON path")
    gen.add_argument("--jobs", type=int, default=20, help="number of jobs (default 20)")
    gen.add_argument(
        "--workload",
        choices=["mix", "facebook"]
        + ["WordCount", "WikiTrends", "Twitter", "Sort", "TFIDF", "Bayes"],
        default="mix",
        help="workload model (default: the six-application mix)",
    )
    gen.add_argument(
        "--mean-interarrival", type=float, default=100.0, help="mean inter-arrival seconds"
    )
    gen.add_argument(
        "--deadline-factor",
        type=float,
        default=None,
        help="assign deadlines uniform in [T_J, df*T_J]",
    )
    gen.add_argument(
        "--spec",
        type=Path,
        default=None,
        help="generate from a fitted spec JSON (overrides --workload)",
    )
    gen.add_argument("--seed", type=int, default=0)

    prof = sub.add_parser("profile", help="extract a trace from a JobTracker history log")
    prof.add_argument("history", type=Path, help="history log path")
    prof.add_argument("output", type=Path, help="output trace JSON path")

    rep = sub.add_parser("replay", help="replay a trace file")
    rep.add_argument("trace", type=Path, help="trace JSON path")
    rep.add_argument("--scheduler", default="fifo", help="fifo | maxedf | minedf | fair")
    rep.add_argument("--map-slots", type=int, default=64)
    rep.add_argument("--reduce-slots", type=int, default=64)
    rep.add_argument("--slowstart", type=float, default=0.05)
    rep.add_argument("--output", type=Path, default=None,
                     help="write the full output log (JSON) here")
    rep.add_argument("--csv", type=Path, default=None,
                     help="write the per-job table (CSV) here")
    rep.add_argument("--sanitize", action="store_true",
                     help="run under the simsan runtime sanitizer "
                     "(fails fast on any simulation-invariant violation)")
    rep.add_argument("--engine", choices=("columnar", "object"), default="columnar",
                     help="execution path: vectorized columnar kernel "
                     "(default; falls back to the object engine where it "
                     "does not apply) or the object-per-event loop")
    rep.add_argument(
        "--format", choices=["text", "json"], default="text", dest="format_",
        help="report format (default text); json includes the engine-path "
        "accounting (engine_path, fallback_reason)",
    )

    cmp_ = sub.add_parser("compare", help="replay a trace under several schedulers")
    cmp_.add_argument("trace", type=Path)
    cmp_.add_argument(
        "--schedulers", default="fifo,maxedf,minedf", help="comma-separated policy names"
    )
    cmp_.add_argument("--map-slots", type=int, default=64)
    cmp_.add_argument("--reduce-slots", type=int, default=64)

    exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp.add_argument("id", choices=_EXPERIMENTS, help="experiment id")
    exp.add_argument("--runs", type=int, default=None, help="averaging runs (fig7/fig8)")
    exp.add_argument("--seed", type=int, default=0)
    exp.add_argument("--plot", action="store_true", help="render a text plot of the result")
    exp.add_argument(
        "--workers", type=int, default=0,
        help="worker processes for parallelizable experiments (zoo)",
    )

    stats = sub.add_parser("stats", help="summarize a trace file")
    stats.add_argument("trace", type=Path)
    stats.add_argument("--map-slots", type=int, default=64)
    stats.add_argument("--reduce-slots", type=int, default=64)

    comp = sub.add_parser("compact", help="remove inactivity periods from a trace")
    comp.add_argument("trace", type=Path)
    comp.add_argument("output", type=Path)
    comp.add_argument("--max-gap", type=float, default=60.0,
                      help="largest inter-submission gap to keep (seconds)")

    scale = sub.add_parser("scale", help="scale a trace to a larger dataset")
    scale.add_argument("trace", type=Path)
    scale.add_argument("output", type=Path)
    scale.add_argument("factor", type=float, help="dataset size ratio (new/old)")
    scale.add_argument("--pin-reduces", action="store_true",
                       help="keep reduce counts fixed, stretching their durations")
    scale.add_argument("--seed", type=int, default=0)

    diff = sub.add_parser(
        "diff-profiles",
        help="compare two traces' job templates (same application?)",
    )
    diff.add_argument("trace_a", type=Path)
    diff.add_argument("trace_b", type=Path)
    diff.add_argument("--job-a", type=int, default=0, help="job index in trace A")
    diff.add_argument("--job-b", type=int, default=0, help="job index in trace B")
    diff.add_argument("--kl-threshold", type=float, default=2.5)

    sweep = sub.add_parser("sweep", help="what-if sweep over configurations")
    sweep.add_argument("trace", type=Path)
    sweep.add_argument(
        "--schedulers", default="fifo,maxedf,minedf", help="comma-separated policy names"
    )
    sweep.add_argument(
        "--map-slots", default="32,64,128", help="comma-separated map-slot counts"
    )
    sweep.add_argument(
        "--reduce-slots",
        default=None,
        help="comma-separated reduce-slot counts (default: same as map slots)",
    )
    sweep.add_argument(
        "--slowstarts", default="0.05", help="comma-separated slow-start thresholds"
    )
    sweep.add_argument(
        "--best-by",
        default=None,
        choices=["makespan", "mean_duration", "p95_duration", "deadline_utility"],
        help="also print the winning configuration for this metric",
    )
    sweep.add_argument(
        "--workers", type=int, default=0,
        help="fan the grid out over N worker processes (default: in-process)",
    )
    sweep.add_argument(
        "--no-cache", action="store_true",
        help="disable the content-addressed result cache",
    )
    sweep.add_argument(
        "--fresh", action="store_true",
        help="ignore cached results (re-execute every cell) but store the new ones",
    )
    sweep.add_argument(
        "--cache-path", type=Path, default=None,
        help="result-cache sqlite file (default: $SIMMR_CACHE_DIR/results.sqlite "
        "or ~/.cache/simmr/results.sqlite)",
    )
    sweep.add_argument(
        "--format", choices=["text", "json"], default="text", dest="format_",
        help="report format (default text)",
    )
    sweep.add_argument(
        "--quiet", action="store_true",
        help="suppress per-cell progress lines (stderr)",
    )

    fit = sub.add_parser(
        "fit",
        help="fit a generative job spec from a trace's recorded profiles",
    )
    fit.add_argument("trace", type=Path, help="trace JSON with recorded executions")
    fit.add_argument("output", type=Path, help="output spec JSON path")
    fit.add_argument("--name", default=None, help="spec name")
    fit.add_argument(
        "--no-same-app-check",
        action="store_true",
        help="skip the same-application KL check before blending profiles",
    )

    val = sub.add_parser(
        "validate",
        help="run the end-to-end validation loop (emulate, profile, replay)",
    )
    val.add_argument("--seed", type=int, default=0)
    val.add_argument("--executions", type=int, default=1, help="executions per application")

    lint = sub.add_parser(
        "lint",
        help="simlint: check determinism & simulation invariants (DET/SIM/API rules)",
    )
    lint.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to check (default: src/repro, or the "
        "repro package next to this module)",
    )
    lint.add_argument(
        "--format", choices=["text", "json", "github", "sarif"], default="text",
        dest="format_",
        help="report format (default text; github = Actions annotations; "
        "sarif = SARIF 2.1.0 for code-scanning upload)",
    )
    lint.add_argument(
        "--select", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--disable", default=None,
        help="comma-separated rule ids to skip",
    )
    lint.add_argument(
        "--config", type=Path, default=None,
        help="pyproject.toml to read [tool.simlint] from (default: nearest "
        "pyproject.toml above the first path)",
    )
    lint.add_argument(
        "--no-config", action="store_true",
        help="ignore [tool.simlint] and use built-in defaults",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print every rule with its documentation and exit",
    )
    lint.add_argument(
        "--baseline", type=Path, default=None,
        help="accepted-findings baseline JSON: exit non-zero only on "
        "findings absent from it (or on stale entries it still lists)",
    )
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="record the current findings into --baseline and exit 0",
    )
    lint.add_argument(
        "--no-cache", action="store_true",
        help="disable the incremental analysis cache",
    )
    lint.add_argument(
        "--analysis-cache", type=Path, default=None,
        help="incremental analysis cache JSON (default: .analysis_cache.json "
        "next to --baseline; no caching without a baseline)",
    )

    cert = sub.add_parser(
        "certify",
        help="certify a scheduler class: signed effect-safety verdict "
        "(cache-safe / parallel-safe / service-safe)",
    )
    cert.add_argument(
        "target",
        help="scheduler to certify: a registry name (fifo, fair, ...), "
        "'path/to/module.py:ClassName', or 'pkg.module:ClassName'",
    )
    cert.add_argument(
        "--format", choices=["json", "text"], default="json", dest="format_",
        help="verdict format (default json — the signed certificate itself)",
    )
    cert.add_argument(
        "--analysis-cache", type=Path, default=None,
        help="incremental analysis cache JSON (shared with 'simmr lint')",
    )

    chk = sub.add_parser(
        "check",
        help="combined correctness gate: simlint + sanitized dual-replay (simsan)",
    )
    chk.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories for the static half (default: src/repro, "
        "or the repro package next to this module)",
    )
    chk.add_argument(
        "--trace", type=Path, default=None,
        help="trace JSON to replay (default: a deterministic synthetic mix)",
    )
    chk.add_argument(
        "--schedulers", default=",".join(_CHECK_SCHEDULERS),
        help="comma-separated policies for the dynamic half "
        f"(default {','.join(_CHECK_SCHEDULERS)})",
    )
    chk.add_argument("--jobs", type=int, default=12,
                     help="synthetic trace size (ignored with --trace)")
    chk.add_argument("--seed", type=int, default=7,
                     help="synthetic trace seed (ignored with --trace)")
    chk.add_argument("--map-slots", type=int, default=64)
    chk.add_argument("--reduce-slots", type=int, default=64)
    chk.add_argument(
        "--format", choices=["text", "json"], default="text", dest="format_",
        help="report format (default text)",
    )
    chk.add_argument("--static-only", action="store_true",
                     help="skip the sanitized replays")
    chk.add_argument("--dynamic-only", action="store_true",
                     help="skip the static lint")
    chk.add_argument(
        "--baseline", type=Path, default=None,
        help="accepted-findings baseline JSON for the static half "
        "(see 'simmr lint --baseline')",
    )
    chk.add_argument(
        "--policy", action="append", type=Path, default=None, metavar="TREE",
        dest="policies",
        help="policy tree JSON file to certify with the POL00x rules "
        "(repeatable; the built-in example trees are always checked)",
    )
    chk.add_argument(
        "--no-policy", action="store_true",
        help="skip the policy-certification half",
    )

    evo = sub.add_parser(
        "evolve",
        help="evolutionary search over policy trees against a deadline "
        "workload (seeded, reproducible; see docs/policies.md)",
    )
    evo.add_argument("--seed", type=int, default=0,
                     help="master seed: workload, population, mutation and "
                     "tournament draws all derive from it (default 0)")
    evo.add_argument("--population", type=int, default=12)
    evo.add_argument("--generations", type=int, default=5)
    evo.add_argument("--jobs", type=int, default=24,
                     help="jobs per workload trace (default 24)")
    evo.add_argument("--traces", type=int, default=2,
                     help="independent workload traces to score against "
                     "(default 2)")
    evo.add_argument("--mean-interarrival", type=float, default=30.0,
                     help="workload arrival rate (s; default 30 — an "
                     "overloaded cluster, where policy choice matters)")
    evo.add_argument("--deadline-factor", type=float, default=1.4,
                     help="deadline = U[T_J, df*T_J] over the solo "
                     "completion time (default 1.4 — tight)")
    evo.add_argument("--map-slots", type=int, default=32)
    evo.add_argument("--reduce-slots", type=int, default=32)
    evo.add_argument("--workers", type=int, default=0,
                     help="parallel executor fan-out per scoring batch "
                     "(<=1 = in-process; results identical)")
    evo.add_argument("--output", type=Path, default=None,
                     help="write the winning tree JSON to this file")
    evo.add_argument(
        "--format", choices=["text", "json"], default="text", dest="format_",
        help="report format (default text)",
    )
    evo.add_argument("--quiet", action="store_true",
                     help="suppress per-generation progress lines")

    trc = sub.add_parser(
        "trace",
        help="binary trace tooling: pack/unpack the compact .simmr format",
    )
    trc_sub = trc.add_subparsers(dest="trace_command", required=True)
    pck = trc_sub.add_parser(
        "pack", help="convert a JSON trace to the compact binary format"
    )
    pck.add_argument("input", type=Path, help="trace JSON path")
    pck.add_argument("output", type=Path, help="output binary trace path (.simmr)")
    upk = trc_sub.add_parser(
        "unpack", help="convert a binary trace back to canonical JSON"
    )
    upk.add_argument("input", type=Path, help="binary trace path (.simmr)")
    upk.add_argument("output", type=Path, help="output trace JSON path")

    cch = sub.add_parser(
        "cache",
        help="result-cache maintenance (the sweep/service sqlite store)",
    )
    cch.add_argument(
        "--cache-path", type=Path, default=None,
        help="result-cache sqlite file (default: $SIMMR_CACHE_DIR/results.sqlite "
        "or ~/.cache/simmr/results.sqlite)",
    )
    cch_sub = cch.add_subparsers(dest="cache_command", required=True)
    cch_sub.add_parser("stats", help="summarize the store (entries, size, ages)")
    prn = cch_sub.add_parser(
        "prune", help="delete entries older than a given age"
    )
    prn.add_argument(
        "--older-than", required=True, metavar="AGE",
        help="age threshold: seconds, or a number suffixed s/m/h/d/w "
        "(e.g. 90m, 12h, 7d)",
    )
    cch_sub.add_parser("clear", help="delete every stored result")

    srv = sub.add_parser(
        "serve",
        help="run the simulation service (long-lived HTTP replay server)",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8642,
                     help="listen port (0 = ephemeral; the bound port is printed)")
    srv.add_argument("--workers", type=int, default=2,
                     help="persistent worker threads draining the job queue")
    srv.add_argument("--queue-size", type=int, default=16,
                     help="bounded queue length; beyond it requests get "
                     "503 + Retry-After")
    srv.add_argument("--request-timeout", type=float, default=120.0,
                     help="server-side cap on one request's wall-clock budget (s)")
    srv.add_argument("--trace-root", type=Path, default=None,
                     help="directory trace_path requests resolve under "
                     "(default: inline traces only)")
    srv.add_argument("--no-cache", action="store_true",
                     help="disable the content-addressed result cache")
    srv.add_argument("--cache-path", type=Path, default=None,
                     help="result-cache sqlite file (default: $SIMMR_CACHE_DIR/"
                     "results.sqlite or ~/.cache/simmr/results.sqlite)")
    srv.add_argument("--trace-cache-size", type=int, default=8,
                     help="parsed-trace LRU capacity for trace_path requests "
                     "(0 disables; default 8)")

    sbm = sub.add_parser(
        "submit",
        help="submit one replay to a running simulation service",
    )
    sbm.add_argument("trace", type=Path, help="trace JSON path (sent inline)")
    sbm.add_argument("--url", default="http://127.0.0.1:8642",
                     help="service base URL (default http://127.0.0.1:8642)")
    sbm.add_argument("--scheduler", default="fifo", help="fifo | maxedf | minedf | fair")
    sbm.add_argument("--map-slots", type=int, default=64)
    sbm.add_argument("--reduce-slots", type=int, default=64)
    sbm.add_argument("--slowstart", type=float, default=0.05)
    sbm.add_argument("--timeout", type=float, default=None,
                     help="per-request simulation budget (seconds)")
    sbm.add_argument("--retries", type=int, default=0,
                     help="absorb up to N 503 rejections by honouring Retry-After")
    sbm.add_argument("--verify", action="store_true",
                     help="also replay locally and assert the event digests match")

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    from .trace.deadlines import DeadlineFactorPolicy
    from .workloads.apps import app_spec, make_app_specs
    from .workloads.facebook import FacebookJobSpec

    cluster = ClusterConfig(64, 64)
    deadline_policy = (
        DeadlineFactorPolicy(args.deadline_factor, cluster)
        if args.deadline_factor is not None
        else None
    )
    if args.spec is not None:
        import json as _json

        from .trace.synthetic import SyntheticJobSpec

        specs = [SyntheticJobSpec.from_dict(_json.loads(args.spec.read_text()))]
    elif args.workload == "mix":
        specs = list(make_app_specs().values())
    elif args.workload == "facebook":
        specs = [FacebookJobSpec()]
    else:
        specs = [app_spec(args.workload)]
    gen = SyntheticTraceGen(
        specs,
        ExponentialArrivals(args.mean_interarrival),
        deadline_policy=deadline_policy,
        seed=args.seed,
    )
    trace = gen.generate(args.jobs)
    save_trace(trace, args.output)
    print(f"wrote {len(trace)} jobs to {args.output}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .mrprofiler.profiler import trace_from_history

    trace = trace_from_history(args.history.read_text())
    save_trace(trace, args.output)
    print(f"profiled {len(trace)} jobs from {args.history} into {args.output}")
    return 0


def _replay(
    trace_path: Path,
    scheduler_name: str,
    map_slots: int,
    reduce_slots: int,
    slowstart: float = 0.05,
    record_tasks: bool = False,
    sanitize: Optional[bool] = None,
    engine: str = "columnar",
):
    from .trace.binfmt import load_trace_auto

    trace = load_trace_auto(trace_path)
    scheduler = make_scheduler(scheduler_name)
    return simulate(
        trace,
        scheduler,
        ClusterConfig(map_slots, reduce_slots),
        min_map_percent_completed=slowstart,
        record_tasks=record_tasks,
        sanitize=sanitize,
        engine=engine,
    )


def _cmd_replay(args: argparse.Namespace) -> int:
    result = _replay(
        args.trace, args.scheduler, args.map_slots, args.reduce_slots,
        args.slowstart, record_tasks=args.output is not None,
        sanitize=True if args.sanitize else None, engine=args.engine,
    )
    if args.format_ == "json":
        import json as _json

        doc = {
            "scheduler": result.scheduler_name,
            "makespan_s": result.makespan,
            "events_processed": result.events_processed,
            "events_per_second": result.events_per_second,
            "engine_path": result.engine_path,
            "fallback_reason": result.fallback_reason,
            "deadline_utility": result.relative_deadline_exceeded(),
            "jobs": [
                {
                    "job_id": j.job_id,
                    "name": j.name,
                    "submit_time": j.submit_time,
                    "duration": j.duration,
                    "deadline": j.deadline,
                    "met_deadline": j.met_deadline,
                }
                for j in result.jobs
            ],
        }
        print(_json.dumps(doc, indent=2))
        if args.output is not None:
            from .core.results_io import save_result

            save_result(result, args.output)
        if args.csv is not None:
            from .core.results_io import jobs_to_csv

            args.csv.write_text(jobs_to_csv(result))
        return 0
    path = result.engine_path or "?"
    why = f" ({result.fallback_reason})" if result.fallback_reason else ""
    print(f"scheduler={result.scheduler_name} makespan={result.makespan:.1f}s "
          f"events={result.events_processed} "
          f"({result.events_per_second:,.0f} events/s) "
          f"engine={path}{why}")
    print(f"{'job':>4} {'name':20} {'submit':>10} {'duration':>10} {'deadline':>10} late")
    for job in result.jobs:
        deadline = f"{job.deadline:.1f}" if job.deadline is not None else "-"
        late = "*" if job.met_deadline is False else ""
        print(
            f"{job.job_id:>4} {job.name:20} {job.submit_time:>10.1f} "
            f"{job.duration:>10.1f} {deadline:>10} {late}"
        )
    util = result.relative_deadline_exceeded()
    if util:
        print(f"relative deadline exceeded: {util:.3f}")
    if args.output is not None:
        from .core.results_io import save_result

        save_result(result, args.output)
        print(f"output log written to {args.output}")
    if args.csv is not None:
        from .core.results_io import jobs_to_csv

        args.csv.write_text(jobs_to_csv(result))
        print(f"job table written to {args.csv}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    names = [s.strip() for s in args.schedulers.split(",") if s.strip()]
    print(f"{'scheduler':10} {'makespan':>10} {'mean T_J':>10} {'util':>8}")
    for name in names:
        result = _replay(args.trace, name, args.map_slots, args.reduce_slots)
        durations = list(result.durations().values())
        mean_t = sum(durations) / len(durations) if durations else 0.0
        print(
            f"{result.scheduler_name:10} {result.makespan:>10.1f} {mean_t:>10.1f} "
            f"{result.relative_deadline_exceeded():>8.3f}"
        )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .core.cluster import ClusterConfig
    from .trace.tools import trace_summary

    trace = load_trace(args.trace)
    summary = trace_summary(trace)
    print(summary)
    slots = args.map_slots + args.reduce_slots
    print(f"offered load on a {args.map_slots}x{args.reduce_slots} cluster: "
          f"{summary.offered_load(slots):.2f} "
          f"(task-seconds demanded per slot-second over the span)")
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    from .trace.tools import compact_trace, trace_summary

    trace = load_trace(args.trace)
    compacted = compact_trace(trace, max_gap=args.max_gap)
    save_trace(compacted, args.output)
    before = trace_summary(trace).span_seconds
    after = trace_summary(compacted).span_seconds
    print(f"compacted {len(trace)} jobs: span {before:.0f}s -> {after:.0f}s "
          f"(max gap {args.max_gap}s)")
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    from .trace.scaling import scale_profile

    trace = load_trace(args.trace)
    from .core.job import TraceJob

    scaled = [
        TraceJob(
            scale_profile(
                j.profile,
                args.factor,
                scale_reduces=not args.pin_reduces,
                seed=args.seed + i,
            ),
            j.submit_time,
            j.deadline,
        )
        for i, j in enumerate(trace)
    ]
    save_trace(scaled, args.output)
    total_before = sum(j.profile.num_maps + j.profile.num_reduces for j in trace)
    total_after = sum(j.profile.num_maps + j.profile.num_reduces for j in scaled)
    print(f"scaled {len(trace)} jobs by x{args.factor:g}: "
          f"{total_before} -> {total_after} tasks; wrote {args.output}")
    return 0


def _plot_sweep(result) -> None:
    from .render import line_plot

    factors = sorted({df for df, _ in result.cells})
    for df in factors:
        series = {
            name: result.series(df, name) for name in ("MaxEDF", "MinEDF")
        }
        print()
        print(
            line_plot(
                series,
                logx=True,
                title=f"deadline factor {df}",
                xlabel="mean inter-arrival (s)",
                ylabel="relative deadline exceeded",
            )
        )


def _cmd_diff_profiles(args: argparse.Namespace) -> int:
    from .mrprofiler.compare import compare_profiles

    trace_a = load_trace(args.trace_a)
    trace_b = load_trace(args.trace_b)
    try:
        profile_a = trace_a[args.job_a].profile
        profile_b = trace_b[args.job_b].profile
    except IndexError:
        print("job index out of range", file=sys.stderr)
        return 2
    comparison = compare_profiles(profile_a, profile_b, kl_threshold=args.kl_threshold)
    print(comparison)
    return 0 if comparison.same_application else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json as _json

    from .core.walltime import elapsed_since, perf_seconds
    from .sweep import run_sweep

    trace = load_trace(args.trace)
    map_slots = [int(x) for x in args.map_slots.split(",") if x.strip()]
    if args.reduce_slots is None:
        reduce_slots = map_slots
    else:
        reduce_slots = [int(x) for x in args.reduce_slots.split(",") if x.strip()]
        if len(reduce_slots) != len(map_slots):
            print("--reduce-slots must match --map-slots in length", file=sys.stderr)
            return 2
    clusters = [ClusterConfig(m, r) for m, r in zip(map_slots, reduce_slots)]

    if args.no_cache:
        if args.fresh or args.cache_path:
            print("--no-cache conflicts with --fresh/--cache-path", file=sys.stderr)
            return 2
        cache: object = False
    else:
        cache = args.cache_path if args.cache_path else True

    def progress(done: int, total: int, outcome) -> None:  # SimOutcome
        task, res = outcome.task, outcome.result
        source = "cached" if outcome.cached else "ran"
        print(
            f"[{done}/{total}] {res.scheduler_name} "
            f"{task.cluster.map_slots}x{task.cluster.reduce_slots} "
            f"ss={task.slowstart:g} makespan={res.makespan:.1f}s ({source})",
            file=sys.stderr,
        )

    start = perf_seconds()
    result = run_sweep(
        trace,
        schedulers=[s.strip() for s in args.schedulers.split(",") if s.strip()],
        clusters=clusters,
        slowstarts=[float(x) for x in args.slowstarts.split(",") if x.strip()],
        workers=args.workers,
        cache=cache,
        fresh=args.fresh,
        progress=None if args.quiet or args.format_ == "json" else progress,
    )
    wall = elapsed_since(start)

    if args.format_ == "json":
        doc = {
            "cells": [
                {
                    **c.row(),
                    "cached": c.cached,
                    "event_digest": c.event_digest,
                    "fallback_reason": c.fallback_reason,
                }
                for c in result.cells
            ],
            "cache_hits": result.cache_hits,
            "executed": result.executed,
            "wall_seconds": wall,
            "workers": args.workers,
        }
        if args.best_by:
            best = result.best_by(args.best_by)
            doc["best"] = {"metric": args.best_by, **best.row()}
        print(_json.dumps(doc, indent=2))
        return 0

    print(result)
    print(
        f"\n{result.executed} cell(s) executed, {result.cache_hits} served "
        f"from cache in {wall:.2f}s"
        + (f" ({args.workers} workers)" if args.workers > 1 else ""),
    )
    if args.best_by:
        best = result.best_by(args.best_by)
        print(
            f"best {args.best_by}: {best.scheduler} on "
            f"{best.map_slots}x{best.reduce_slots} (slowstart {best.slowstart})"
        )
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    import json as _json

    from .trace.fit import fit_spec_from_profiles

    trace = load_trace(args.trace)
    spec = fit_spec_from_profiles(
        [j.profile for j in trace],
        name=args.name,
        same_app_kl_threshold=None if args.no_same_app_check else 2.5,
    )
    args.output.write_text(_json.dumps(spec.to_spec()))
    print(
        f"fitted spec {spec.name!r} from {len(trace)} recorded execution(s); "
        f"map model: {spec.map_durations!r}; wrote {args.output}"
    )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .experiments.accuracy import run_accuracy

    print("running the validation loop (emulated cluster -> JobTracker logs "
          "-> MRProfiler -> SimMR replay) ...")
    result = run_accuracy("FIFO", executions_per_app=args.executions, seed=args.seed)
    print(result)
    avg, mx = result.simmr_errors()
    healthy = avg < 5.0 and mx < 10.0
    print(f"\nSimMR replay error: {avg:.1f}% avg / {mx:.1f}% max "
          f"(paper: 2.7% / 6.6%) -> {'OK' if healthy else 'DEGRADED'}")
    return 0 if healthy else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    import dataclasses

    from .analysis import (
        AnalysisCache,
        default_cache_path,
        default_registry,
        lint_paths,
        render_github,
        render_json,
        render_sarif,
        render_text,
    )
    from .analysis.config import LintConfig, find_pyproject

    if args.list_rules:
        for info in default_registry:
            print(info.summary())
            print(f"    why:  {info.rationale}")
            print(f"    fix:  {info.hint}")
            print()
        return 0

    paths = list(args.paths)
    if not paths:
        # Default target: the source tree we sit in (src/repro when run
        # from a checkout, else the installed package directory).
        checkout = Path("src/repro")
        paths = [checkout if checkout.is_dir() else Path(__file__).parent]

    config = LintConfig()
    if not args.no_config:
        pyproject = args.config if args.config is not None else find_pyproject(paths[0])
        if pyproject is not None:
            try:
                config = LintConfig.from_pyproject(pyproject)
            except ValueError as exc:
                print(f"simmr lint: {exc}", file=sys.stderr)
                return 2
    overrides = {}
    if args.select is not None:
        overrides["select"] = frozenset(
            s.strip() for s in args.select.split(",") if s.strip()
        )
    if args.disable is not None:
        overrides["disable"] = config.disable | {
            s.strip() for s in args.disable.split(",") if s.strip()
        }
    if overrides:
        config = dataclasses.replace(config, **overrides)
    cache = None
    if not args.no_cache:
        cache_path = args.analysis_cache
        if cache_path is None:
            cache_path = default_cache_path(args.baseline)
        if cache_path is not None:
            cache = AnalysisCache.load(cache_path)
    try:
        config.validate(default_registry)
        findings = lint_paths(paths, config=config, cache=cache)
    except ValueError as exc:
        print(f"simmr lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        if args.baseline is None:
            print("simmr lint: --write-baseline requires --baseline <path>",
                  file=sys.stderr)
            return 2
        from .analysis import write_baseline

        recorded = write_baseline(args.baseline, findings)
        print(f"simmr lint: recorded {len(recorded.entries)} finding(s) "
              f"into {args.baseline}")
        return 0

    fail = bool(findings)
    if args.baseline is not None:
        from .analysis import load_baseline, partition_findings

        try:
            baseline = load_baseline(args.baseline)
        except ValueError as exc:
            print(f"simmr lint: {exc}", file=sys.stderr)
            return 2
        new, _matched, stale = partition_findings(findings, baseline)
        findings = new  # baselined debt is not re-reported
        for entry in stale:
            print(f"simmr lint: stale baseline entry (no longer fires, "
                  f"remove it): {entry.format()}", file=sys.stderr)
        fail = bool(new) or bool(stale)

    render = {
        "json": render_json, "github": render_github, "sarif": render_sarif,
    }.get(args.format_, render_text)
    print(render(findings))
    return 1 if fail else 0


def _cmd_certify(args: argparse.Namespace) -> int:
    import json as _json

    from .analysis import AnalysisCache
    from .analysis.certify import CertificationError, certify_target, failure_message

    cache = None
    if args.analysis_cache is not None:
        cache = AnalysisCache.load(args.analysis_cache)
    try:
        doc = certify_target(args.target, cache=cache)
    except CertificationError as exc:
        print(f"simmr certify: {exc}", file=sys.stderr)
        return 2
    if args.format_ == "json":
        print(_json.dumps(doc, indent=2, sort_keys=True))
    else:
        verdict = "CERTIFIED" if doc["certified"] else "REJECTED"
        print(f"{doc['target']}: {verdict}")
        print(f"  effects:       {', '.join(doc['summary']) or '(pure)'}")
        print(f"  cache-safe:    {doc['cache_safe']}")
        print(f"  parallel-safe: {doc['parallel_safe']}")
        print(f"  service-safe:  {doc['service_safe']}")
        if not doc["certified"]:
            print(f"  witness:       {failure_message(doc)}")
    return 0 if doc["certified"] else 1


def _cmd_check(args: argparse.Namespace) -> int:
    from .analysis.config import LintConfig, find_pyproject
    from .sanitize.check import run_check

    static = not args.dynamic_only
    dynamic = not args.static_only
    if not static and not dynamic:
        print("simmr check: --static-only and --dynamic-only are mutually "
              "exclusive", file=sys.stderr)
        return 2

    paths = list(args.paths)
    if not paths:
        checkout = Path("src/repro")
        paths = [checkout if checkout.is_dir() else Path(__file__).parent]
    config = LintConfig()
    pyproject = find_pyproject(paths[0])
    if pyproject is not None:
        try:
            config = LintConfig.from_pyproject(pyproject)
        except ValueError as exc:
            print(f"simmr check: {exc}", file=sys.stderr)
            return 2

    if args.baseline is not None and not args.baseline.is_file():
        print(f"simmr check: baseline {args.baseline} does not exist",
              file=sys.stderr)
        return 2
    schedulers = [s.strip() for s in args.schedulers.split(",") if s.strip()]
    trace = load_trace(args.trace) if args.trace is not None else None
    report = run_check(
        paths,
        config=config,
        schedulers=schedulers,
        trace=trace,
        jobs=args.jobs,
        seed=args.seed,
        cluster=ClusterConfig(args.map_slots, args.reduce_slots),
        static=static,
        dynamic=dynamic,
        baseline=args.baseline,
        policy=not args.no_policy,
        policy_files=tuple(args.policies or ()),
    )
    print(report.render_json() if args.format_ == "json" else report.render_text())
    return 0 if report.ok else 1


def _cmd_evolve(args: argparse.Namespace) -> int:
    import json as _json

    from .policy import EvolveConfig, evolve

    config = EvolveConfig(
        seed=args.seed,
        population=args.population,
        generations=args.generations,
        jobs=args.jobs,
        traces=args.traces,
        mean_interarrival=args.mean_interarrival,
        deadline_factor=args.deadline_factor,
        map_slots=args.map_slots,
        reduce_slots=args.reduce_slots,
        workers=args.workers,
    )

    def progress(generation: int, row: dict) -> None:
        fitness = row["best_fitness"]
        print(
            f"gen {generation:2d}: best {row['best']:<14} "
            f"utility {fitness[0]:.4f} makespan {fitness[1]:.1f} "
            f"({row['simulated']} replays)",
            file=sys.stderr,
        )

    quiet = args.quiet or args.format_ == "json"
    result = evolve(config, progress=None if quiet else progress)

    if args.output is not None:
        args.output.write_text(result.winner_json + "\n")
    if args.format_ == "json":
        print(_json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"winner: {result.winner.name} (digest {result.winner_digest})")
        print(f"  tree:           {result.winner_json}")
        print(f"  fitness:        utility {result.winner_fitness[0]:.4f}, "
              f"makespan {result.winner_fitness[1]:.1f}")
        print(f"  event digests:  {', '.join(result.winner_event_digests)}")
        for name, entry in result.baselines.items():
            fitness = entry["fitness"]
            print(f"  vs {name:<12} utility {fitness[0]:.4f}, "
                  f"makespan {fitness[1]:.1f}")
        print(f"  beats baselines: {'yes' if result.beats_baselines else 'NO'}")
        print(f"  ({result.evaluations} unique trees, "
              f"{result.simulated} replays)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .sanitize.digest import trace_digest
    from .trace.binfmt import (
        is_binary_trace_file,
        load_trace_bin,
        save_trace_bin,
    )

    if args.trace_command == "pack":
        if is_binary_trace_file(args.input):
            print(f"simmr trace pack: {args.input} is already packed",
                  file=sys.stderr)
            return 2
        trace = load_trace(args.input)
        nbytes = save_trace_bin(trace, args.output)
        json_bytes = args.input.stat().st_size
        ratio = json_bytes / nbytes if nbytes else 0.0
        print(f"packed {len(trace)} jobs: {json_bytes} -> {nbytes} bytes "
              f"({ratio:.1f}x smaller); digest {trace_digest(trace)}")
        return 0
    assert args.trace_command == "unpack"
    if not is_binary_trace_file(args.input):
        print(f"simmr trace unpack: {args.input} is not a binary trace",
              file=sys.stderr)
        return 2
    trace = load_trace_bin(args.input)
    save_trace(trace, args.output)
    print(f"unpacked {len(trace)} jobs to {args.output}; "
          f"digest {trace_digest(trace)}")
    return 0


#: Suffix multipliers ``simmr cache prune --older-than`` understands.
_DURATION_UNITS = {"s": 1, "m": 60, "h": 3600, "d": 86400, "w": 604800}


def _parse_duration(text: str) -> float:
    """``"90"``/``"90s"``/``"15m"``/``"6h"``/``"7d"``/``"2w"`` -> seconds."""
    text = text.strip().lower()
    unit = 1.0
    if text and text[-1] in _DURATION_UNITS:
        unit = float(_DURATION_UNITS[text[-1]])
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise ValueError(
            f"bad duration {text!r}: expected a number with an optional "
            f"{'/'.join(_DURATION_UNITS)} suffix"
        ) from None
    if value < 0:
        raise ValueError("duration must be >= 0")
    return value * unit


def _cmd_cache(args: argparse.Namespace) -> int:
    from .parallel.cache import ResultCache, default_cache_path

    path = args.cache_path if args.cache_path else default_cache_path()
    if args.cache_command != "stats" and not Path(path).is_file():
        # stats on a fresh path legitimately reports an empty store, but
        # prune/clear would silently create an empty file — refuse.
        print(f"simmr cache: no cache file at {path}", file=sys.stderr)
        return 2
    with ResultCache(path) as cache:
        if args.cache_command == "stats":
            info = cache.info()
            print(f"cache {info['path']}")
            print(f"  entries:      {info['entries']} "
                  f"({info['distinct_traces']} trace(s), "
                  f"{info['distinct_schedulers']} scheduler(s))")
            print(f"  payload:      {info['payload_bytes']} bytes "
                  f"(file: {info['file_bytes']} bytes)")
            if info["oldest_age_seconds"] is not None:
                print(f"  entry age:    {info['newest_age_seconds']}s newest, "
                      f"{info['oldest_age_seconds']}s oldest")
            return 0
        if args.cache_command == "prune":
            try:
                age = _parse_duration(args.older_than)
            except ValueError as exc:
                print(f"simmr cache prune: {exc}", file=sys.stderr)
                return 2
            removed = cache.prune_older_than(age)
            print(f"pruned {removed} entr{'y' if removed == 1 else 'ies'} "
                  f"older than {args.older_than} ({len(cache)} left)")
            return 0
        assert args.cache_command == "clear"
        removed = cache.clear()
        print(f"cleared {removed} entr{'y' if removed == 1 else 'ies'}")
        return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import logging

    from .service import ServiceConfig, SimulationServer, install_signal_handlers

    if args.no_cache and args.cache_path:
        print("--no-cache conflicts with --cache-path", file=sys.stderr)
        return 2
    cache: object = False if args.no_cache else (args.cache_path or True)

    logging.basicConfig(
        level=logging.INFO, format="%(asctime)s %(name)s %(message)s", stream=sys.stderr
    )
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_size=args.queue_size,
        cache=cache,  # type: ignore[arg-type]
        trace_root=args.trace_root,
        request_timeout=args.request_timeout,
        trace_cache_size=args.trace_cache_size,
    )
    server = SimulationServer(config)
    install_signal_handlers(server)
    host, port = server.address
    # The smoke tests parse this line to discover an ephemeral port —
    # keep its shape stable.
    print(f"simmr service listening on http://{host}:{port} "
          f"(workers={args.workers}, queue={args.queue_size})", flush=True)
    try:
        server.serve_forever()  # returns once a signal starts the drain
    finally:
        server.shutdown()
    print("simmr service drained, bye", flush=True)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .parallel import SchedulerSpec, SimTask, simulate_many
    from .service import ServiceClient, ServiceError
    from .trace.binfmt import load_trace_auto

    trace = load_trace_auto(args.trace)
    client = ServiceClient(args.url)
    try:
        reply = client.replay(
            trace,
            scheduler=args.scheduler,
            cluster=ClusterConfig(args.map_slots, args.reduce_slots),
            slowstart=args.slowstart,
            timeout=args.timeout,
            max_retries=args.retries,
        )
    except ServiceError as exc:
        print(f"simmr submit: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"simmr submit: cannot reach {args.url}: {exc}", file=sys.stderr)
        return 1

    result = reply.result
    source = "cache" if reply.cached else "simulated"
    print(f"scheduler={result.scheduler_name} makespan={result.makespan:.1f}s "
          f"jobs={len(result.jobs)} ({source}, request {reply.request_id}, "
          f"{reply.server_seconds:.3f}s on the server)")
    print(f"event_digest={reply.event_digest}")
    if args.verify:
        task = SimTask(
            trace_id="trace",
            scheduler=SchedulerSpec(kind="registry", name=args.scheduler),
            cluster=ClusterConfig(args.map_slots, args.reduce_slots),
            slowstart=args.slowstart,
        )
        [local] = simulate_many({"trace": trace}, [task], cache=None)
        if local.result.event_digest == reply.event_digest:
            print("verify: OK — local replay digest matches")
        else:
            print(f"verify: MISMATCH — local {local.result.event_digest} != "
                  f"service {reply.event_digest}", file=sys.stderr)
            return 1
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.id in ("fig1", "fig2"):
        from .experiments.progress import run_progress

        slots = 128 if args.id == "fig1" else 64
        result = run_progress(slots, slots, seed=args.seed)
        print(result)
        if args.plot:
            from .render import line_plot

            series = {
                "map": [], "shuffle": [], "reduce": [],
            }
            for row in result.series(points=58):
                series["map"].append((row["time"], row["map_tasks"]))
                series["shuffle"].append((row["time"], row["shuffle_tasks"]))
                series["reduce"].append((row["time"], row["reduce_tasks"]))
            print()
            print(
                line_plot(
                    series,
                    title=f"WordCount tasks in phase ({slots}x{slots} slots)",
                    xlabel="time (s)",
                    ylabel="tasks",
                )
            )
    elif args.id == "fig3":
        from .experiments.distributions import run_fig3_cdfs

        print(run_fig3_cdfs(seed=args.seed))
    elif args.id == "table1":
        from .experiments.distributions import run_table1_kl

        print(run_table1_kl(seed=args.seed))
    elif args.id == "fig5":
        from .experiments.accuracy import run_accuracy

        for scheduler in ("FIFO", "MinEDF", "MaxEDF"):
            result = run_accuracy(scheduler, seed=args.seed)
            print(result)
            if args.plot:
                from .render import bar_chart

                rows = []
                for app, actual in result.actual.items():
                    rows.append((f"{app} SimMR", result.simmr[app] / actual * 100.0))
                    if result.mumak is not None:
                        rows.append((f"{app} Mumak", result.mumak[app] / actual * 100.0))
                print()
                print(
                    bar_chart(
                        rows,
                        title=f"{scheduler}: simulated completion as % of actual",
                        reference=100.0,
                    )
                )
            print()
    elif args.id == "fig6":
        from .experiments.performance import run_performance

        print(run_performance(seed=args.seed))
    elif args.id == "fig7":
        from .experiments.schedulers_real import run_deadline_comparison_real

        result = run_deadline_comparison_real(runs=args.runs or 50, seed=args.seed)
        print(result)
        if args.plot:
            _plot_sweep(result)
    elif args.id == "fig8":
        from .experiments.schedulers_facebook import run_deadline_comparison_facebook

        result = run_deadline_comparison_facebook(runs=args.runs or 50, seed=args.seed)
        print(result)
        if args.plot:
            _plot_sweep(result)
    elif args.id == "preemption":
        from .experiments.preemption import run_preemption_ablation

        print(run_preemption_ablation(runs=args.runs or 30, seed=args.seed))
    elif args.id == "ablations":
        from .experiments.ablations import (
            run_allocation_sweep,
            run_shuffle_ablation,
            run_slowstart_ablation,
            run_speculation_ablation,
        )

        for fn in (
            run_shuffle_ablation,
            run_slowstart_ablation,
            run_allocation_sweep,
            run_speculation_ablation,
        ):
            print(fn())
            print()
    elif args.id == "zoo":
        from .experiments.scheduler_zoo import run_scheduler_zoo

        print(
            run_scheduler_zoo(
                runs=args.runs or 10, seed=args.seed, workers=args.workers
            )
        )
    elif args.id == "locality":
        from .experiments.locality import run_locality_sweep

        result = run_locality_sweep(seed=args.seed or 2)
        print(result)
        if args.plot:
            from .render import line_plot

            print()
            print(
                line_plot(
                    {"node-local": result.node_locality_series()},
                    title="delay scheduling: node locality vs wait",
                    xlabel="locality wait (s)",
                )
            )
    else:  # pragma: no cover - argparse restricts choices
        raise AssertionError(args.id)
    return 0


def _dispatch(argv: Optional[Sequence[str]]) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "profile": _cmd_profile,
        "replay": _cmd_replay,
        "compare": _cmd_compare,
        "experiment": _cmd_experiment,
        "stats": _cmd_stats,
        "compact": _cmd_compact,
        "scale": _cmd_scale,
        "diff-profiles": _cmd_diff_profiles,
        "sweep": _cmd_sweep,
        "fit": _cmd_fit,
        "validate": _cmd_validate,
        "lint": _cmd_lint,
        "certify": _cmd_certify,
        "check": _cmd_check,
        "evolve": _cmd_evolve,
        "trace": _cmd_trace,
        "cache": _cmd_cache,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
    }
    return handlers[args.command](args)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point with shell-grade exit hygiene.

    Ctrl-C exits 130 (128+SIGINT) and a consumer closing the pipe early
    (``simmr ... | head``) exits 141 (128+SIGPIPE) — both silently, no
    traceback, matching what a signal-killed process would report.
    """
    try:
        return _dispatch(argv)
    except KeyboardInterrupt:
        print(file=sys.stderr)
        return 130
    except BrokenPipeError:
        # stdout's consumer is gone; Python would still try to flush the
        # buffer at exit and print an unraisable error.  Point the fd at
        # /dev/null so the final flush has somewhere harmless to go.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
