"""Statistics toolkit: KL divergence, empirical CDFs, distribution fitting."""

from .cdf import EmpiricalCDF, ks_distance
from .fitting import CANDIDATE_FAMILIES, FitResult, fit_best, fit_candidates, fit_lognormal
from .kl import duration_histogram, histogram_kl, kl_divergence, symmetric_kl

__all__ = [
    "EmpiricalCDF",
    "ks_distance",
    "CANDIDATE_FAMILIES",
    "FitResult",
    "fit_best",
    "fit_candidates",
    "fit_lognormal",
    "duration_histogram",
    "histogram_kl",
    "kl_divergence",
    "symmetric_kl",
]
